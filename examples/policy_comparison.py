#!/usr/bin/env python3
"""Paired policy comparison: the statistically honest way.

Comparing two schedulers by their independent average slowdowns is
treacherous at small scale — between-seed variance dwarfs the policy
effect.  The right procedure pairs the runs: identical workload and
failure trace, per-job response deltas, aggregated over seeds.  This
example compares the fault-oblivious baseline against both fault-aware
schedulers that way and prints win/loss counts per job.

Run:  python examples/policy_comparison.py [site] [n_jobs] [n_failures]
"""

from __future__ import annotations

import sys

from repro.analysis import compare_reports, mean_paired_comparison
from repro.api import SimulationSetup


def main() -> None:
    site = sys.argv[1] if len(sys.argv) > 1 else "sdsc"
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 250
    n_failures = int(sys.argv[3]) if len(sys.argv) > 3 else 25
    seeds = range(3)

    for candidate, parameter in (("balancing", 0.1), ("tiebreak", 0.9)):
        comparisons = []
        for seed in seeds:
            common = dict(site=site, n_jobs=n_jobs, n_failures=n_failures, seed=seed)
            base = SimulationSetup(policy="krevat", parameter=0.0, **common).run()
            cand = SimulationSetup(
                policy=candidate, parameter=parameter, **common
            ).run()
            comparisons.append(compare_reports(base, cand))
        mean = mean_paired_comparison(comparisons)
        print(f"\n=== {candidate} (a={parameter}) vs krevat, {site} ===")
        for seed, pair in zip(seeds, comparisons):
            print(f"  seed {seed}: {pair.summary()}")
        print(f"  mean  : {mean.summary()}")

    print(
        "\nReading guide: negative response deltas and negative kill deltas\n"
        "favour the fault-aware candidate — the per-job win/loss counts\n"
        "show whether gains are broad or concentrated on a few rescued jobs."
    )


if __name__ == "__main__":
    main()
