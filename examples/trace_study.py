#!/usr/bin/env python3
"""Round-trip a workload through SWF and study checkpointing.

Demonstrates the two "plumbing" layers a downstream user touches first:

1. SWF interchange — write a synthetic trace to disk in Parallel
   Workloads Archive format, read it back, simulate it (a real archive
   file drops into the same path).
2. The checkpointing extension (the paper's §8 future work): compare
   no-checkpoint restarts against periodic and prediction-driven
   checkpointing under the same failure trace.

Run:  python examples/trace_study.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.checkpoint import CheckpointConfig, CheckpointMode
from repro.core import SimulationConfig, simulate
from repro.core.policies import make_policy
from repro.failures.synthetic import generate_failures
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.workloads import (
    fit_to_machine,
    generate_workload,
    read_swf,
    site_model,
    write_swf,
)


def main() -> None:
    # --- 1. SWF round trip -------------------------------------------
    workload = generate_workload(site_model("llnl"), 250, seed=3)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "llnl-synthetic.swf"
        write_swf(workload, path)
        print(f"Wrote {len(workload)} jobs to {path.name} "
              f"({path.stat().st_size} bytes of SWF)")
        workload = read_swf(path)
    workload = fit_to_machine(workload, BGL_SUPERNODE_DIMS)
    print(f"Read back {len(workload)} jobs; machine = "
          f"{workload.machine_nodes} supernodes\n")

    # --- 2. checkpointing study --------------------------------------
    failures = generate_failures(
        BGL_SUPERNODE_DIMS, 30, max(workload.span * 1.5, 3600.0), seed=4
    )
    variants = {
        "no checkpoint": CheckpointConfig(mode=CheckpointMode.NONE),
        "periodic 1h": CheckpointConfig(
            mode=CheckpointMode.PERIODIC, interval_s=3600.0, overhead_s=60.0
        ),
        "predictive a=0.7": CheckpointConfig(
            mode=CheckpointMode.PREDICTIVE, overhead_s=60.0, hit_probability=0.7
        ),
        "both": CheckpointConfig(
            mode=CheckpointMode.BOTH,
            interval_s=3600.0,
            overhead_s=60.0,
            hit_probability=0.7,
        ),
    }
    header = f"{'variant':<18}{'slowdown':>10}{'lost work (node-h)':>20}{'restores':>10}"
    print(header)
    print("-" * len(header))
    for label, ckpt in variants.items():
        policy = make_policy("krevat")
        config = SimulationConfig(checkpoint=ckpt, seed=9)
        report = simulate(workload, failures, policy, config)
        lost_h = report.timing.total_lost_work / 3600.0
        print(
            f"{label:<18}{report.timing.avg_bounded_slowdown:>10.2f}"
            f"{lost_h:>20.1f}{report.counters.checkpoint_restores:>10}"
        )
    print(
        "\nCheckpointing recovers work a restart would lose — the effect\n"
        "the paper's future-work section proposes combining with\n"
        "prediction-driven scheduling."
    )


if __name__ == "__main__":
    main()
