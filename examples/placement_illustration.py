#!/usr/bin/env python3
"""ASCII rendition of the paper's Figures 1-2: the MFP heuristic and
fault-aware placement.

Figure 1: placing a job so it leaves the larger maximal free partition.
Figure 2: between two placements of equal MFP loss, prefer the one the
predictor considers stable.

Uses a small 6x6x1 torus so the grids print as 2-D maps.

Run:  python examples/placement_illustration.py
"""

from __future__ import annotations

from repro.allocation import PlacementIndex
from repro.failures.events import FailureEvent, FailureLog
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus
from repro.prediction import BalancingPredictor

DIMS = TorusDims(6, 6, 1)


def render(torus: Torus, flagged: set[tuple[int, int, int]] = frozenset()) -> str:
    """Top-down map: '.' free, letters jobs, 'X' predicted-to-fail."""
    lines = []
    for y in range(DIMS.y - 1, -1, -1):
        row = []
        for x in range(DIMS.x):
            owner = torus.owner((x, y, 0))
            if (x, y, 0) in flagged and owner is None:
                row.append("X")
            elif owner is None:
                row.append(".")
            else:
                row.append(chr(ord("A") + owner % 26))
        lines.append(" ".join(row))
    return "\n".join(lines)


def figure1() -> None:
    print("=" * 60)
    print("Figure 1 - the MFP heuristic")
    print("=" * 60)
    torus = Torus(DIMS)
    torus.allocate(0, Partition((0, 0, 0), (6, 2, 1)))  # job A strip
    torus.allocate(1, Partition((2, 2, 0), (1, 1, 1)))  # stray job B
    index = PlacementIndex(torus)
    print("\nMachine with jobs A and B (MFP =", index.mfp_size(), "):")
    print(render(torus))

    # Enumerate every placement of a 2x2 job and keep the extremes the
    # paper's Figure 1 contrasts: the placement that butchers the MFP
    # versus the one that preserves it.
    scored = index.scored_candidates(4)
    worst = max(scored, key=lambda pl: pl[1])
    best = min(scored, key=lambda pl: pl[1])
    for label, (part, loss) in (("(a) worst", worst), ("(b) best", best)):
        print(
            f"\nPlacement {label}: base {part.base[:2]}, shape "
            f"{part.shape[:2]}, L_MFP = {loss} "
            f"(MFP after = {index.mfp_excluding(part)})"
        )
    print("\nThe scheduler prefers (b): it leaves the larger MFP intact.")


def figure2() -> None:
    print()
    print("=" * 60)
    print("Figure 2 - breaking ties with fault prediction")
    print("=" * 60)
    torus = Torus(DIMS)
    torus.allocate(0, Partition((0, 0, 0), (6, 2, 1)))
    failing = (1, 3, 0)
    log = FailureLog(DIMS.volume, [FailureEvent(500.0, DIMS.index(failing))])
    predictor = BalancingPredictor(log, confidence=0.9)
    index = PlacementIndex(torus)

    print("\nSame machine; node marked X is predicted to fail soon:")
    print(render(torus, flagged={failing}))

    c = Partition((0, 2, 0), (2, 2, 1))  # contains the X node
    d = Partition((4, 2, 0), (2, 2, 1))  # symmetric, stable
    for label, part in (("(c) over the X node", c), ("(d) stable twin", d)):
        p_f = predictor.partition_failure_probability(part, DIMS, 0.0, 1000.0)
        print(
            f"\nPlacement {label}: L_MFP = {index.mfp_loss(part)}, "
            f"P_f = {p_f:.2f}, "
            f"E_loss = {index.mfp_loss(part) + p_f * part.size:.2f}"
        )
    print(
        "\nEqual MFP loss -> the failure term decides: the scheduler takes"
        "\n(d), exactly the tie the paper's tie-breaking algorithm targets."
    )


if __name__ == "__main__":
    figure1()
    figure2()
