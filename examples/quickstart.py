#!/usr/bin/env python3
"""Quickstart: one fault-aware scheduling simulation, end to end.

Builds a synthetic SDSC-like workload, injects a bursty failure trace,
and compares the fault-oblivious Krevat baseline against the paper's
balancing scheduler at two prediction-confidence levels.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import quick_simulate


def main() -> None:
    common = dict(site="sdsc", n_jobs=300, n_failures=40, seed=3)

    print("Simulating three schedulers on the same workload + failures...\n")
    variants = {
        "krevat": quick_simulate(policy="krevat", **common),
        "balancing a=0.1": quick_simulate(policy="balancing", confidence=0.1, **common),
        "balancing a=0.9": quick_simulate(policy="balancing", confidence=0.9, **common),
    }

    header = f"{'metric':<22}" + "".join(f"{name:>18}" for name in variants)
    print(header)
    print("-" * len(header))
    rows = [
        ("avg bounded slowdown", lambda r: r.timing.avg_bounded_slowdown),
        ("avg response (s)", lambda r: r.timing.avg_response),
        ("avg wait (s)", lambda r: r.timing.avg_wait),
        ("utilization", lambda r: r.capacity.utilized),
        ("lost capacity", lambda r: r.capacity.lost),
        ("jobs killed", lambda r: float(r.counters.job_kills)),
        ("restarts", lambda r: float(r.timing.total_restarts)),
    ]
    for label, get in rows:
        print(f"{label:<22}" + "".join(f"{get(r):>18.2f}" for r in variants.values()))

    base = variants["krevat"].counters.job_kills
    best = variants["balancing a=0.9"].counters.job_kills
    print(
        f"\nFault prediction let the balancing scheduler dodge "
        f"{base - best} of the baseline's {base} job kills — the paper's "
        f"core claim, §7."
    )


if __name__ == "__main__":
    main()
