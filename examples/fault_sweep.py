#!/usr/bin/env python3
"""Failure-rate sweep: the paper's Figure 3 in miniature.

Sweeps the number of injected failures for the SDSC workload and prints
average bounded slowdown for the fault-oblivious baseline (a=0) and the
balancing scheduler at two prediction-confidence levels, mirroring the
shape of Figure 3: performance degrades sharply as failures appear, and
even 10% confidence recovers a large share of the loss.

Run:  python examples/fault_sweep.py [n_jobs]
"""

from __future__ import annotations

import sys

from repro.experiments import SweepPoint, format_table, run_point


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    seeds = (0, 1, 2)
    failure_axis = (0, 8, 16, 32, 64)
    confidences = (0.0, 0.1, 0.9)

    rows = []
    for n_failures in failure_axis:
        row: list[object] = [n_failures]
        for a in confidences:
            point = SweepPoint(
                site="sdsc",
                n_jobs=n_jobs,
                load_scale=1.0,
                n_failures=n_failures,
                policy="balancing",
                parameter=a,
            )
            result = run_point(point, seeds=seeds)
            row.append(result.avg_bounded_slowdown)
        rows.append(row)
        print(f"  swept n_failures={n_failures}")

    print()
    print(
        format_table(
            rows,
            ["failures", "slowdown a=0.0", "slowdown a=0.1", "slowdown a=0.9"],
        )
    )
    print(
        "\nExpected shape (paper Fig. 3): slowdown rises steeply with the\n"
        "failure rate for a=0.0; prediction (even a=0.1) flattens the curve."
    )


if __name__ == "__main__":
    main()
