#!/usr/bin/env python3
"""Balancing vs tie-breaking across prediction quality (Figs. 6 & 9).

For one workload and failure trace, sweeps the prediction parameter
``a`` from 0 to 1 for both fault-aware schedulers and prints slowdown
and utilization side by side — the comparison at the heart of the
paper's §7.2/§7.3 discussion: balancing trades free space for
stability, tie-breaking only ever breaks ties, so balancing wins where
prediction is good and load is high, while tie-breaking is the safer
conservative choice.

Run:  python examples/predictor_study.py [site] [n_jobs]
"""

from __future__ import annotations

import sys

from repro.experiments import SweepPoint, format_table, run_point


def main() -> None:
    site = sys.argv[1] if len(sys.argv) > 1 else "llnl"
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    seeds = (0, 1, 2)
    n_failures = 24

    rows = []
    for a in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        row: list[object] = [a]
        for policy in ("balancing", "tiebreak"):
            point = SweepPoint(
                site=site,
                n_jobs=n_jobs,
                load_scale=1.0,
                n_failures=n_failures,
                policy=policy,
                parameter=a,
            )
            result = run_point(point, seeds=seeds)
            row.extend([result.avg_bounded_slowdown, result.utilized, result.job_kills])
        rows.append(row)
        print(f"  swept a={a}")

    print()
    print(
        format_table(
            rows,
            [
                "a",
                "bal slowdown", "bal util", "bal kills",
                "tie slowdown", "tie util", "tie kills",
            ],
        )
    )
    print(
        "\nExpected shape (paper Figs. 6/9): most of the improvement arrives\n"
        "within the first 10-20% of prediction quality; returns diminish\n"
        "beyond that, and tie-breaking gains less than balancing."
    )


if __name__ == "__main__":
    main()
