"""Property-based cross-validation of the three partition finders.

The headline correctness claim — naive, POP and Appendix-9 fast finders
are interchangeable — is asserted here over randomly generated torus
states.  The main sweep pins ``max_examples=100`` regardless of the
active hypothesis profile, so every run (including CI) cross-validates
at least 100 generated machine states.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.allocation.base import PartitionFinder
from repro.geometry.coords import TorusDims
from repro.geometry.shapes import schedulable_sizes, shapes_for_size
from repro.geometry.torus import Torus
from repro.testing import CrossValidator, random_torus

# Small machines keep the naive O(M^9)-class reference affordable while
# still covering wrap-around, full-axis spans and heavy fragmentation.
dims_strategy = st.builds(
    TorusDims, st.integers(1, 4), st.integers(1, 4), st.integers(1, 5)
)


@st.composite
def torus_states(draw) -> Torus:
    dims = draw(dims_strategy)
    seed = draw(st.integers(0, 2**32 - 1))
    attempts = draw(st.integers(0, 14))
    return random_torus(dims, np.random.default_rng(seed), attempts=attempts)


class TestCrossValidation:
    @settings(max_examples=100, deadline=None)
    @given(torus_states(), st.data())
    def test_finders_agree_on_random_states(self, torus, data):
        """≥100 random torus states: identical canonical partition sets
        (and identical enumeration order) across all four finder
        implementations, at a randomly drawn schedulable size."""
        sizes = schedulable_sizes(torus.dims)
        size = data.draw(st.sampled_from(sizes))
        CrossValidator().compare(torus, size)

    @settings(max_examples=20, deadline=None)
    @given(torus_states())
    def test_finders_agree_on_every_size(self, torus):
        """Deeper variant: all schedulable sizes of one state."""
        CrossValidator().compare_all_sizes(torus)


class TestFindFreeProperties:
    @settings(deadline=None)
    @given(torus_states(), st.data())
    def test_every_result_is_free_and_exact(self, torus, data):
        size = data.draw(st.sampled_from(schedulable_sizes(torus.dims)))
        for finder in CrossValidator().finders:
            for part in finder.find_free(torus, size):
                assert part.size == size
                assert torus.is_free(part)
                part.validate(torus.dims)
                break  # one spot-check per finder keeps this cheap

    @settings(deadline=None)
    @given(torus_states(), st.data())
    def test_unique_canonicalisation(self, torus, data):
        """find_free_unique: one partition per node set, all canonical,
        same node-set family as the raw output."""
        size = data.draw(st.sampled_from(schedulable_sizes(torus.dims)))
        dims = torus.dims
        finder: PartitionFinder = CrossValidator().finders[2]  # fast-vectorized
        raw = finder.find_free(torus, size)
        unique = finder.find_free_unique(torus, size)
        assert len(set(unique)) == len(unique)
        assert all(p == p.canonical(dims) for p in unique)
        assert {p.node_set(dims) for p in raw} == {p.node_set(dims) for p in unique}

    @settings(deadline=None)
    @given(torus_states())
    def test_empty_and_full_extremes(self, torus):
        """On the torus's own dims: the whole-machine partition is found
        iff the machine is empty."""
        dims = torus.dims
        full_size = dims.volume
        if full_size not in schedulable_sizes(dims):  # pragma: no cover
            return
        found = CrossValidator().compare(torus, full_size)
        if torus.free_count == full_size:
            assert len(found) == 1
        elif torus.free_count < full_size:
            assert found == frozenset()

    @settings(max_examples=30, deadline=None)
    @given(torus_states(), st.data())
    def test_allocation_shrinks_result_monotonically(self, torus, data):
        """Allocating any found partition removes it from (and never
        adds to) the free set — exercised through the real mutation
        path, with the invariant oracle watching."""
        from repro.testing import InvariantChecker

        size = data.draw(st.sampled_from(schedulable_sizes(torus.dims)))
        validator = CrossValidator()
        before = validator.compare(torus, size)
        if not before:
            return
        target = data.draw(st.sampled_from(sorted(before, key=str)))
        job_id = torus.n_jobs + 1000
        torus.allocate(job_id, target)
        InvariantChecker().check(torus)
        after = validator.compare(torus, size)
        assert target not in after
        assert after <= before
        torus.release(job_id)
        InvariantChecker().check(torus)
        assert validator.compare(torus, size) == before


class TestShapeEnumerationOrder:
    @settings(deadline=None)
    @given(dims_strategy, st.integers(1, 40))
    def test_naive_shape_order_matches_divisor_order(self, dims, size):
        """The contract the cross-validator's order check rests on."""
        lex = [
            (a, b, c)
            for a in range(1, dims.x + 1)
            for b in range(1, dims.y + 1)
            for c in range(1, dims.z + 1)
            if a * b * c == size
        ]
        assert lex == list(shapes_for_size(size, dims))
