"""Shared pytest configuration: hypothesis profiles.

Three example budgets, selected via ``HYPOTHESIS_PROFILE``:

* ``ci`` — fast PR gate (CI sets this).
* ``dev`` — the default: hypothesis's standard 100 examples, no
  deadline (the finders are NumPy-heavy and deadline flakiness helps
  nobody).
* ``thorough`` — 1000 examples for local deep soaks:
  ``HYPOTHESIS_PROFILE=thorough python -m pytest tests/``.

Tests that *pin* an example count (the ≥100-state finder
cross-validation) carry their own ``@settings`` and are unaffected by
the profile.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.register_profile("ci", max_examples=25, **_COMMON)
settings.register_profile("dev", max_examples=100, **_COMMON)
settings.register_profile("thorough", max_examples=1000, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
