"""NDJSON wire protocol: framing, validation, and error envelopes."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProtocolError, ServeError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode,
    error_response,
    validate_request,
)


class TestFraming:
    def test_encode_is_newline_terminated_compact_json(self):
        raw = encode({"op": "ping", "id": 3})
        assert raw.endswith(b"\n")
        assert b" " not in raw.rstrip(b"\n")
        assert json.loads(raw) == {"op": "ping", "id": 3}

    def test_encode_sorts_keys_deterministically(self):
        a = encode({"b": 1, "a": 2})
        b = encode({"a": 2, "b": 1})
        assert a == b

    def test_round_trip(self):
        msg = {"op": "submit", "id": 1, "size": 4, "runtime": 60.0}
        assert decode_line(encode(msg)) == msg

    def test_decode_accepts_str_and_bytes(self):
        assert decode_line('{"op":"ping"}') == {"op": "ping"}
        assert decode_line(b'{"op":"ping"}\n') == {"op": "ping"}

    def test_oversize_line_rejected(self):
        blob = b'{"op":"' + b"x" * MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_line(blob)

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_line(b"[1,2,3]")

    def test_bad_utf8_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b'\xff\xfe{"op":"ping"}')


class TestValidation:
    def test_known_ops_pass(self):
        assert validate_request({"op": "ping"}) == "ping"
        assert (
            validate_request({"op": "submit", "id": 1, "size": 2, "runtime": 1.0})
            == "submit"
        )
        assert validate_request({"op": "cancel", "id": 1}) == "cancel"
        assert validate_request({"op": "drain"}) == "drain"

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError, match="op"):
            validate_request({"id": 1})

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "explode"})

    def test_missing_required_field_named(self):
        with pytest.raises(ProtocolError, match="runtime"):
            validate_request({"op": "submit", "id": 1, "size": 2})

    @pytest.mark.parametrize(
        "field,value",
        [("id", "seven"), ("id", True), ("size", 2.5), ("runtime", "fast")],
    )
    def test_wrong_field_types_rejected(self, field, value):
        msg = {"op": "submit", "id": 1, "size": 2, "runtime": 1.0}
        msg[field] = value
        with pytest.raises(ProtocolError, match=field):
            validate_request(msg)

    def test_error_response_envelope(self):
        resp = error_response(ServeError("boom"), id=4)
        assert resp["ok"] is False
        assert resp["error"] == "boom"
        assert resp["id"] == 4
