"""Load harness: pacing validation, response accounting, reporting."""

from __future__ import annotations

import pytest

from repro.api import SimulationSetup
from repro.errors import ServeError
from repro.serve.client import InprocClient
from repro.serve.engine import ServeEngine
from repro.serve.load import LoadReport, run_load, workload_messages
from repro.workloads.job import Job, Workload


def tiny_workload(n: int = 6) -> Workload:
    jobs = tuple(Job(i, float(i * 10), 2, 30.0) for i in range(n))
    return Workload("tiny", 64, jobs)


class TestWorkloadMessages:
    def test_round_robin_tenants(self):
        messages = workload_messages(tiny_workload(), tenants=("a", "b"))
        assert [m["tenant"] for m in messages] == ["a", "b", "a", "b", "a", "b"]
        assert all(m["op"] == "submit" for m in messages)

    def test_requires_a_tenant(self):
        with pytest.raises(ServeError, match="tenant"):
            workload_messages(tiny_workload(), tenants=())


class TestRunLoadValidation:
    def client(self):
        setup = SimulationSetup(site="sdsc", n_jobs=10, seed=1)
        return InprocClient(ServeEngine.from_setup(setup))

    def test_acceleration_and_rate_are_exclusive(self):
        with pytest.raises(ServeError, match="mutually exclusive"):
            run_load(self.client(), tiny_workload(), acceleration=10.0, rate=5.0)

    @pytest.mark.parametrize("kwargs", [{"acceleration": 0.0}, {"rate": -1.0}])
    def test_pacing_must_be_positive(self, kwargs):
        with pytest.raises(ServeError, match="positive"):
            run_load(self.client(), tiny_workload(), **kwargs)

    def test_pipeline_depth_must_be_positive(self):
        with pytest.raises(ServeError, match="pipeline_depth"):
            run_load(self.client(), tiny_workload(), pipeline_depth=0)


class TestAccounting:
    def test_full_speed_replay_counts_everything(self):
        setup = SimulationSetup(site="sdsc", n_jobs=30, seed=2)
        report = run_load(
            InprocClient(ServeEngine.from_setup(setup)), setup.build_workload()
        )
        assert report.submitted == 30
        assert report.accepted == 30
        assert report.rejected == 0 and report.errors == 0
        assert report.dropped == 0
        assert report.throughput > 0
        assert report.p50_ms <= report.p99_ms <= report.max_ms
        assert report.final_report is not None

    def test_rejects_and_errors_are_separated(self):
        setup = SimulationSetup(site="sdsc", n_jobs=10, seed=3)
        engine = ServeEngine.from_setup(
            setup, clock="logical", tenant_cap=2, engine_cap=1
        )
        big = Workload(
            "overload", 512, tuple(Job(i, 0.0, 64, 1e6) for i in range(10))
        )
        report = run_load(InprocClient(engine), big, drain=False)
        assert report.accepted == 3  # 1 in-engine + 2 queued
        assert report.rejected == 7
        assert report.errors == 0

    def test_error_samples_capture_failures(self):
        setup = SimulationSetup(site="sdsc", n_jobs=10, seed=4)
        engine = ServeEngine.from_setup(setup, clock="logical")
        bad = Workload(
            "bad", 512, tuple(Job(i, 0.0, 499, 60.0) for i in range(3))
        )  # 499 is prime and > any torus side: no rectangular partition
        report = run_load(InprocClient(engine), bad, drain=False)
        assert report.errors == 3
        assert report.error_samples
        assert "no rectangular partition" in report.error_samples[0]

    def test_paced_replay_respects_acceleration(self):
        """Two jobs 10 simulated seconds apart at 100x → >= 0.1s elapsed."""
        setup = SimulationSetup(site="sdsc", n_jobs=10, seed=5)
        engine = ServeEngine.from_setup(setup, clock="logical")
        report = run_load(
            InprocClient(engine), tiny_workload(2), acceleration=100.0, drain=False
        )
        assert report.elapsed_s >= 0.1

    def test_report_serialisation(self):
        report = LoadReport(
            submitted=5,
            accepted=4,
            rejected=1,
            errors=0,
            responses=5,
            elapsed_s=0.5,
            throughput=10.0,
            p50_ms=1.0,
            p99_ms=2.0,
            max_ms=3.0,
        )
        data = report.to_dict()
        assert data["dropped"] == 0
        assert "final_report" not in data
        assert any("throughput" in line for line in report.summary_lines())
