"""ServeEngine behaviour: replay equivalence, backpressure, lifecycle."""

from __future__ import annotations

import pytest

from repro.api import SimulationSetup
from repro.core.policies.registry import make_policy
from repro.core.simulator import Simulator
from repro.metrics.serialize import report_to_dict
from repro.serve.client import InprocClient
from repro.serve.engine import ServeEngine
from repro.serve.load import run_load


def small_setup(n_jobs: int = 80, seed: int = 11) -> SimulationSetup:
    return SimulationSetup(site="sdsc", n_jobs=n_jobs, seed=seed)


def batch_report(setup: SimulationSetup) -> dict:
    workload = setup.build_workload()
    failures = setup.build_failures(workload)
    policy = make_policy(
        setup.policy,
        failure_log=failures,
        parameter=setup.parameter,
        pf_rule=setup.pf_rule,
        seed=setup.seed + 2,
    )
    return report_to_dict(Simulator(workload, failures, policy, setup.config).run())


class TestReplayEquivalence:
    """The acceptance criterion: a workload replayed through the service
    produces the same schedule report as the batch simulator."""

    def test_inproc_replay_matches_batch(self):
        setup = small_setup()
        engine = ServeEngine.from_setup(setup)
        report = run_load(InprocClient(engine), setup.build_workload())
        assert report.dropped == 0 and report.errors == 0
        assert report.final_report == batch_report(setup)

    def test_equivalence_survives_multi_tenant_and_pipelining(self):
        setup = small_setup(n_jobs=60, seed=3)
        engine = ServeEngine.from_setup(setup)
        report = run_load(
            InprocClient(engine),
            setup.build_workload(),
            tenants=("alice", "bob", "carol"),
            pipeline_depth=16,
        )
        assert report.final_report == batch_report(setup)

    def test_equivalence_with_tiny_pump_interval(self):
        """Aggressive pumping (every submission) must not change the
        schedule, only when work happens."""
        setup = small_setup(n_jobs=50, seed=7)
        engine = ServeEngine.from_setup(setup, pump_interval=1)
        report = run_load(InprocClient(engine), setup.build_workload())
        assert report.final_report == batch_report(setup)


class TestBackpressure:
    def overload_engine(self, **kwargs) -> ServeEngine:
        return ServeEngine.from_setup(
            small_setup(), clock="logical", **kwargs
        )

    def test_logical_clock_rejects_past_tenant_cap(self):
        engine = self.overload_engine(tenant_cap=8, engine_cap=4)
        client = InprocClient(engine)
        replies = [
            client.submit(id=i, size=64, runtime=1e6) for i in range(40)
        ]
        accepted = [r for r in replies if r.get("ok")]
        rejected = [r for r in replies if r.get("rejected")]
        # 4 released into the engine + 8 queued at the tenant; rest bounce.
        assert len(accepted) == 12
        assert len(rejected) == 28
        assert all(r["retry_after"] > 0 for r in rejected)
        stats = client.stats()
        assert stats["queue_depth"] == 8 and stats["outstanding"] == 4

    def test_drain_honours_queued_work_past_caps(self):
        engine = self.overload_engine(tenant_cap=8, engine_cap=4)
        client = InprocClient(engine)
        for i in range(12):
            assert client.submit(id=i, size=64, runtime=100.0)["ok"]
        drained = client.drain()
        assert drained["ok"]
        assert len(drained["report"]["records"]) == 12

    def test_trace_clock_soft_cap_admits_history(self):
        """Trace replays can't defer arrivals: the engine overflows
        softly and counts it rather than rejecting."""
        setup = small_setup()
        engine = ServeEngine.from_setup(
            setup, clock="trace", engine_cap=1, tenant_cap=4096
        )
        client = InprocClient(engine)
        for i in range(8):
            reply = client.submit(id=i, arrival=0.0, size=64, runtime=1e6)
            assert reply["ok"], reply
        assert engine.sim.outstanding == 8  # cap exceeded, nothing rejected
        assert engine.metrics.counter("serve.soft_overflows").value > 0


class TestLifecycle:
    def test_ping_and_stats_shape(self):
        client = InprocClient(ServeEngine.from_setup(small_setup()))
        pong = client.ping()
        assert pong["ok"] and pong["pong"]
        stats = client.stats()
        for key in ("clock", "submitted", "admitted", "rejected", "drained"):
            assert key in stats

    def test_trace_clock_requires_arrival(self):
        client = InprocClient(ServeEngine.from_setup(small_setup()))
        reply = client.submit(id=1, size=4, runtime=60.0)
        assert not reply["ok"] and "arrival" in reply["error"]

    def test_trace_clock_rejects_time_travel(self):
        client = InprocClient(ServeEngine.from_setup(small_setup()))
        assert client.submit(id=1, arrival=100.0, size=4, runtime=60.0)["ok"]
        reply = client.submit(id=2, arrival=50.0, size=4, runtime=60.0)
        assert not reply["ok"] and "simulated past" in reply["error"]

    def test_duplicate_submit_refused(self):
        client = InprocClient(ServeEngine.from_setup(small_setup()))
        assert client.submit(id=1, arrival=0.0, size=4, runtime=60.0)["ok"]
        reply = client.submit(id=1, arrival=5.0, size=4, runtime=60.0)
        assert not reply["ok"] and "already submitted" in reply["error"]

    def test_unpartitionable_size_refused(self):
        client = InprocClient(ServeEngine.from_setup(small_setup()))
        reply = client.submit(id=1, arrival=0.0, size=10**6, runtime=60.0)
        assert not reply["ok"] and "no rectangular partition" in reply["error"]

    def test_cancel_paths(self):
        engine = ServeEngine.from_setup(
            small_setup(), clock="logical", tenant_cap=8, engine_cap=1
        )
        client = InprocClient(engine)
        for i in range(4):
            client.submit(id=i, size=64, runtime=1e6)
        # Job 1+ are still queued at admission; job 0 is in the engine.
        assert client.cancel(2) == {"ok": True, "caught": "admission", "id": 2}
        assert client.status(3)["state"] == "admitted"
        reply = client.cancel(0)
        assert reply["ok"] and reply["caught"] in ("pending", "waiting", "running")
        unknown = client.cancel(99)
        assert not unknown["ok"] and "not known" in unknown["error"]

    def test_status_unknown_job(self):
        client = InprocClient(ServeEngine.from_setup(small_setup()))
        reply = client.status(42)
        assert not reply["ok"] and "not known" in reply["error"]

    def test_drain_is_idempotent_and_final(self):
        setup = small_setup(n_jobs=20)
        client = InprocClient(ServeEngine.from_setup(setup))
        run_load(client, setup.build_workload(), drain=False)
        first = client.drain()
        assert first["ok"] and first["stats"]["drained"] is True
        assert client.drain() is first  # cached
        refused = client.submit(id=10**6, arrival=0.0, size=4, runtime=60.0)
        assert not refused["ok"] and "drained" in refused["error"]

    def test_protocol_errors_are_flagged(self):
        client = InprocClient(ServeEngine.from_setup(small_setup()))
        reply = client.request({"op": "warp"})
        assert not reply["ok"] and reply.get("protocol_error")

    def test_responses_echo_request_id(self):
        client = InprocClient(ServeEngine.from_setup(small_setup()))
        reply = client.submit(id=5, arrival=0.0, size=4, runtime=60.0)
        assert reply["id"] == 5

    def test_metrics_snapshot_has_service_and_sim_sections(self):
        setup = small_setup(n_jobs=20)
        engine = ServeEngine.from_setup(setup)
        run_load(InprocClient(engine), setup.build_workload())
        snapshot = engine.metrics_snapshot()
        assert snapshot["counters"]["serve.submitted"] == 20
        assert snapshot["counters"]["serve.admitted"] == 20

    def test_bad_engine_params_rejected(self):
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="engine_cap"):
            ServeEngine.from_setup(small_setup(), engine_cap=0)
        with pytest.raises(ServeError, match="pump_interval"):
            ServeEngine.from_setup(small_setup(), pump_interval=0)
