"""Asyncio NDJSON service: TCP and unix-socket round trips.

Each test runs ``run_service`` in a daemon thread, discovers the
ephemeral address through the ready-file handshake, and drives it with
the blocking :class:`SocketClient` — the same topology as the CI
serve-smoke job.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import SimulationSetup
from repro.serve.client import SocketClient, connect
from repro.serve.engine import ServeEngine
from repro.serve.load import run_load
from repro.serve.service import run_service


def start_service(tmp_path, engine, *, unix=False):
    ready = tmp_path / "ready"
    kwargs = {"ready_file": ready}
    if unix:
        kwargs["unix_path"] = tmp_path / "serve.sock"
    thread = threading.Thread(
        target=run_service, args=(engine,), kwargs=kwargs, daemon=True
    )
    thread.start()
    deadline = time.time() + 10.0
    while not ready.exists():
        if time.time() > deadline:
            raise TimeoutError("service never wrote its ready file")
        time.sleep(0.01)
    return ready.read_text().strip(), thread


@pytest.fixture
def setup():
    return SimulationSetup(site="sdsc", n_jobs=40, seed=13)


class TestTcpService:
    def test_round_trip_and_clean_shutdown(self, tmp_path, setup):
        engine = ServeEngine.from_setup(setup)
        address, thread = start_service(tmp_path, engine)
        with SocketClient.connect(address) as client:
            assert client.ping()["pong"]
            assert client.submit(id=1, arrival=0.0, size=4, runtime=60.0)["ok"]
            assert client.status(1)["state"] in ("pending", "waiting", "running")
            reply = client.shutdown()
            assert reply["ok"] and reply["shutdown"]
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_pipelined_load_matches_batch(self, tmp_path, setup):
        """Full stack over TCP: replay, drain, byte-identical report."""
        from repro.core.policies.registry import make_policy
        from repro.core.simulator import Simulator
        from repro.metrics.serialize import report_to_dict

        workload = setup.build_workload()
        failures = setup.build_failures(workload)
        policy = make_policy(
            setup.policy,
            failure_log=failures,
            parameter=setup.parameter,
            pf_rule=setup.pf_rule,
            seed=setup.seed + 2,
        )
        batch = report_to_dict(
            Simulator(workload, failures, policy, setup.config).run()
        )

        engine = ServeEngine.from_setup(setup)
        address, thread = start_service(tmp_path, engine)
        with SocketClient.connect(address) as client:
            report = run_load(client, workload, pipeline_depth=16)
            assert report.dropped == 0 and report.errors == 0
            assert report.final_report == batch
            client.shutdown()
        thread.join(timeout=10.0)

    def test_malformed_line_keeps_connection_alive(self, tmp_path, setup):
        engine = ServeEngine.from_setup(setup)
        address, thread = start_service(tmp_path, engine)
        with SocketClient.connect(address) as client:
            client._sock.sendall(b"this is not json\n")
            reply = client._read_response()
            assert not reply["ok"] and reply["protocol_error"]
            assert client.ping()["pong"]  # still serving
            client.shutdown()
        thread.join(timeout=10.0)

    def test_connect_helper_dispatches_by_target(self, setup):
        engine = ServeEngine.from_setup(setup)
        client = connect(engine)
        assert client.ping()["pong"]


class TestUnixService:
    def test_unix_socket_round_trip(self, tmp_path, setup):
        engine = ServeEngine.from_setup(setup)
        address, thread = start_service(tmp_path, engine, unix=True)
        with SocketClient.connect(address) as client:
            assert client.ping()["pong"]
            stats = client.stats()
            assert stats["clock"] == "trace"
            client.shutdown()
        thread.join(timeout=10.0)
        # Graceful shutdown removes the socket file.
        assert not (tmp_path / "serve.sock").exists()
