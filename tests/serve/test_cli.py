"""CLI surface: `bgl-sim serve` / `bgl-sim load`, SIGINT handling, api glue."""

from __future__ import annotations

import json
import threading

import pytest

import repro.cli as cli
from repro.api import SimulationSetup, connect, serve
from repro.cli import main
from repro.serve.engine import ServeEngine


class TestKeyboardInterrupt:
    """Satellite: Ctrl-C exits with code 130 and one stderr line, no
    traceback (the sweep/figure pools are shut down on the way out)."""

    def test_sigint_exit_code_and_message(self, monkeypatch, capsys):
        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", boom)
        assert main(["sites"]) == 130
        captured = capsys.readouterr()
        assert captured.err.strip() == "interrupted"
        assert "Traceback" not in captured.err

    def test_sigint_survives_pool_cleanup_failure(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli, "_dispatch", lambda args: (_ for _ in ()).throw(KeyboardInterrupt)
        )

        import repro.experiments.pool as pool

        def bad_shutdown(*a, **k):
            raise RuntimeError("pool already gone")

        monkeypatch.setattr(pool, "shutdown_warm_pool", bad_shutdown)
        assert main(["sweep", "--parameters", "0.1"]) == 130


class TestServeLoadCli:
    def serve_in_thread(self, tmp_path, extra=()):
        ready = tmp_path / "ready"
        argv = [
            "serve",
            "--site", "sdsc", "--jobs", "40", "--seed", "9",
            "--ready-file", str(ready),
            *extra,
        ]
        thread = threading.Thread(target=main, args=(argv,), daemon=True)
        thread.start()
        import time

        deadline = time.time() + 15.0
        while not ready.exists():
            if time.time() > deadline:
                raise TimeoutError("serve never wrote its ready file")
            time.sleep(0.01)
        return ready.read_text().strip(), thread

    def test_serve_load_check_round_trip(self, tmp_path, capsys):
        """The acceptance-criteria path, end to end over the real CLI:
        load --check replays the scenario and requires the drained
        report to match the batch simulator byte-for-byte."""
        metrics_file = tmp_path / "metrics.json"
        address, thread = self.serve_in_thread(
            tmp_path, extra=["--metrics-file", str(metrics_file)]
        )
        output = tmp_path / "report.json"
        code = main(
            [
                "load",
                "--site", "sdsc", "--jobs", "40", "--seed", "9",
                "--address", address,
                "--check", "--shutdown",
                "--output", str(output),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out + captured.err
        assert "check: service report matches batch simulator" in captured.out
        assert "dropped     0" in captured.out
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        report = json.loads(output.read_text())
        assert report["submitted"] == 40 and report["dropped"] == 0
        metrics = json.loads(metrics_file.read_text())
        assert metrics["counters"]["serve.submitted"] == 40

    def test_check_requires_drain(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "load", "--address", "127.0.0.1:1",
                    "--check", "--no-drain",
                ]
            )

    def test_mismatched_scenario_fails_check(self, tmp_path, capsys):
        """Different seeds on the two sides → different schedule → the
        check must fail loudly, proving it actually compares."""
        address, thread = self.serve_in_thread(tmp_path)
        code = main(
            [
                "load",
                "--site", "sdsc", "--jobs", "40", "--seed", "10",  # serve used 9
                "--address", address,
                "--check", "--shutdown",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.err
        thread.join(timeout=15.0)


class TestApiGlue:
    def test_api_serve_builds_engine(self):
        engine = serve(SimulationSetup(site="sdsc", n_jobs=10, seed=1))
        assert isinstance(engine, ServeEngine)
        client = connect(engine)
        assert client.ping()["ok"]

    def test_api_serve_defaults(self):
        assert isinstance(serve(), ServeEngine)
