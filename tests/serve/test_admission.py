"""Fair-share admission: stride proportionality, caps, and withdrawal."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.admission import STRIDE_SCALE, FairShareAdmission, TenantQueue
from repro.workloads.job import Job


def fill(admission: FairShareAdmission, tenant: str, n: int, *, start_id: int = 0):
    for i in range(n):
        assert admission.offer(tenant, Job(start_id + i, 0.0, 2, 60.0)) is None


class TestTenantQueue:
    def test_stride_is_inverse_weight(self):
        assert TenantQueue("a", weight=2.0).stride == STRIDE_SCALE / 2.0

    def test_invalid_weight_and_cap_rejected(self):
        with pytest.raises(ServeError, match="weight"):
            TenantQueue("a", weight=0.0)
        with pytest.raises(ServeError, match="cap"):
            TenantQueue("a", cap=0)


class TestStrideFairness:
    def test_logical_releases_proportional_to_weight(self):
        """Weight 3:1 over 40 releases → 30/10 split."""
        adm = FairShareAdmission({"heavy": 3.0, "light": 1.0}, clock="logical")
        fill(adm, "heavy", 40, start_id=0)
        fill(adm, "light", 40, start_id=100)
        released = [adm.release_next().job_id for _ in range(40)]
        heavy = sum(1 for j in released if j < 100)
        assert heavy == 30

    def test_trace_clock_follows_global_arrival_order(self):
        """Trace replays must not let fairness reorder history."""
        adm = FairShareAdmission({"a": 100.0, "b": 1.0}, clock="trace")
        assert adm.offer("b", Job(1, 10.0, 2, 60.0)) is None
        assert adm.offer("a", Job(2, 20.0, 2, 60.0)) is None
        assert adm.offer("b", Job(3, 30.0, 2, 60.0)) is None
        order = [adm.release_next().job_id for _ in range(3)]
        assert order == [1, 2, 3]

    def test_newcomer_starts_at_max_pass(self):
        """A late-joining tenant must not monopolise releases."""
        adm = FairShareAdmission(clock="logical")
        fill(adm, "old", 20, start_id=0)
        for _ in range(10):
            adm.release_next()
        fill(adm, "new", 20, start_id=100)
        first_four = [adm.release_next().job_id for _ in range(4)]
        # Equal weights from here on: strict alternation, not a newcomer burst.
        assert sum(1 for j in first_four if j >= 100) == 2

    def test_release_next_empty_returns_none(self):
        assert FairShareAdmission().release_next() is None


class TestBoundedQueues:
    def test_cap_reject_with_retry_after(self):
        adm = FairShareAdmission(tenant_cap=4)
        fill(adm, "t", 4)
        retry = adm.offer("t", Job(99, 0.0, 2, 60.0))
        assert retry is not None and retry > 0
        assert adm.total_rejected == 1
        assert adm.tenant("t").rejected == 1

    def test_caps_are_per_tenant(self):
        adm = FairShareAdmission(tenant_cap=2)
        fill(adm, "a", 2, start_id=0)
        assert adm.offer("a", Job(50, 0.0, 2, 60.0)) is not None
        assert adm.offer("b", Job(51, 0.0, 2, 60.0)) is None

    def test_backlog_and_depths(self):
        adm = FairShareAdmission()
        fill(adm, "a", 3, start_id=0)
        fill(adm, "b", 1, start_id=10)
        assert adm.backlog == 4
        assert adm.depths() == {"a": 3, "b": 1}
        shares = adm.shares()
        assert shares["a"]["admitted"] == 3 and shares["a"]["depth"] == 3

    def test_withdraw_and_find(self):
        adm = FairShareAdmission()
        fill(adm, "a", 3)
        assert adm.find(1).job_id == 1
        assert adm.withdraw(1) is True
        assert adm.find(1) is None
        assert adm.withdraw(1) is False
        assert adm.backlog == 2

    def test_head_arrival_across_tenants(self):
        adm = FairShareAdmission()
        assert adm.head_arrival() is None
        adm.offer("a", Job(1, 50.0, 2, 60.0))
        adm.offer("b", Job(2, 20.0, 2, 60.0))
        assert adm.head_arrival() == 20.0

    def test_bad_clock_rejected(self):
        with pytest.raises(ServeError, match="clock"):
            FairShareAdmission(clock="wallclock")
