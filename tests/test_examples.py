"""Smoke tests: every shipped example must run and produce its story.

Examples double as integration tests of the public API surface — they
import only from ``repro``'s public modules.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_placement_illustration(self):
        out = run_example("placement_illustration.py")
        assert "Figure 1" in out and "Figure 2" in out
        assert "L_MFP" in out and "E_loss" in out

    @pytest.mark.slow
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "krevat" in out
        assert "balancing a=0.9" in out
        assert "job kills" in out

    @pytest.mark.slow
    def test_trace_study(self):
        out = run_example("trace_study.py")
        assert "SWF" in out
        assert "no checkpoint" in out

    @pytest.mark.slow
    def test_fault_sweep_small(self):
        out = run_example("fault_sweep.py", "60")
        assert "slowdown a=0.0" in out
        assert "Expected shape" in out

    @pytest.mark.slow
    def test_predictor_study_small(self):
        out = run_example("predictor_study.py", "nasa", "60")
        assert "bal slowdown" in out
        assert "tie slowdown" in out

    @pytest.mark.slow
    def test_policy_comparison_small(self):
        out = run_example("policy_comparison.py", "nasa", "50", "5")
        assert "vs krevat" in out
        assert "mean  :" in out
