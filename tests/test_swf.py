"""Satellite suite: SWF round-trip and malformed-input handling (ISSUE 3).

Complements ``tests/workloads/test_swf.py`` with a property-based
``write_swf`` → ``parse_swf`` round-trip over random workloads and a
systematic sweep of malformed-line and header behaviours.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.errors import SWFParseError
from repro.workloads.job import Job, Workload
from repro.workloads.swf import (
    SWF_FIELDS,
    parse_swf,
    read_swf,
    write_swf,
)

jobs_strategy = st.lists(
    st.builds(
        dict,
        arrival=st.integers(0, 10**6),
        size=st.integers(1, 128),
        runtime=st.integers(1, 10**5),
        estimate=st.integers(1, 10**5),
    ),
    max_size=30,
)


def build_workload(specs: list[dict], machine: int = 128) -> Workload:
    jobs = tuple(
        Job(job_id=i, arrival=float(s["arrival"]), size=s["size"],
            runtime=float(s["runtime"]), estimate=float(s["estimate"]))
        for i, s in enumerate(specs)
    )
    return Workload("roundtrip", machine, jobs)


class TestRoundTrip:
    @given(jobs_strategy)
    def test_write_parse_preserves_jobs(self, specs):
        """Integer-valued workloads survive the text round-trip exactly
        (the writer rounds to whole seconds, so integers are lossless)."""
        workload = build_workload(specs)
        parsed = parse_swf(io.StringIO(write_swf(workload)))
        assert parsed.machine_nodes == workload.machine_nodes
        assert len(parsed.jobs) == len(workload.jobs)
        for orig, back in zip(workload.jobs, parsed.jobs):
            assert back.job_id == orig.job_id
            assert back.arrival == orig.arrival
            assert back.size == orig.size
            assert back.runtime == orig.runtime
            assert back.estimate == orig.estimate

    @given(jobs_strategy)
    def test_double_roundtrip_is_fixed_point(self, specs):
        text = write_swf(build_workload(specs))
        once = parse_swf(io.StringIO(text))
        assert write_swf(once).splitlines()[3:] == text.splitlines()[3:]

    def test_written_lines_have_full_field_count(self):
        text = write_swf(build_workload([dict(arrival=0, size=4, runtime=60,
                                              estimate=90)]))
        records = [l for l in text.splitlines() if not l.startswith(";")]
        assert len(records) == 1
        assert len(records[0].split()) == SWF_FIELDS

    def test_file_roundtrip(self, tmp_path: Path):
        workload = build_workload(
            [dict(arrival=10, size=8, runtime=300, estimate=400)]
        )
        path = tmp_path / "trace.swf"
        write_swf(workload, path)
        back = read_swf(path)
        assert back.name == "trace"  # stem becomes the workload name
        assert back.jobs[0].size == 8


def parse_text(text: str) -> Workload:
    return parse_swf(io.StringIO(text))


RECORD = "0 100 -1 60 4 -1 -1 4 90 -1 -1 -1 -1 -1 -1 -1 -1 -1"


class TestMalformedInput:
    def test_short_line_raises(self):
        with pytest.raises(SWFParseError, match="expected >= 9 fields"):
            parse_text("1 2 3\n")

    def test_non_numeric_field_raises(self):
        with pytest.raises(SWFParseError, match="non-numeric"):
            parse_text(RECORD.replace("100", "abc", 1))

    def test_malformed_maxprocs_header_raises(self):
        with pytest.raises(SWFParseError, match="MaxProcs"):
            parse_text("; MaxProcs: lots\n" + RECORD + "\n")

    def test_error_reports_line_number(self):
        text = RECORD + "\n" + "1 2 3\n"
        with pytest.raises(SWFParseError, match="line 2"):
            parse_text(text)

    @pytest.mark.parametrize(
        "mutation",
        [
            ("60", "0"),      # zero runtime: cancelled submission
            ("60", "-5"),     # negative runtime
            ("0 100", "-1 100"),  # negative job id
            ("100", "-100"),  # negative submit time
        ],
    )
    def test_invalid_submissions_are_skipped_not_fatal(self, mutation):
        old, new = mutation
        workload = parse_text(RECORD.replace(old, new, 1) + "\n" + RECORD + "\n")
        assert len(workload.jobs) == 1  # the clean record survives

    def test_zero_size_after_fallback_is_skipped(self):
        # requested (field 8) and allocated (field 5) both non-positive
        line = "0 100 -1 60 -1 -1 -1 -1 90 " + "-1 " * 9
        workload = parse_text(line.strip() + "\n")
        assert workload.jobs == ()


class TestCorruptRecords:
    """Wrong records fail loudly (ISSUE 8 hardening), unlike the merely
    incomplete ones above that are skipped per archive convention."""

    def test_duplicate_job_id_names_both_lines(self):
        second = "0" + RECORD[1:].replace("100", "200", 1)
        with pytest.raises(
            SWFParseError, match=r"line 2: duplicate job id 0 .*first seen on line 1"
        ):
            parse_text(RECORD + "\n" + second + "\n")

    def test_duplicate_detection_ignores_skipped_records(self):
        """A skipped (cancelled) record doesn't claim its job id."""
        cancelled = RECORD.replace("60", "0", 1)  # zero runtime: skipped
        workload = parse_text(cancelled + "\n" + RECORD + "\n")
        assert len(workload.jobs) == 1

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_explicit_bad_requested_size_raises(self, bad):
        line = RECORD.split()
        line[7] = bad
        with pytest.raises(
            SWFParseError, match=rf"line 1: .*requested processor count {bad}"
        ):
            parse_text(" ".join(line) + "\n")

    def test_explicit_bad_allocated_size_raises(self):
        line = RECORD.split()
        line[4] = "-7"
        with pytest.raises(SWFParseError, match="allocated processor count -7"):
            parse_text(" ".join(line) + "\n")

    def test_unknown_sentinel_still_tolerated(self):
        # -1 exactly is "unknown", not corrupt: requested falls back to
        # allocated and the record parses.
        line = RECORD.split()
        line[7] = "-1"
        assert parse_text(" ".join(line) + "\n").jobs[0].size == 4

    def test_parse_errors_are_experiment_errors(self):
        """CLI error handling catches ExperimentError; SWF corruption
        must land in that bucket to die with a friendly message."""
        from repro.errors import ExperimentError, WorkloadError

        with pytest.raises(ExperimentError):
            parse_text("1 2 3\n")
        assert issubclass(SWFParseError, WorkloadError)
        assert issubclass(SWFParseError, ExperimentError)


class TestHeaderHandling:
    def test_maxprocs_header_sets_machine_size(self):
        workload = parse_text("; MaxProcs: 512\n" + RECORD + "\n")
        assert workload.machine_nodes == 512

    def test_maxprocs_case_insensitive_and_padded(self):
        workload = parse_text(";  maxprocs:   256  \n" + RECORD + "\n")
        assert workload.machine_nodes == 256

    def test_missing_maxprocs_falls_back_to_max_job_size(self):
        big = "1" + RECORD.replace(" 4 ", " 64 ")[1:]
        workload = parse_text(RECORD + "\n" + big + "\n")
        assert workload.machine_nodes == 64

    def test_other_headers_and_blank_lines_ignored(self):
        text = (
            "; Version: 2.2\n"
            ";\n"
            "\n"
            "; Computer: BlueGene/L\n"
            + RECORD + "\n"
            "\n"
        )
        workload = parse_text(text)
        assert len(workload.jobs) == 1

    def test_empty_stream_yields_empty_workload(self):
        workload = parse_text("")
        assert workload.jobs == ()
        assert workload.machine_nodes == 1  # documented default


class TestFieldSemantics:
    def test_requested_processors_preferred_over_allocated(self):
        line = RECORD.split()
        line[4] = "16"   # allocated
        line[7] = "8"    # requested wins
        workload = parse_text(" ".join(line) + "\n")
        assert workload.jobs[0].size == 8

    def test_allocated_is_fallback_when_requested_unknown(self):
        line = RECORD.split()
        line[4] = "16"
        line[7] = "-1"
        workload = parse_text(" ".join(line) + "\n")
        assert workload.jobs[0].size == 16

    def test_estimate_falls_back_to_runtime(self):
        line = RECORD.split()
        line[8] = "-1"   # requested time unknown
        workload = parse_text(" ".join(line) + "\n")
        assert workload.jobs[0].estimate == workload.jobs[0].runtime
