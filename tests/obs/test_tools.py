"""Tests for the trace toolchain (summarize / diff / validate)."""

from __future__ import annotations

from repro.obs.schema import TRACE_SCHEMA_VERSION
from repro.obs.tools import (
    diff_traces,
    format_summary,
    headers_differ,
    summarize_trace,
    validate_trace,
)


def header(**overrides):
    record = {
        "kind": "header", "t": 0.0, "seq": 0,
        "schema": TRACE_SCHEMA_VERSION, "policy": "balancing",
        "workload": "w", "dims": [8, 4, 2], "seed": 0,
    }
    record.update(overrides)
    return record


def make_trace():
    return [
        header(),
        {"kind": "arrival", "t": 1.0, "seq": 1, "job": 0, "size": 4},
        {"kind": "dispatch", "t": 1.0, "seq": 2, "job": 0, "size": 4,
         "base": [0, 0, 0], "shape": [1, 2, 2], "via": "fcfs", "wall": 30.0},
        {"kind": "failure", "t": 5.0, "seq": 3, "node": [1, 1, 1],
         "killed_job": 0},
        {"kind": "finish", "t": 9.0, "seq": 4, "job": 0},
    ]


class TestSummarize:
    def test_summary_contents(self):
        summary = summarize_trace(make_trace())
        assert summary["n_records"] == 5
        assert summary["kinds"]["arrival"] == 1
        assert summary["n_jobs_seen"] == 1
        assert summary["t_span"] == (1.0, 9.0)
        assert summary["job_kills"] == 1
        assert summary["header"]["policy"] == "balancing"

    def test_idle_failure_not_a_kill(self):
        trace = make_trace()
        trace[3] = dict(trace[3], killed_job=None)
        assert summarize_trace(trace)["job_kills"] == 0

    def test_format_summary_renders(self):
        text = format_summary(summarize_trace(make_trace()))
        assert "policy=balancing" in text
        assert "5 records" in text

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary["n_records"] == 0
        assert summary["t_span"] == (None, None)
        assert "(empty)" in format_summary(summary)


class TestDiff:
    def test_identical_traces(self):
        assert diff_traces(make_trace(), make_trace()) is None

    def test_header_only_difference_is_not_divergence(self):
        a, b = make_trace(), make_trace()
        b[0] = header(seed=99)
        assert diff_traces(a, b) is None
        assert headers_differ(a, b) == ("seed",)

    def test_first_divergent_decision_pinpointed(self):
        a, b = make_trace(), make_trace()
        b[2] = dict(b[2], base=[4, 0, 0])
        divergence = diff_traces(a, b)
        assert divergence is not None
        assert divergence.index == 1  # decision stream excludes header
        assert divergence.fields == ("base",)
        assert "dispatch" in divergence.describe()

    def test_length_mismatch(self):
        a = make_trace()
        b = make_trace()[:-1]
        divergence = diff_traces(a, b)
        assert divergence is not None
        assert divergence.index == 3
        assert divergence.record_b is None
        assert "ended" in divergence.describe()

    def test_divergence_after_truncated_side(self):
        divergence = diff_traces(make_trace()[:1], make_trace())
        assert divergence.record_a is None
        assert "second" in divergence.describe()


class TestValidate:
    def test_valid_trace(self):
        assert validate_trace(make_trace()) == []

    def test_broken_trace(self):
        trace = make_trace()
        del trace[2]["via"]
        errors = validate_trace(trace)
        assert any("via" in e for e in errors)
