"""Tests for cross-process sweep observability aggregation."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.errors import ExperimentError
from repro.experiments.parallel import fork_available
from repro.experiments.sweep import (
    SweepPoint,
    _master_log_cache,
    _result_cache,
    _workload_cache,
    run_point,
    run_sweep,
)
from repro.obs.aggregate import CellObs, SweepObsCollector, trace_filename
from repro.obs.trace import read_trace


@pytest.fixture(autouse=True)
def clear_caches():
    _result_cache.clear()
    yield
    _result_cache.clear()
    _workload_cache.clear()
    _master_log_cache.clear()


def make_points(n=2, trace=False):
    config = SimulationConfig(trace=trace)
    return [
        SweepPoint("nasa", 25, 1.0, 2 * i, "balancing", 0.1, config=config)
        for i in range(n)
    ]


class TestCollector:
    def test_cells_merge_and_count(self):
        collector = SweepObsCollector()
        run_sweep(make_points(), seeds=(0, 1), collector=collector)
        assert collector.n_cells == 4
        metrics = collector.metrics_dict()
        assert metrics["counters"]["sim.dispatches"] > 0

    def test_metrics_dict_requires_finalize(self):
        collector = SweepObsCollector()
        with pytest.raises(ExperimentError, match="finaliz"):
            collector.metrics_dict()

    def test_duplicate_cell_rejected(self):
        collector = SweepObsCollector()
        obs = CellObs(metrics=None, trace_records=None)
        collector.add_cell(0, 0, obs)
        with pytest.raises(ExperimentError, match="duplicate"):
            collector.add_cell(0, 0, obs)

    def test_add_after_finalize_rejected(self):
        collector = SweepObsCollector()
        collector.finalize()
        with pytest.raises(ExperimentError):
            collector.add_cell(0, 0, CellObs(metrics=None, trace_records=None))

    def test_finalize_idempotent(self):
        collector = SweepObsCollector()
        run_sweep(make_points(1), seeds=(0,), collector=collector)
        first = collector.metrics_dict()
        collector.finalize()
        assert collector.metrics_dict() == first

    def test_trace_files_written(self, tmp_path):
        collector = SweepObsCollector(trace_dir=tmp_path)
        run_sweep(make_points(trace=True), seeds=(0, 1), collector=collector)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == sorted(
            trace_filename(i, s) for i in range(2) for s in range(2)
        )
        records = read_trace(tmp_path / trace_filename(0, 0))
        assert records[0]["kind"] == "header"

    def test_collector_bypasses_result_cache(self):
        points = make_points(1)
        run_sweep(points, seeds=(0,))  # warms the result cache
        collector = SweepObsCollector()
        run_sweep(points, seeds=(0,), collector=collector)
        assert collector.n_cells == 1  # cell actually re-ran


class TestSerialParallelParity:
    def test_results_identical_with_collector(self):
        points = make_points()
        baseline = run_sweep(points, seeds=(0, 1))
        _result_cache.clear()
        collector = SweepObsCollector()
        observed = run_sweep(points, seeds=(0, 1), collector=collector)
        assert observed == baseline

    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_parallel_metrics_equal_serial(self, tmp_path):
        points = make_points(3, trace=True)
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = SweepObsCollector(trace_dir=serial_dir)
        results_serial = run_sweep(
            points, seeds=(0, 1), workers=1, collector=serial
        )
        _result_cache.clear()
        parallel = SweepObsCollector(trace_dir=parallel_dir)
        results_parallel = run_sweep(
            points, seeds=(0, 1), workers=2, collector=parallel,
            min_cells_per_worker=0,
        )
        assert results_parallel == results_serial
        assert parallel.metrics_dict() == serial.metrics_dict()
        serial_names = sorted(p.name for p in serial_dir.iterdir())
        parallel_names = sorted(p.name for p in parallel_dir.iterdir())
        assert parallel_names == serial_names
        for name in serial_names:
            assert (parallel_dir / name).read_bytes() == (
                serial_dir / name
            ).read_bytes()

    def test_run_point_feeds_collector(self):
        collector = SweepObsCollector()
        run_point(make_points(1)[0], seeds=(0, 1), collector=collector, point_index=3)
        collector.finalize()
        assert collector.n_cells == 2
