"""Tests for the shared repro logging hierarchy."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs.log import ROOT_LOGGER_NAME, configure_logging, get_logger


@pytest.fixture(autouse=True)
def clean_root_logger():
    root = logging.getLogger(ROOT_LOGGER_NAME)
    saved_handlers = root.handlers[:]
    saved_level = root.level
    root.handlers = []
    yield
    root.handlers = saved_handlers
    root.setLevel(saved_level)


class TestGetLogger:
    def test_package_module_names_used_verbatim(self):
        assert get_logger("repro.experiments.sweep").name == "repro.experiments.sweep"
        assert get_logger("repro").name == "repro"

    def test_external_names_are_prefixed(self):
        assert get_logger("bench_core").name == "repro.bench_core"

    def test_children_propagate_to_repro_root(self):
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        get_logger("repro.child.module").info("hello from child")
        assert "hello from child" in stream.getvalue()
        assert "repro.child.module" in stream.getvalue()


class TestConfigureLogging:
    def test_verbosity_levels(self):
        assert configure_logging(0).level == logging.WARNING
        assert configure_logging(1).level == logging.INFO
        assert configure_logging(2).level == logging.DEBUG
        assert configure_logging(5).level == logging.DEBUG

    def test_idempotent_handler_install(self):
        root = configure_logging(1, stream=io.StringIO())
        configure_logging(2, stream=io.StringIO())
        handlers = [
            h for h in root.handlers if isinstance(h, logging.StreamHandler)
        ]
        assert len(handlers) == 1
        assert root.level == logging.DEBUG

    def test_quiet_by_default(self):
        stream = io.StringIO()
        configure_logging(0, stream=stream)
        get_logger("repro.x").info("not shown")
        get_logger("repro.x").warning("shown")
        assert "not shown" not in stream.getvalue()
        assert "shown" in stream.getvalue()
