"""Tests for trace recorders, NDJSON I/O and schema validation."""

from __future__ import annotations

import io

import pytest

from repro.errors import SimulationError
from repro.obs.schema import (
    DECISION_KINDS,
    TRACE_SCHEMA_VERSION,
    validate_record,
    validate_stream,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    iter_trace,
    read_trace,
    write_trace,
)


class TestTraceRecorder:
    def test_buffered_records(self):
        rec = TraceRecorder()
        rec.header(policy="balancing", workload="w", dims=[8, 4, 2], seed=0)
        rec.emit("arrival", 1.5, job=0, size=4)
        assert len(rec) == 2
        assert rec.records[0]["kind"] == "header"
        assert rec.records[0]["schema"] == TRACE_SCHEMA_VERSION
        assert rec.records[1] == {
            "kind": "arrival", "t": 1.5, "seq": 1, "job": 0, "size": 4,
        }

    def test_seq_is_dense(self):
        rec = TraceRecorder()
        for i in range(5):
            rec.emit("arrival", float(i), job=i, size=1)
        assert [r["seq"] for r in rec.records] == list(range(5))

    def test_header_must_be_first(self):
        rec = TraceRecorder()
        rec.emit("arrival", 0.0, job=0, size=1)
        with pytest.raises(SimulationError, match="first"):
            rec.header(policy="p")

    def test_sink_streaming(self):
        sink = io.StringIO()
        rec = TraceRecorder(sink=sink)
        rec.emit("arrival", 0.0, job=0, size=1)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        assert '"kind":"arrival"' in lines[0]
        with pytest.raises(SimulationError, match="sink"):
            rec.records

    def test_enabled_flags(self):
        assert TraceRecorder().enabled is True
        assert NULL_RECORDER.enabled is False

    def test_null_recorder_is_noop(self):
        rec = NullRecorder()
        rec.header(policy="x")
        rec.emit("arrival", 0.0, job=0, size=1)
        assert len(rec) == 0


class TestNdjsonIO:
    def test_round_trip(self, tmp_path):
        rec = TraceRecorder()
        rec.header(policy="p", workload="w", dims=[2, 2, 2], seed=1)
        rec.emit("dispatch", 3.0, job=1, size=8, base=[0, 0, 0],
                 shape=[2, 2, 2], via="fcfs", wall=60.0)
        path = rec.write(tmp_path / "t.ndjson")
        assert read_trace(path) == rec.records

    def test_byte_identical_encoding(self, tmp_path):
        records = [{"kind": "arrival", "t": 0.0, "seq": 0, "job": 3, "size": 2}]
        a, b = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
        write_trace(records, a)
        write_trace(records, b)
        assert a.read_bytes() == b.read_bytes()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text('{"kind":"arrival","t":0.0,"seq":0}\n\n\n')
        assert len(read_trace(path)) == 1

    def test_bad_json_pinpointed(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"kind":"arrival","t":0.0,"seq":0}\nnot-json\n')
        with pytest.raises(SimulationError, match=r"bad\.ndjson:2"):
            list(iter_trace(path))


class TestSchema:
    def test_valid_record(self):
        assert validate_record(
            {"kind": "arrival", "t": 0.0, "seq": 0, "job": 1, "size": 2}
        ) == []

    def test_unknown_kind(self):
        errors = validate_record({"kind": "nope", "t": 0.0, "seq": 0})
        assert any("kind" in e for e in errors)

    def test_missing_required_field(self):
        errors = validate_record(
            {"kind": "arrival", "t": 0.0, "seq": 0, "job": 1}
        )
        assert any("size" in e for e in errors)

    def test_decision_kinds_exclude_header(self):
        assert "header" not in DECISION_KINDS

    def test_stream_requires_header(self):
        errors = validate_stream(
            [{"kind": "arrival", "t": 0.0, "seq": 0, "job": 1, "size": 2}]
        )
        assert any("header" in e for e in errors)

    def test_stream_checks_seq_density(self):
        stream = [
            {"kind": "header", "t": 0.0, "seq": 0,
             "schema": TRACE_SCHEMA_VERSION, "policy": "p", "workload": "w",
             "dims": [2, 2, 2], "seed": 0},
            {"kind": "arrival", "t": 0.0, "seq": 5, "job": 1, "size": 2},
        ]
        errors = validate_stream(stream)
        assert any("seq" in e for e in errors)

    def test_stream_checks_time_monotonicity(self):
        stream = [
            {"kind": "header", "t": 0.0, "seq": 0,
             "schema": TRACE_SCHEMA_VERSION, "policy": "p", "workload": "w",
             "dims": [2, 2, 2], "seed": 0},
            {"kind": "arrival", "t": 10.0, "seq": 1, "job": 1, "size": 2},
            {"kind": "arrival", "t": 5.0, "seq": 2, "job": 2, "size": 2},
        ]
        errors = validate_stream(stream)
        assert any("time" in e or "decreas" in e for e in errors)

    def test_empty_stream_invalid(self):
        assert validate_stream([]) != []
