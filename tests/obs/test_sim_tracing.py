"""End-to-end tracing/profiling tests against the real simulator.

The load-bearing properties: instrumentation is *observational* (a
traced run reports exactly what an untraced run reports), identical-seed
runs emit byte-identical traces, and a perturbed run's trace diff names
the first divergent scheduler decision.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import SimulationSetup
from repro.core.config import SimulationConfig
from repro.obs.schema import DECISION_KINDS
from repro.obs.tools import diff_traces, validate_trace
from repro.obs.trace import NULL_RECORDER, TraceRecorder, _encode


def setup(trace=False, profile=False, **overrides):
    params = dict(
        site="nasa", n_jobs=40, n_failures=8, policy="balancing",
        parameter=0.3, seed=7,
        config=SimulationConfig(trace=trace, profile=profile),
    )
    params.update(overrides)
    return SimulationSetup(**params)


@pytest.fixture(scope="module")
def traced_sim():
    sim = setup(trace=True).build_simulator()
    sim.run()
    return sim


class TestObservationalInvariance:
    def test_traced_report_equals_untraced(self, traced_sim):
        plain = setup().run()
        traced = setup(trace=True).run()
        assert traced.records == plain.records
        assert traced.timing == plain.timing
        assert traced.capacity == plain.capacity
        assert traced.counters == plain.counters

    def test_profiled_report_equals_plain(self):
        plain = setup().run()
        profiled = setup(profile=True).run()
        assert profiled.records == plain.records
        assert profiled.capacity == plain.capacity

    def test_untraced_sim_uses_null_recorder(self):
        sim = setup().build_simulator()
        assert sim.recorder is NULL_RECORDER
        assert sim.metrics is None

    def test_trace_implies_metrics(self, traced_sim):
        assert traced_sim.metrics is not None
        assert traced_sim.metrics.counter("sim.dispatches").value > 0


class TestTraceContent:
    def test_trace_validates(self, traced_sim):
        assert validate_trace(traced_sim.recorder.records) == []

    def test_header_identifies_run(self, traced_sim):
        head = traced_sim.recorder.records[0]
        assert head["kind"] == "header"
        assert head["policy"] == "balancing"
        assert head["workload"] == "nasa-synthetic"
        assert head["n_jobs"] == 40

    def test_every_dispatch_has_a_candidates_record(self, traced_sim):
        records = traced_sim.recorder.records
        kinds = {r["kind"] for r in records}
        assert kinds <= DECISION_KINDS | {"header"}
        dispatches = [r for r in records if r["kind"] == "dispatch"]
        arrivals = [r for r in records if r["kind"] == "arrival"]
        finishes = [r for r in records if r["kind"] == "finish"]
        assert len(arrivals) == 40
        assert len(finishes) == 40
        # Every job dispatches at least once (restarts may add more).
        assert {r["job"] for r in dispatches} == {r["job"] for r in arrivals}

    def test_candidate_records_carry_scores(self, traced_sim):
        candidates = [
            r for r in traced_sim.recorder.records
            if r["kind"] == "candidates" and r["considered"]
        ]
        assert candidates
        entry = candidates[0]["considered"][0]
        assert {"base", "shape", "l_mfp"} <= entry.keys()

    def test_injected_recorder_wins_over_config(self):
        rec = TraceRecorder()
        sim = setup().build_simulator(recorder=rec)
        sim.run()
        assert sim.recorder is rec
        assert len(rec) > 0


class TestDeterminism:
    def test_identical_seed_traces_are_byte_identical(self, traced_sim):
        again = setup(trace=True).build_simulator()
        again.run()
        a = [_encode(r) for r in traced_sim.recorder.records]
        b = [_encode(r) for r in again.recorder.records]
        assert a == b
        assert diff_traces(traced_sim.recorder.records, again.recorder.records) is None

    def test_perturbed_run_pinpointed_to_first_divergence(self):
        # A confidence change must alter at least the candidate scoring
        # on a scenario where predictions overlap placements (sdsc, 10
        # failures); diff names the exact first decision that differs.
        def run(parameter):
            sim = setup(
                trace=True, site="sdsc", n_jobs=60, n_failures=10,
                parameter=parameter, seed=0,
            ).build_simulator()
            sim.run()
            return sim.recorder.records

        baseline, perturbed = run(0.1), run(0.9)
        divergence = diff_traces(baseline, perturbed)
        assert divergence is not None
        # Everything before the named decision is identical...
        base = [r for r in baseline if r["kind"] != "header"]
        other = [r for r in perturbed if r["kind"] != "header"]
        assert base[: divergence.index] == other[: divergence.index]
        # ...and the named decision itself differs in the named fields.
        assert divergence.fields
        for field in divergence.fields:
            assert divergence.record_a.get(field) != divergence.record_b.get(field)
