"""Tests for the metrics registry: accessors, merge, serialisation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    HISTOGRAM_BOUNDS,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    activate,
)


class TestAccessors:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2.5)
        assert reg.counter("a").value == 3.5

    def test_gauge_last_write(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(4)
        reg.gauge("g").set(2)
        assert reg.gauge("g").value == 2.0

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        for v in (1, 3, 100):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == 104.0
        assert hist.min == 1.0 and hist.max == 100.0
        assert hist.mean == pytest.approx(104.0 / 3)
        assert sum(hist.buckets) == 3

    def test_histogram_overflow_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        hist.observe(HISTOGRAM_BOUNDS[-1] + 1)
        assert hist.buckets[-1] == 1

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("h").mean == 0.0

    def test_timer_accumulates(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        with reg.timer("t"):
            pass
        stat = reg.timers["t"]
        assert stat.count == 2
        assert stat.total_s >= 0.0
        assert stat.max_s <= stat.total_s

    def test_zero_duration_timer(self):
        # A scope that raises still records its (possibly ~0) duration.
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            with reg.timer("t"):
                raise ValueError("boom")
        assert reg.timers["t"].count == 1


class TestSerialisation:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(12)
        with reg.timer("t"):
            pass
        restored = MetricsRegistry.from_dict(reg.to_dict())
        assert restored.to_dict() == reg.to_dict()

    def test_empty_registry_round_trip(self):
        reg = MetricsRegistry()
        data = reg.to_dict()
        assert data["schema"] == METRICS_SCHEMA_VERSION
        assert data["counters"] == {}
        assert MetricsRegistry.from_dict(data).to_dict() == data

    def test_exclude_timings(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        data = reg.to_dict(include_timings=False)
        assert "timers" not in data

    def test_wrong_schema_rejected(self):
        with pytest.raises(SimulationError, match="schema"):
            MetricsRegistry.from_dict({"schema": 999})

    def test_wrong_bucket_count_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1)
        data = reg.to_dict()
        data["histograms"]["h"]["buckets"] = [0, 1]
        with pytest.raises(SimulationError, match="buckets"):
            MetricsRegistry.from_dict(data)


class TestMerge:
    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set(5)
        b.gauge("g").set(3)
        a.histogram("h").observe(1)
        b.histogram("h").observe(50)
        a.merge(b)
        assert a.counter("c").value == 3.0
        assert a.gauge("g").value == 5.0  # max wins
        hist = a.histogram("h")
        assert hist.count == 2 and hist.min == 1.0 and hist.max == 50.0

    def test_merge_is_order_independent(self):
        def build(values):
            reg = MetricsRegistry()
            for v in values:
                reg.counter("c").inc(v)
                reg.gauge("g").set(v)
                reg.histogram("h").observe(v)
            return reg

        parts = [build([1, 9]), build([4]), build([2, 2])]
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for p in parts:
            fwd.merge(p)
        for p in reversed(parts):
            rev.merge(p)
        assert fwd.to_dict() == rev.to_dict()

    def test_merge_dict(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(4)
        a.merge_dict(b.to_dict())
        assert a.counter("c").value == 4.0


class TestActivate:
    def test_activate_installs_and_restores(self):
        assert obs_metrics.ACTIVE is None
        reg = MetricsRegistry()
        with activate(reg) as active:
            assert active is reg
            assert obs_metrics.ACTIVE is reg
        assert obs_metrics.ACTIVE is None

    def test_activate_nests(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with activate(outer):
            with activate(inner):
                assert obs_metrics.ACTIVE is inner
            assert obs_metrics.ACTIVE is outer

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with activate(MetricsRegistry()):
                raise RuntimeError
        assert obs_metrics.ACTIVE is None


class TestSummary:
    def test_summary_lines_cover_all_types(self):
        reg = MetricsRegistry()
        reg.counter("sim.dispatches").inc(10)
        reg.gauge("g").set(1)
        reg.histogram("h").observe(2)
        with reg.timer("sim.run"):
            pass
        lines = reg.summary_lines()
        text = "\n".join(lines)
        assert "counter" in text and "gauge" in text
        assert "histogram" in text and "timer" in text

    def test_empty_summary(self):
        assert MetricsRegistry().summary_lines() == []
