"""Tests for FailureEvent and FailureLog."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FailureModelError
from repro.failures.events import FailureEvent, FailureLog


def log_of(*pairs: tuple[float, int], n_nodes: int = 8) -> FailureLog:
    return FailureLog(n_nodes, [FailureEvent(t, n) for t, n in pairs])


class TestFailureEvent:
    def test_validation(self):
        with pytest.raises(FailureModelError):
            FailureEvent(-1.0, 0)
        with pytest.raises(FailureModelError):
            FailureEvent(0.0, -1)


class TestFailureLog:
    def test_sorted_by_time(self):
        log = log_of((30.0, 1), (10.0, 2), (20.0, 0))
        assert list(log.times) == [10.0, 20.0, 30.0]
        assert list(log.nodes) == [2, 0, 1]

    def test_node_range_checked(self):
        with pytest.raises(FailureModelError):
            log_of((0.0, 8), n_nodes=8)

    def test_from_arrays_matches_constructor(self):
        times = np.array([5.0, 1.0, 3.0])
        nodes = np.array([2, 0, 1])
        a = FailureLog.from_arrays(8, times, nodes)
        b = log_of((5.0, 2), (1.0, 0), (3.0, 1))
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.nodes, b.nodes)

    def test_from_arrays_shape_mismatch(self):
        with pytest.raises(FailureModelError):
            FailureLog.from_arrays(8, np.array([1.0]), np.array([0, 1]))

    def test_from_arrays_validates_ranges(self):
        with pytest.raises(FailureModelError):
            FailureLog.from_arrays(8, np.array([-1.0]), np.array([0]))
        with pytest.raises(FailureModelError):
            FailureLog.from_arrays(8, np.array([1.0]), np.array([9]))

    def test_immutable_arrays(self):
        log = log_of((1.0, 0))
        with pytest.raises(ValueError):
            log.times[0] = 5.0

    def test_len_iter_span(self):
        log = log_of((1.0, 0), (11.0, 1))
        assert len(log) == 2
        assert log.span == 10.0
        events = list(log)
        assert events[0] == FailureEvent(1.0, 0)

    def test_empty_log(self):
        log = FailureLog(8)
        assert len(log) == 0 and log.span == 0.0
        assert log.nodes_failing_in(0, 1e9).size == 0
        assert not log.failure_mask(0, 1e9).any()

    def test_window_queries(self):
        log = log_of((10.0, 1), (20.0, 2), (20.0, 1), (30.0, 3))
        assert log.count_in(10.0, 20.0) == 1          # [t0, t1)
        assert log.count_in(10.0, 20.0001) == 3
        assert set(log.nodes_failing_in(15.0, 25.0)) == {1, 2}
        mask = log.failure_mask(15.0, 25.0)
        assert mask[1] and mask[2] and not mask[3] and not mask[0]

    def test_events_in(self):
        log = log_of((10.0, 1), (20.0, 2), (30.0, 3))
        got = list(log.events_in(10.0, 30.0))
        assert [e.node for e in got] == [1, 2]

    def test_per_node_counts(self):
        log = log_of((1.0, 1), (2.0, 1), (3.0, 5))
        counts = log.per_node_counts()
        assert counts[1] == 2 and counts[5] == 1 and counts.sum() == 3

    def test_mean_failures_per_node_day(self):
        # 3 events, 2 nodes, span exactly one day.
        log = FailureLog(2, [FailureEvent(0.0, 0), FailureEvent(1000.0, 1), FailureEvent(86_400.0, 0)])
        assert log.mean_failures_per_node_day() == pytest.approx(1.5)

    @given(st.lists(st.tuples(st.floats(0, 1e6), st.integers(0, 7)), max_size=50), st.floats(0, 1e6), st.floats(0, 1e6))
    @settings(max_examples=50)
    def test_window_count_matches_bruteforce(self, pairs, a, b):
        t0, t1 = min(a, b), max(a, b)
        log = log_of(*pairs) if pairs else FailureLog(8)
        expected = sum(1 for t, _ in pairs if t0 <= t < t1)
        assert log.count_in(t0, t1) == expected
