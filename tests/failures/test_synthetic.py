"""Tests for the bursty failure generator, rescaling and mapping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FailureModelError
from repro.failures.events import FailureEvent, FailureLog
from repro.failures.mapping import map_node_ids
from repro.failures.scaling import failures_for_rate, rescale_failures
from repro.failures.synthetic import BurstFailureModel, generate_failures
from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims

D = BGL_SUPERNODE_DIMS
HORIZON = 30 * 86_400.0


class TestBurstFailureModel:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mean_burst_interarrival_s=0.0),
            dict(burst_size_p=0.0),
            dict(burst_size_p=1.5),
            dict(locality_radius=-1),
            dict(burst_window_s=-1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(FailureModelError):
            BurstFailureModel(**kwargs)


class TestGenerateFailures:
    def test_exact_count_and_horizon(self):
        log = generate_failures(D, 500, HORIZON, seed=0)
        assert len(log) == 500
        assert log.n_nodes == 128
        assert float(log.times.min()) >= 0.0
        assert float(log.times.max()) < HORIZON

    def test_deterministic(self):
        a = generate_failures(D, 200, HORIZON, seed=7)
        b = generate_failures(D, 200, HORIZON, seed=7)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.nodes, b.nodes)

    def test_zero_events(self):
        assert len(generate_failures(D, 0, HORIZON, seed=0)) == 0

    def test_validation(self):
        with pytest.raises(FailureModelError):
            generate_failures(D, -1, HORIZON)
        with pytest.raises(FailureModelError):
            generate_failures(D, 10, 0.0)

    def test_temporal_clustering_present(self):
        """Bursty traces have far more tight same-window pairs than a
        Poisson process of the same rate would."""
        log = generate_failures(
            D, 1000, HORIZON, model=BurstFailureModel(burst_size_p=0.3), seed=1
        )
        gaps = np.diff(log.times)
        tight = float((gaps < 300.0).mean())
        # Poisson with 1000 events / 30 days: P(gap < 300 s) ~ 0.11.
        assert tight > 0.4

    def test_isolated_failures_mode(self):
        model = BurstFailureModel(burst_size_p=1.0, locality_radius=0, burst_window_s=0.0)
        log = generate_failures(D, 300, HORIZON, model=model, seed=2)
        assert len(log) == 300

    def test_spatial_locality(self):
        """Within a tight time window, failing nodes concentrate near
        each other (Manhattan distance bounded by the model radius)."""
        from repro.geometry.coords import manhattan_torus_distance

        model = BurstFailureModel(burst_size_p=0.25, locality_radius=1, burst_window_s=10.0)
        log = generate_failures(D, 400, HORIZON, model=model, seed=3)
        # Consecutive events closer than 10s come from one burst.
        for i in range(len(log) - 1):
            if log.times[i + 1] - log.times[i] < 1.0:
                a = D.coord(int(log.nodes[i]))
                b = D.coord(int(log.nodes[i + 1]))
                assert manhattan_torus_distance(D, a, b) <= 2


class TestRescale:
    def test_thin_to_count(self):
        log = generate_failures(D, 1000, HORIZON, seed=0)
        small = rescale_failures(log, 100, seed=1)
        assert len(small) == 100
        # Thinned events are a subset of the original times.
        assert set(np.round(small.times, 6)) <= set(np.round(log.times, 6))

    def test_identity(self):
        log = generate_failures(D, 100, HORIZON, seed=0)
        assert rescale_failures(log, 100) is log

    def test_to_zero(self):
        log = generate_failures(D, 100, HORIZON, seed=0)
        assert len(rescale_failures(log, 0)) == 0

    def test_grow(self):
        log = generate_failures(D, 100, HORIZON, seed=0)
        big = rescale_failures(log, 350, seed=2)
        assert len(big) == 350

    def test_grow_empty_rejected(self):
        with pytest.raises(FailureModelError):
            rescale_failures(FailureLog(128), 10)

    def test_nested_thinning_monotone_mean_rate(self):
        log = generate_failures(D, 2000, HORIZON, seed=0)
        for n in (1500, 1000, 500):
            assert len(rescale_failures(log, n, seed=5)) == n


class TestFailuresForRate:
    def test_basic(self):
        # 0.25 failures/node/day on 128 nodes for 4 days = 128 events.
        assert failures_for_rate(0.25, 128, 4 * 86_400.0) == 128

    def test_validation(self):
        with pytest.raises(FailureModelError):
            failures_for_rate(-1.0, 128, 100.0)
        with pytest.raises(FailureModelError):
            failures_for_rate(1.0, 0, 100.0)


class TestMapping:
    def test_remaps_onto_torus(self):
        src = FailureLog(350, [FailureEvent(float(i), i % 350) for i in range(700)])
        mapped = map_node_ids(src, D, seed=0)
        assert mapped.n_nodes == 128
        assert len(mapped) == 700
        assert int(mapped.nodes.max()) < 128

    def test_stable_per_external_id(self):
        src = FailureLog(350, [FailureEvent(0.0, 42), FailureEvent(99.0, 42)])
        mapped = map_node_ids(src, D, seed=1)
        assert mapped.nodes[0] == mapped.nodes[1]

    def test_deterministic_by_seed(self):
        src = FailureLog(350, [FailureEvent(float(i), i) for i in range(350)])
        a = map_node_ids(src, D, seed=3)
        b = map_node_ids(src, D, seed=3)
        assert np.array_equal(a.nodes, b.nodes)

    def test_balanced(self):
        src = FailureLog(350, [FailureEvent(float(i), i) for i in range(350)])
        mapped = map_node_ids(src, D, seed=0)
        counts = np.bincount(mapped.nodes, minlength=128)
        assert counts.max() <= int(np.ceil(350 / 128))

    def test_empty(self):
        assert len(map_node_ids(FailureLog(350), D)) == 0
