"""Checkpoint/resume under chaos: the headline resilience contract.

A sweep interrupted by worker kills, poison cells or checkpoint
corruption, then resumed against the same checkpoint directory, must
produce results *bitwise identical* to an uninterrupted serial run —
exact float equality through the frozen-dataclass ``==``.
"""

from __future__ import annotations

import time

import repro.experiments.sweep as sweep_mod
from repro.experiments.sweep import run_sweep, run_sweep_outcome
from repro.obs.metrics import MetricsRegistry, activate
from repro.resilience import CellStore, ChaosConfig, RetryPolicy

from tests.resilience.conftest import needs_fork


def _serial_reference(points, seeds):
    ref = run_sweep(points, seeds, workers=1)
    sweep_mod._result_cache.clear()
    return ref


@needs_fork
class TestKillAndResume:
    def test_transient_kill_bitwise_identical(self, grid, fast_retry):
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        chaos = ChaosConfig(kill_cells=((0, 0),), kill_attempts=1)
        outcome = run_sweep_outcome(
            points, seeds, workers=2, retry=fast_retry, chaos=chaos
        )
        assert outcome.results == ref
        assert outcome.stats.pool_rebuilds >= 1

    def test_killed_sweep_resumes_from_checkpoints(
        self, grid, fast_retry, tmp_path
    ):
        """Run 1 loses cells to a poison raise; run 2 (chaos off, same
        directory) restores every surviving cell and only computes what
        is missing — and the union equals an uninterrupted run."""
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        poison = ChaosConfig(raise_cells=((1, 0),), raise_attempts=99)
        first = run_sweep_outcome(
            points, seeds, workers=2, checkpoint_dir=tmp_path,
            retry=fast_retry, chaos=poison,
        )
        assert not first.complete
        computed_first = first.stats.cells_computed
        assert computed_first == len(points) * len(seeds) - 1

        sweep_mod._result_cache.clear()
        second = run_sweep_outcome(
            points, seeds, workers=2, checkpoint_dir=tmp_path,
            retry=fast_retry,
        )
        assert second.complete
        assert second.results == ref
        assert second.stats.checkpoint_hits == computed_first
        assert second.stats.cells_computed == 1


class TestResumeSemantics:
    def test_corrupted_checkpoints_recomputed_on_resume(
        self, grid, fast_retry, tmp_path
    ):
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        # Corrupt both of point 0's freshly written cells.
        chaos = ChaosConfig(corrupt_cells=((0, 0), (0, 1)))
        first = run_sweep_outcome(
            points, seeds, checkpoint_dir=tmp_path, retry=fast_retry,
            chaos=chaos,
        )
        assert first.results == ref  # corruption is post-success, on disk only
        store = CellStore(tmp_path)
        assert len(store.validate()) == 2

        sweep_mod._result_cache.clear()
        second = run_sweep_outcome(
            points, seeds, checkpoint_dir=tmp_path, retry=fast_retry
        )
        assert second.results == ref
        assert second.stats.checkpoint_corrupt == 2
        assert second.stats.checkpoint_hits == len(points) * len(seeds) - 2
        assert second.stats.cells_computed == 2
        # The recompute healed the store in place.
        assert CellStore(tmp_path).validate() == []

    def test_resume_false_recomputes_everything(
        self, grid, fast_retry, tmp_path
    ):
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        n_cells = len(points) * len(seeds)
        first = run_sweep_outcome(
            points, seeds, checkpoint_dir=tmp_path, retry=fast_retry
        )
        assert first.stats.cells_computed == n_cells

        sweep_mod._result_cache.clear()
        second = run_sweep_outcome(
            points, seeds, checkpoint_dir=tmp_path, retry=fast_retry,
            resume=False,
        )
        assert second.results == ref
        assert second.stats.checkpoint_hits == 0
        assert second.stats.cells_computed == n_cells

    def test_memo_cache_bypassed_for_durability(
        self, grid, fast_retry, tmp_path
    ):
        """An in-memory memo hit cannot attest a durable checkpoint: a
        resilient sweep after a warm plain sweep must still write every
        cell to disk."""
        points, seeds = grid
        run_sweep(points, seeds, workers=1)  # warms _result_cache
        outcome = run_sweep_outcome(
            points, seeds, checkpoint_dir=tmp_path, retry=fast_retry
        )
        assert outcome.stats.cells_computed == len(points) * len(seeds)
        assert len(CellStore(tmp_path)) == len(points) * len(seeds)

    def test_stale_directory_from_other_sweep_is_inert(
        self, grid, fast_retry, tmp_path
    ):
        """Content-addressed keys: checkpoints of a different grid are
        never restored into this one."""
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        import dataclasses

        other = [dataclasses.replace(p, n_jobs=p.n_jobs + 1) for p in points]
        run_sweep_outcome(
            other, seeds, checkpoint_dir=tmp_path, retry=fast_retry
        )
        sweep_mod._result_cache.clear()
        outcome = run_sweep_outcome(
            points, seeds, checkpoint_dir=tmp_path, retry=fast_retry
        )
        assert outcome.results == ref
        assert outcome.stats.checkpoint_hits == 0
        assert outcome.stats.cells_computed == len(points) * len(seeds)


class TestKilledQueueWorker:
    def test_killed_queue_worker_reclaim_resume_bitwise(self, grid, tmp_path):
        """Multi-host variant of kill-and-resume: a queue worker dies
        deterministically *between claiming and computing* a cell
        (``kill_after_claims``, exiting with the chaos harness's
        ``KILL_EXIT_CODE``); the orphaned claim's lease expires; the
        resumed driver reclaims it and the merged results are bitwise
        identical to serial, with the reclaim visible in metrics."""
        from repro.experiments.queue import (
            WorkQueue,
            run_queue_sweep,
            spawn_worker_process,
        )
        from repro.failures.synthetic import BurstFailureModel
        from repro.resilience.chaos import KILL_EXIT_CODE

        points, seeds = grid
        ref = _serial_reference(points, seeds)
        queue = WorkQueue(tmp_path, lease_s=1.0)
        queue.enqueue(points, seeds, BurstFailureModel())
        proc = spawn_worker_process(tmp_path, lease_s=1.0, kill_after_claims=1)
        assert proc.wait(timeout=120) == KILL_EXIT_CODE
        assert queue.counts()["claims"] == 1  # died holding a claim

        registry = MetricsRegistry()
        with activate(registry):
            # Any observer may reclaim; do it here deterministically
            # (clock already past the deadline) so the metric lands in
            # this process's registry instead of racing the workers.
            assert queue.reclaim_expired(now=time.time() + 10.0) == 1
            outcome = run_queue_sweep(
                points, seeds, queue_dir=tmp_path, workers=2,
                lease_s=1.0, timeout_s=120.0,
            )
        assert outcome.results == ref
        assert outcome.complete
        assert not outcome.quarantined
        assert outcome.stats.mode == "queue"
        counters = {k: c.value for k, c in registry.counters.items()}
        assert counters["queue.claim.reclaimed"] == 1


class TestObsIntegration:
    def test_resilience_events_flow_into_active_metrics(
        self, grid, fast_retry, tmp_path
    ):
        points, seeds = grid
        registry = MetricsRegistry()
        chaos = ChaosConfig(raise_cells=((0, 0),), raise_attempts=1)
        with activate(registry):
            run_sweep_outcome(
                points, seeds, checkpoint_dir=tmp_path, retry=fast_retry,
                chaos=chaos,
            )
            sweep_mod._result_cache.clear()
            run_sweep_outcome(
                points, seeds, checkpoint_dir=tmp_path, retry=fast_retry
            )
        counters = {k: c.value for k, c in registry.counters.items()}
        n_cells = len(points) * len(seeds)
        assert counters["resilience.cell.computed"] == n_cells
        assert counters["resilience.cell.retries"] == 1
        assert counters["resilience.chaos.raises"] == 1
        assert counters["resilience.checkpoint.write"] == n_cells
        assert counters["resilience.checkpoint.hit"] == n_cells
