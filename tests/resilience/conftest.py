"""Shared fixtures for the resilience suite.

Every test here runs sweeps, so the module-level sweep caches are
isolated exactly as in ``tests/experiments`` (small master failure logs,
cleared memo caches).  The grids are deliberately tiny — resilience
semantics are about *which* cells run and what survives, not about
simulation scale.
"""

from __future__ import annotations

import pytest

import repro.experiments.sweep as sweep_mod
from repro.experiments.parallel import fork_available
from repro.experiments.sweep import SweepPoint
from repro.resilience import RetryPolicy

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


@pytest.fixture(autouse=True)
def small_master_log(monkeypatch):
    """Shrink master failure logs and isolate every sweep-level cache."""
    monkeypatch.setattr(sweep_mod, "MASTER_FAILURE_COUNT", 64)
    sweep_mod._result_cache.clear()
    sweep_mod._master_log_cache.clear()
    yield
    sweep_mod._result_cache.clear()
    sweep_mod._master_log_cache.clear()


@pytest.fixture
def grid():
    """Two points x two seeds: four cells, two policies."""
    points = [
        SweepPoint("nasa", 15, 1.0, 2, "krevat", 0.0),
        SweepPoint("nasa", 18, 1.0, 3, "balancing", 0.5),
    ]
    return points, (0, 1)


@pytest.fixture
def fast_retry():
    """A RetryPolicy that never sleeps (deterministic tests stay fast)."""
    return RetryPolicy(base_delay_s=0.0, jitter_fraction=0.0)
