"""Poison cells quarantine; the rest of the sweep completes.

A poison cell (fails every attempt) must cost the sweep exactly that
cell: the point averages over surviving seeds, a fully poisoned point
reports ``None``, and the quarantine document names every lost cell.
A worker pool that keeps breaking degrades to in-process execution and
still finishes the sweep with serially-identical results.
"""

from __future__ import annotations

import json

import pytest

import repro.experiments.sweep as sweep_mod
from repro.experiments.parallel import SweepExecutor
from repro.experiments.sweep import run_sweep, run_sweep_outcome
from repro.resilience import ChaosConfig, Quarantine, RetryPolicy

from tests.resilience.conftest import needs_fork


def _serial_reference(points, seeds):
    ref = run_sweep(points, seeds, workers=1)
    sweep_mod._result_cache.clear()
    return ref


class TestQuarantine:
    def test_poison_cell_quarantined_partial_point(
        self, grid, fast_retry, tmp_path
    ):
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        chaos = ChaosConfig(raise_cells=((1, 1),), raise_attempts=99)
        outcome = run_sweep_outcome(
            points, seeds, checkpoint_dir=tmp_path, retry=fast_retry,
            chaos=chaos,
        )
        # The unaffected point is bitwise identical to serial.
        assert outcome.results[0] == ref[0]
        # The poisoned point averages over its surviving seed.
        assert outcome.results[1] is not None
        assert outcome.results[1].n_seeds == 1
        assert outcome.results[1] != ref[1]
        assert [ (e.point_index, e.seed_index) for e in outcome.quarantined ] \
            == [(1, 1)]
        entry = outcome.quarantined[0]
        assert entry.error_type == "ChaosError"
        assert entry.attempts == fast_retry.max_attempts
        assert not outcome.complete
        assert outcome.stats.quarantined == 1

    def test_quarantine_json_structured(self, grid, fast_retry, tmp_path):
        points, seeds = grid
        chaos = ChaosConfig(raise_cells=((0, 0),), raise_attempts=99)
        run_sweep_outcome(
            points, seeds, checkpoint_dir=tmp_path, retry=fast_retry,
            chaos=chaos,
        )
        path = tmp_path / "quarantine.json"
        document = json.loads(path.read_text())
        assert document["schema"] == 1
        [entry] = document["entries"]
        assert entry["point_index"] == 0 and entry["seed_index"] == 0
        assert entry["error_type"] == "ChaosError"
        assert entry["key"]  # reproducible: names the cell's content key
        loaded = Quarantine.load(path)
        assert loaded.cells() == {(0, 0)}

    def test_fully_poisoned_point_is_none(self, grid, fast_retry):
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        chaos = ChaosConfig(
            raise_cells=((0, 0), (0, 1)), raise_attempts=99
        )
        outcome = run_sweep_outcome(points, seeds, retry=fast_retry, chaos=chaos)
        assert outcome.results[0] is None
        assert outcome.results[1] == ref[1]
        assert len(outcome.quarantined) == 2
        assert not outcome.complete

    @needs_fork
    def test_pooled_poison_cell_quarantined(self, grid, fast_retry):
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        chaos = ChaosConfig(raise_cells=((1, 0),), raise_attempts=99)
        outcome = run_sweep_outcome(
            points, seeds, workers=2, retry=fast_retry, chaos=chaos
        )
        assert outcome.results[0] == ref[0]
        assert outcome.results[1].n_seeds == 1
        assert {(e.point_index, e.seed_index) for e in outcome.quarantined} \
            == {(1, 0)}

    def test_partial_point_never_enters_memo_cache(self, grid, fast_retry):
        """A partial average must not be served to a later clean sweep."""
        points, seeds = grid
        chaos = ChaosConfig(raise_cells=((1, 1),), raise_attempts=99)
        outcome = run_sweep_outcome(points, seeds, retry=fast_retry, chaos=chaos)
        assert outcome.results[1].n_seeds == 1
        clean = run_sweep(points, seeds, workers=1)
        assert clean[1].n_seeds == len(seeds)


@needs_fork
class TestDegradation:
    def test_persistent_killer_degrades_to_inprocess(self, grid):
        """A cell that kills its worker on every attempt forces the pool
        to degrade; kills don't fire in-process, so the sweep completes
        with results bitwise identical to serial."""
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        chaos = ChaosConfig(kill_cells=((0, 0),), kill_attempts=99)
        policy = RetryPolicy(
            base_delay_s=0.0, jitter_fraction=0.0, max_attempts=8,
            max_pool_rebuilds=1,
        )
        outcome = run_sweep_outcome(
            points, seeds, workers=2, retry=policy, chaos=chaos
        )
        assert outcome.results == ref
        assert outcome.stats.degraded
        assert outcome.stats.pool_rebuilds == 2
        assert not outcome.quarantined

    def test_transient_kill_recovers_without_degrading(self, grid, fast_retry):
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        chaos = ChaosConfig(kill_cells=((0, 0),), kill_attempts=1)
        outcome = run_sweep_outcome(
            points, seeds, workers=2, retry=fast_retry, chaos=chaos
        )
        assert outcome.results == ref
        assert outcome.stats.pool_rebuilds >= 1
        assert not outcome.stats.degraded
        assert not outcome.quarantined
        assert outcome.stats.resubmits >= 1

    def test_zero_rebuild_budget_degrades_immediately(self, grid):
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        chaos = ChaosConfig(kill_cells=((1, 1),), kill_attempts=99)
        policy = RetryPolicy(
            base_delay_s=0.0, jitter_fraction=0.0, max_attempts=8,
            max_pool_rebuilds=0,
        )
        outcome = run_sweep_outcome(
            points, seeds, workers=2, retry=policy, chaos=chaos
        )
        assert outcome.results == ref
        assert outcome.stats.degraded
        assert outcome.stats.pool_rebuilds == 1
