"""RetryPolicy schedule determinism, fake-clock backoff, quarantine I/O.

The backoff schedule must be a pure function of ``(policy, cell,
attempt)``: no wall clock, no global RNG.  The executor consumes it via
an injectable ``sleep``, which these tests replace with a recorder so
the exact delays an interrupted cell experiences are asserted, not
timed.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, strategies as st

from repro.errors import CellTimeoutError, ResilienceError
from repro.experiments.parallel import SweepExecutor
from repro.resilience import (
    ChaosConfig,
    Quarantine,
    QuarantineEntry,
    RetryPolicy,
    cell_timeout,
)


class TestBackoffSchedule:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(
            base_delay_s=0.5, backoff_factor=2.0, jitter_fraction=0.0,
            max_attempts=5, max_delay_s=100.0,
        )
        assert policy.schedule((0, 0)) == [0.5, 1.0, 2.0, 4.0]

    def test_cap_at_max_delay(self):
        policy = RetryPolicy(
            base_delay_s=1.0, backoff_factor=10.0, jitter_fraction=0.0,
            max_attempts=5, max_delay_s=30.0,
        )
        assert policy.schedule((0, 0)) == [1.0, 10.0, 30.0, 30.0]

    def test_deterministic_across_instances(self):
        a = RetryPolicy(jitter_seed=7)
        b = RetryPolicy(jitter_seed=7)
        assert a.backoff_s((3, 1), 2) == b.backoff_s((3, 1), 2)

    def test_jitter_decorrelates_cells(self):
        policy = RetryPolicy(jitter_fraction=0.5)
        delays = {policy.backoff_s((i, 0), 1) for i in range(16)}
        assert len(delays) > 1

    @given(
        base=st.floats(0.001, 10.0),
        factor=st.floats(1.0, 4.0),
        jitter=st.floats(0.0, 0.99),
        attempt=st.integers(1, 10),
        cell=st.tuples(st.integers(0, 50), st.integers(0, 10)),
    )
    def test_jitter_bounds_and_purity(self, base, factor, jitter, attempt, cell):
        policy = RetryPolicy(
            base_delay_s=base, backoff_factor=factor, jitter_fraction=jitter,
            max_attempts=10, max_delay_s=60.0,
        )
        raw = min(base * factor ** (attempt - 1), 60.0)
        delay = policy.backoff_s(cell, attempt)
        assert raw * (1 - jitter) <= delay <= raw * (1 + jitter)
        assert delay == policy.backoff_s(cell, attempt)  # pure

    def test_attempt_is_one_based(self):
        with pytest.raises(ResilienceError):
            RetryPolicy().backoff_s((0, 0), 0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(base_delay_s=-1.0),
            dict(backoff_factor=0.5),
            dict(jitter_fraction=1.0),
            dict(cell_timeout_s=0.0),
            dict(max_pool_rebuilds=-1),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            RetryPolicy(**kwargs)


class TestFakeClockBackoff:
    def test_executor_sleeps_exact_schedule(self, grid):
        """A transiently raising cell waits exactly its policy schedule.

        The executor's clock is injected, so the recorded sleeps are the
        policy's deterministic values — nothing here measures time.
        """
        points, seeds = grid
        slept: list[float] = []
        policy = RetryPolicy(
            base_delay_s=0.5, backoff_factor=2.0, jitter_fraction=0.0,
            max_attempts=4,
        )
        # Cell (1, 0) fails its first two attempts, then runs clean.
        chaos = ChaosConfig(raise_cells=((1, 0),), raise_attempts=2)
        executor = SweepExecutor(
            workers=1, retry=policy, chaos=chaos, sleep=slept.append
        )
        outcome = executor.run_outcome(points, seeds)
        assert outcome.complete
        assert outcome.stats.retries == 2
        assert slept == [
            policy.backoff_s((1, 0), 1),
            policy.backoff_s((1, 0), 2),
        ] == [0.5, 1.0]

    def test_jittered_schedule_still_replayable(self, grid):
        points, seeds = grid
        policy = RetryPolicy(
            base_delay_s=0.25, jitter_fraction=0.3, jitter_seed=11,
            max_attempts=3,
        )
        chaos = ChaosConfig(raise_cells=((0, 1),), raise_attempts=1)

        def run() -> list[float]:
            import repro.experiments.sweep as sweep_mod

            sweep_mod._result_cache.clear()
            slept: list[float] = []
            SweepExecutor(
                workers=1, retry=policy, chaos=chaos, sleep=slept.append
            ).run_outcome(points, seeds)
            return slept

        first, second = run(), run()
        assert first == second == [policy.backoff_s((0, 1), 1)]


class TestCellTimeout:
    def test_timeout_raises_cell_timeout_error(self):
        with pytest.raises(CellTimeoutError):
            with cell_timeout(0.05):
                time.sleep(5.0)

    def test_no_timeout_is_noop(self):
        with cell_timeout(None):
            pass

    def test_handler_restored_after_use(self):
        import signal

        before = signal.getsignal(signal.SIGALRM)
        with cell_timeout(10.0):
            pass
        assert signal.getsignal(signal.SIGALRM) is before

    def test_noop_off_main_thread(self):
        outcome: list[Exception | None] = [None]

        def body():
            try:
                with cell_timeout(0.01):
                    time.sleep(0.05)
            except Exception as exc:  # pragma: no cover - failure path
                outcome[0] = exc

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert outcome[0] is None


class TestQuarantineDocument:
    def test_round_trip(self, tmp_path):
        quarantine = Quarantine()
        quarantine.add(
            QuarantineEntry(
                point_index=1, seed_index=0, seed=0, attempts=3,
                error_type="ChaosError", error="boom", key="ab" * 32,
            )
        )
        quarantine.add(
            QuarantineEntry(
                point_index=0, seed_index=1, seed=1, attempts=2,
                error_type="ValueError", error="bad",
            )
        )
        path = quarantine.write(tmp_path / "quarantine.json")
        loaded = Quarantine.load(path)
        # Written sorted by (point_index, seed_index).
        assert [e.point_index for e in loaded.entries] == [0, 1]
        assert set(loaded.entries) == set(quarantine.entries)
        assert loaded.cells() == {(0, 1), (1, 0)}

    def test_empty_document_still_written(self, tmp_path):
        path = Quarantine().write(tmp_path / "quarantine.json")
        assert path.exists()
        assert len(Quarantine.load(path)) == 0

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "quarantine.json"
        path.write_text('{"schema": 999, "entries": []}')
        with pytest.raises(ResilienceError):
            Quarantine.load(path)
