"""CellStore durability and verification contract.

The properties a resumable sweep leans on:

* a stored cell restores to a report whose canonical serialisation is
  byte-identical to the original's (exact float round-trip);
* any damaged file — truncated at *any* byte, or with *any* byte
  changed — is detected and treated as a miss, never trusted and never
  an exception;
* the key is a pure content hash of the cell's behavioural inputs:
  changing any simulation input changes it, toggling observational
  flags does not.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, strategies as st

from repro.core.config import SimulationConfig
from repro.errors import ResilienceError
from repro.experiments.sweep import SweepPoint, simulate_cell
from repro.failures.synthetic import BurstFailureModel
from repro.metrics.serialize import report_to_dict
from repro.resilience import CellStore, cell_key
from repro.resilience.store import TMP_PREFIX

POINT = SweepPoint("nasa", 12, 1.0, 2, "balancing", 0.3)
MODEL = BurstFailureModel()


@pytest.fixture(scope="module")
def report():
    """One real simulated report (module-scoped: cells are not free)."""
    return simulate_cell(POINT, 0, MODEL)


class TestRoundTrip:
    def test_put_get_exact(self, tmp_path, report):
        store = CellStore(tmp_path)
        key = cell_key(POINT, 0, MODEL)
        store.put(key, report, point_index=0, seed=0)
        restored = store.get(key)
        assert restored is not None
        # Canonical-dict equality is exact float equality: JSON float
        # round-trip via repr is lossless.
        assert report_to_dict(restored) == report_to_dict(report)
        assert store.hits == 1 and store.corrupt == 0

    def test_missing_key_is_miss(self, tmp_path):
        store = CellStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.misses == 1 and store.corrupt == 0

    def test_put_leaves_no_temp_files(self, tmp_path, report):
        store = CellStore(tmp_path)
        store.put(cell_key(POINT, 0, MODEL), report)
        leftovers = [
            p for p in store.cells_dir.iterdir()
            if p.name.startswith(TMP_PREFIX)
        ]
        assert leftovers == []
        assert store.validate() == []

    def test_len_and_keys(self, tmp_path, report):
        store = CellStore(tmp_path)
        keys = {cell_key(POINT, seed, MODEL) for seed in (0, 1, 2)}
        for key in keys:
            store.put(key, report)
        assert len(store) == 3
        assert set(store.keys()) == keys


class TestCorruptionDetection:
    """Damaged checkpoints are misses, never exceptions, never trusted."""

    @given(data=st.data())
    def test_truncation_detected(self, tmp_path_factory, report, data):
        tmp_path = tmp_path_factory.mktemp("trunc")
        store = CellStore(tmp_path)
        key = cell_key(POINT, 0, MODEL)
        path = store.put(key, report)
        raw = path.read_bytes()
        cut = data.draw(st.integers(0, len(raw) - 1), label="cut")
        path.write_bytes(raw[:cut])
        restored = store.get(key)
        # A truncation can never restore (the trailing checksum field is
        # gone), so the only acceptable outcome is a detected miss.
        assert restored is None
        assert store.corrupt >= 1

    @given(data=st.data())
    def test_byte_flip_never_trusted_wrongly(
        self, tmp_path_factory, report, data
    ):
        tmp_path = tmp_path_factory.mktemp("flip")
        store = CellStore(tmp_path)
        key = cell_key(POINT, 0, MODEL)
        path = store.put(key, report)
        raw = bytearray(path.read_bytes())
        i = data.draw(st.integers(0, len(raw) - 1), label="index")
        flip = data.draw(st.integers(1, 255), label="xor")
        raw[i] ^= flip
        path.write_bytes(bytes(raw))
        restored = store.get(key)
        # Either the damage is detected (miss) or it only touched
        # non-semantic bytes (whitespace-free JSON has none, but the
        # un-checksummed annotations exist) and the restored payload is
        # still byte-identical to the original.
        if restored is not None:
            assert report_to_dict(restored) == report_to_dict(report)

    def test_wrong_key_rename_rejected(self, tmp_path, report):
        store = CellStore(tmp_path)
        key = cell_key(POINT, 0, MODEL)
        other = cell_key(POINT, 1, MODEL)
        path = store.put(key, report)
        path.rename(store.path_for(other))
        assert store.get(other) is None
        assert store.corrupt == 1

    def test_unknown_schema_rejected(self, tmp_path, report):
        store = CellStore(tmp_path)
        key = cell_key(POINT, 0, MODEL)
        path = store.put(key, report)
        envelope = json.loads(path.read_text())
        envelope["schema"] = 999
        path.write_text(json.dumps(envelope))
        assert store.get(key) is None
        assert store.corrupt == 1

    def test_tampered_payload_fails_checksum(self, tmp_path, report):
        store = CellStore(tmp_path)
        key = cell_key(POINT, 0, MODEL)
        path = store.put(key, report)
        envelope = json.loads(path.read_text())
        envelope["payload"]["timing"]["avg_wait"] = 0.0
        path.write_text(json.dumps(envelope))
        assert store.get(key) is None
        assert store.corrupt == 1

    def test_validate_reports_problems_without_skewing_counters(
        self, tmp_path, report
    ):
        store = CellStore(tmp_path)
        good = cell_key(POINT, 0, MODEL)
        bad = cell_key(POINT, 1, MODEL)
        store.put(good, report)
        store.put(bad, report)
        store.path_for(bad).write_text("{ truncated")
        (store.cells_dir / f"{TMP_PREFIX}stray.json").write_text("x")
        problems = store.validate()
        assert len(problems) == 2
        assert any("temp file" in p for p in problems)
        assert any(f"{bad}.json" in p for p in problems)
        assert (store.hits, store.misses, store.corrupt) == (0, 0, 0)

    def test_unwritable_root_raises_resilience_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(ResilienceError):
            CellStore(blocker / "store")


class TestCellKey:
    def test_stable_and_hex(self):
        a = cell_key(POINT, 0, MODEL)
        assert a == cell_key(POINT, 0, MODEL)
        assert len(a) == 64 and int(a, 16) >= 0

    @pytest.mark.parametrize(
        "variant",
        [
            dataclasses.replace(POINT, n_jobs=13),
            dataclasses.replace(POINT, parameter=0.31),
            dataclasses.replace(POINT, policy="krevat"),
            dataclasses.replace(
                POINT, config=SimulationConfig(migration=False)
            ),
        ],
    )
    def test_behavioural_inputs_change_key(self, variant):
        assert cell_key(variant, 0, MODEL) != cell_key(POINT, 0, MODEL)

    def test_seed_and_model_change_key(self):
        assert cell_key(POINT, 1, MODEL) != cell_key(POINT, 0, MODEL)
        bursty = BurstFailureModel(burst_size_p=0.9)
        assert cell_key(POINT, 0, bursty) != cell_key(POINT, 0, MODEL)

    def test_observational_flags_do_not_change_key(self):
        base = cell_key(POINT, 0, MODEL)
        for flags in (
            dict(trace=True),
            dict(profile=True),
            dict(check_invariants=True),
            dict(trace=True, profile=True, check_invariants=True,
                 strict_invariants=True),
        ):
            toggled = dataclasses.replace(
                POINT, config=SimulationConfig(**flags)
            )
            assert cell_key(toggled, 0, MODEL) == base
