"""Fast-path BrokenProcessPool error must name the failed cells.

Regression: the original error said only that *a* worker died, leaving
the user to rerun the whole sweep blind.  It must now identify which
cells were unfinished, how many attempts they got, and point at the
retrying executor.
"""

from __future__ import annotations

import os

import pytest

import repro.experiments.pool as pool_mod
import repro.experiments.sweep as sweep_mod
from repro.errors import ExperimentError
from repro.experiments.parallel import SweepExecutor
from repro.experiments.sweep import SweepPoint

from tests.resilience.conftest import needs_fork


@pytest.fixture(autouse=True)
def fresh_pool():
    """Fork the warm pool *after* the kill patch lands.

    The pool is a process-wide singleton: workers forked by an earlier
    test predate this module's monkeypatching and would compute cells
    normally instead of dying. Shutting down on both sides forces the
    fork to inherit the patch and keeps the poisoned image out of
    later tests.
    """
    pool_mod.shutdown_warm_pool()
    yield
    pool_mod.shutdown_warm_pool()


@needs_fork
class TestBrokenPoolMessage:
    def test_names_cells_and_attempt_count(self, monkeypatch):
        monkeypatch.setattr(
            sweep_mod, "simulate_cell", lambda *a: os._exit(13)
        )
        points = [
            SweepPoint("sdsc", 10, 1.0, 2, "krevat", 0.0),
            SweepPoint("sdsc", 12, 1.0, 2, "krevat", 0.0),
        ]
        with pytest.raises(ExperimentError) as excinfo:
            SweepExecutor(workers=2, min_cells_per_worker=0).run(points, (0, 1))
        message = str(excinfo.value)
        assert "worker process died" in message
        # Every unfinished cell is named (all four died here).
        for point_index in (0, 1):
            for seed_index in (0, 1):
                assert f"(point {point_index}, seed#{seed_index})" in message
        assert "after 1 attempt" in message
        assert "0/4 cells completed" in message
        # And the message routes the user to the fix.
        assert "retry=RetryPolicy" in message

    def test_long_cell_list_elided(self, monkeypatch):
        monkeypatch.setattr(
            sweep_mod, "simulate_cell", lambda *a: os._exit(13)
        )
        points = [
            SweepPoint("sdsc", 10 + i, 1.0, 2, "krevat", 0.0)
            for i in range(6)
        ]
        with pytest.raises(ExperimentError) as excinfo:
            SweepExecutor(workers=2, min_cells_per_worker=0).run(points, (0, 1))
        message = str(excinfo.value)
        assert "more" in message  # 12 dead cells, 8 shown
