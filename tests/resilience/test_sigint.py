"""SIGINT mid-sweep leaves only complete, verified checkpoint cells.

A real resume begins with a kill, so this test performs one: a child
process runs a checkpointed sweep whose cells are chaos-delayed (making
the interrupt window wide), the parent SIGINTs it partway, and the
checkpoint directory must then contain nothing but complete,
checksum-valid cell files — no temp files, no partial JSON.  A resumed
run finishes the sweep and matches an uninterrupted serial reference.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

import repro.experiments.sweep as sweep_mod
from repro.experiments.sweep import run_sweep, run_sweep_outcome
from repro.resilience import CellStore, RetryPolicy
from repro.resilience.store import TMP_PREFIX

_CHILD = textwrap.dedent(
    """
    import sys

    import repro.experiments.sweep as sweep_mod
    sweep_mod.MASTER_FAILURE_COUNT = 64
    from repro.experiments.sweep import SweepPoint, run_sweep_outcome
    from repro.resilience import ChaosConfig, RetryPolicy

    checkpoint_dir = sys.argv[1]
    points = [
        SweepPoint("nasa", 15, 1.0, 2, "krevat", 0.0),
        SweepPoint("nasa", 18, 1.0, 3, "balancing", 0.5),
    ]
    seeds = (0, 1)
    cells = tuple((i, si) for i in range(2) for si in range(2))
    run_sweep_outcome(
        points,
        seeds,
        checkpoint_dir=checkpoint_dir,
        retry=RetryPolicy(base_delay_s=0.0, jitter_fraction=0.0),
        chaos=ChaosConfig(delay_cells=cells, delay_s=0.35),
    )
    print("COMPLETED-UNINTERRUPTED")
    """
)


@pytest.mark.skipif(
    not hasattr(signal, "SIGINT") or os.name == "nt",
    reason="POSIX signal semantics required",
)
class TestSigintMidSweep:
    def test_interrupt_leaves_only_valid_cells_then_resumes(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD, str(checkpoint_dir)],
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            # Wait until at least two cells are durably checkpointed,
            # then interrupt while later cells are still in flight.
            cells_dir = checkpoint_dir / "cells"
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                done = (
                    [
                        p
                        for p in cells_dir.iterdir()
                        if p.suffix == ".json"
                        and not p.name.startswith(TMP_PREFIX)
                    ]
                    if cells_dir.is_dir()
                    else []
                )
                if len(done) >= 2:
                    break
                if child.poll() is not None:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("child never checkpointed two cells")
            child.send_signal(signal.SIGINT)
            stdout, stderr = child.communicate(timeout=60)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup path
                child.kill()
                child.communicate()

        if b"COMPLETED-UNINTERRUPTED" in stdout:
            pytest.skip("sweep finished before the interrupt landed")
        assert child.returncode != 0, stderr.decode()

        # The durability contract: every file present is a complete,
        # checksum-valid cell; interrupts never leave temp files behind.
        store = CellStore(checkpoint_dir)
        assert store.validate() == [], stderr.decode()
        n_checkpointed = len(store)
        assert 2 <= n_checkpointed < 4
        leftovers = [
            p.name
            for p in store.cells_dir.iterdir()
            if p.name.startswith(TMP_PREFIX)
        ]
        assert leftovers == []

        # And the point of it all: resuming completes the sweep with
        # results bitwise identical to an uninterrupted serial run.
        from repro.experiments.sweep import SweepPoint

        points = [
            SweepPoint("nasa", 15, 1.0, 2, "krevat", 0.0),
            SweepPoint("nasa", 18, 1.0, 3, "balancing", 0.5),
        ]
        seeds = (0, 1)
        ref = run_sweep(points, seeds, workers=1)
        sweep_mod._result_cache.clear()
        resumed = run_sweep_outcome(
            points,
            seeds,
            checkpoint_dir=checkpoint_dir,
            retry=RetryPolicy(base_delay_s=0.0, jitter_fraction=0.0),
        )
        assert resumed.complete
        assert resumed.results == ref
        assert resumed.stats.checkpoint_hits == n_checkpointed
