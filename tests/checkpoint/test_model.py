"""Tests for the analytic checkpoint model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint.model import CheckpointConfig, CheckpointMode, CheckpointModel
from repro.errors import SimulationError


def model(mode=CheckpointMode.PERIODIC, interval=100.0, overhead=10.0, hit=0.0):
    return CheckpointModel(
        CheckpointConfig(mode=mode, interval_s=interval, overhead_s=overhead, hit_probability=hit)
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            CheckpointConfig(interval_s=0.0)
        with pytest.raises(SimulationError):
            CheckpointConfig(overhead_s=-1.0)
        with pytest.raises(SimulationError):
            CheckpointConfig(hit_probability=1.5)

    def test_mode_flags(self):
        assert CheckpointConfig(mode=CheckpointMode.BOTH).periodic
        assert CheckpointConfig(mode=CheckpointMode.BOTH).predictive
        assert not CheckpointConfig(mode=CheckpointMode.NONE).periodic
        assert not CheckpointConfig(mode=CheckpointMode.PREDICTIVE).periodic


class TestWallDuration:
    def test_none_mode_is_identity(self):
        m = model(mode=CheckpointMode.NONE)
        assert m.wall_duration(500.0) == 500.0

    def test_periodic_inserts_overheads(self):
        m = model(interval=100.0, overhead=10.0)
        # 250 s of work: checkpoints after 100 and 200 -> 2 overheads.
        assert m.wall_duration(250.0) == 270.0

    def test_no_checkpoint_at_exact_completion(self):
        m = model(interval=100.0, overhead=10.0)
        # 200 s of work: checkpoint after 100 only (one at 200 is useless).
        assert m.wall_duration(200.0) == 210.0

    def test_short_job_no_overhead(self):
        m = model(interval=100.0, overhead=10.0)
        assert m.wall_duration(50.0) == 50.0

    def test_zero_work(self):
        assert model().wall_duration(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            model().wall_duration(-1.0)


class TestProgress:
    def test_periodic_progress_steps(self):
        m = model(interval=100.0, overhead=10.0)
        assert m.periodic_progress(50.0) == 0.0
        assert m.periodic_progress(109.9) == 0.0    # mid-checkpoint write
        assert m.periodic_progress(110.0) == 100.0
        assert m.periodic_progress(330.0) == 300.0

    def test_none_mode_progress_zero(self):
        m = model(mode=CheckpointMode.NONE)
        assert m.periodic_progress(1e6) == 0.0

    def test_work_done_accounts_for_overhead(self):
        m = model(interval=100.0, overhead=10.0)
        assert m.work_done(50.0) == 50.0
        assert m.work_done(105.0) == 100.0  # writing the checkpoint
        assert m.work_done(110.0) == 100.0
        assert m.work_done(160.0) == 150.0

    @given(st.floats(0, 1e6))
    @settings(max_examples=60)
    def test_progress_never_exceeds_work_done(self, wall):
        m = model(interval=100.0, overhead=10.0)
        assert m.periodic_progress(wall) <= m.work_done(wall) + 1e-9

    @given(st.floats(1, 1e5))
    @settings(max_examples=60)
    def test_wall_round_trip(self, work):
        """Running a job to its wall duration banks all completed
        intervals and executes exactly `work` seconds of work."""
        m = model(interval=100.0, overhead=10.0)
        wall = m.wall_duration(work)
        assert m.work_done(wall) == pytest.approx(work, rel=1e-9)


class TestProgressAtKill:
    def test_no_checkpointing_never_saves(self):
        m = model(mode=CheckpointMode.NONE)
        rng = np.random.default_rng(0)
        assert m.progress_at_kill(0.0, 500.0, 1000.0, rng) == 0.0

    def test_periodic_banking(self):
        m = model(interval=100.0, overhead=10.0)
        rng = np.random.default_rng(0)
        assert m.progress_at_kill(0.0, 250.0, 1000.0, rng) == 200.0

    def test_base_progress_preserved(self):
        m = model(interval=100.0, overhead=10.0)
        rng = np.random.default_rng(0)
        # Resumed from 300 banked; killed 50 s in: nothing new banked.
        assert m.progress_at_kill(300.0, 50.0, 1000.0, rng) == 300.0

    def test_capped_at_total_work(self):
        m = model(interval=100.0, overhead=10.0)
        rng = np.random.default_rng(0)
        assert m.progress_at_kill(0.0, 1e6, 450.0, rng) == 450.0

    def test_predictive_hit_saves_everything_minus_overhead(self):
        m = model(mode=CheckpointMode.PREDICTIVE, interval=100.0, overhead=10.0, hit=1.0)
        rng = np.random.default_rng(0)
        assert m.progress_at_kill(0.0, 500.0, 1000.0, rng) == pytest.approx(490.0)

    def test_predictive_miss_saves_nothing(self):
        m = model(mode=CheckpointMode.PREDICTIVE, interval=100.0, overhead=10.0, hit=0.0)
        rng = np.random.default_rng(0)
        assert m.progress_at_kill(0.0, 500.0, 1000.0, rng) == 0.0

    def test_predictive_hit_rate(self):
        m = model(mode=CheckpointMode.PREDICTIVE, overhead=0.0, hit=0.3)
        rng = np.random.default_rng(42)
        hits = sum(
            1 for _ in range(1000) if m.progress_at_kill(0.0, 100.0, 1000.0, rng) > 0
        )
        assert hits / 1000 == pytest.approx(0.3, abs=0.05)

    def test_both_mode_takes_best(self):
        m = model(mode=CheckpointMode.BOTH, interval=100.0, overhead=10.0, hit=1.0)
        rng = np.random.default_rng(0)
        # Periodic banks 200; predictive banks work_done(250)-10.
        saved = m.progress_at_kill(0.0, 250.0, 1000.0, rng)
        assert saved == pytest.approx(m.work_done(250.0) - 10.0)
