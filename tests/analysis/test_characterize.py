"""Tests for workload/failure characterisation profiles."""

from __future__ import annotations

import pytest

from repro.analysis.characterize import characterize_failures, characterize_workload
from repro.failures.events import FailureEvent, FailureLog
from repro.failures.synthetic import BurstFailureModel, generate_failures
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.workloads.job import Job, Workload
from repro.workloads.models import NASA_IPSC, SDSC_SP
from repro.workloads.synthetic import generate_workload

D = BGL_SUPERNODE_DIMS


class TestWorkloadProfile:
    def test_empty(self):
        profile = characterize_workload(Workload("e", 128))
        assert profile.n_jobs == 0 and profile.offered_load == 0.0

    def test_simple_trace(self):
        jobs = (
            Job(0, 0.0, 4, 100.0, 150.0),
            Job(1, 100.0, 3, 100.0, 100.0),
        )
        profile = characterize_workload(Workload("t", 128, jobs))
        assert profile.n_jobs == 2
        assert profile.mean_size == 3.5
        assert profile.power_of_two_share == 0.5  # size 4 yes, size 3 no
        assert profile.mean_overestimate == pytest.approx((1.5 + 1.0) / 2)

    def test_nasa_model_properties_visible(self):
        w = generate_workload(NASA_IPSC, 1500, seed=0)
        profile = characterize_workload(w)
        assert profile.unit_job_share > 0.4        # NASA's interactive mass
        assert profile.power_of_two_share > 0.9
        assert profile.daytime_arrival_share > 0.5  # diurnal cycle

    def test_target_load_reflected(self):
        w = generate_workload(SDSC_SP, 1000, seed=1)
        profile = characterize_workload(w)
        assert profile.offered_load == pytest.approx(
            SDSC_SP.target_offered_load, rel=0.05
        )


class TestFailureProfile:
    def test_empty(self):
        profile = characterize_failures(FailureLog(128))
        assert profile.n_events == 0 and profile.n_bursts == 0

    def test_burst_detection(self):
        # Two bursts of 3 and 2 events separated by a long gap.
        events = [FailureEvent(t, n) for t, n in
                  [(0.0, 1), (10.0, 2), (20.0, 3), (10_000.0, 4), (10_005.0, 5)]]
        profile = characterize_failures(FailureLog(128, events), burst_gap_s=600.0)
        assert profile.n_bursts == 2
        assert profile.max_burst_size == 3
        assert profile.mean_burst_size == pytest.approx(2.5)
        assert profile.distinct_nodes == 5

    def test_generator_is_bursty(self):
        log = generate_failures(
            D, 400, 30 * 86_400.0,
            model=BurstFailureModel(burst_size_p=0.3), seed=0,
        )
        profile = characterize_failures(log)
        assert profile.n_bursts < profile.n_events  # real clustering
        assert profile.mean_burst_size > 1.5

    def test_flaky_node_share(self):
        events = [FailureEvent(float(i * 1000), 7) for i in range(9)]
        events.append(FailureEvent(99_999.0, 3))
        profile = characterize_failures(FailureLog(128, events))
        assert profile.top_node_share == pytest.approx(0.9)
