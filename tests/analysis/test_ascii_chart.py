"""Tests for the ASCII chart renderers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.ascii_chart import render_histogram, render_series
from repro.errors import ExperimentError


class TestRenderSeries:
    def test_basic_render(self):
        chart = render_series(
            {"a": [(0, 0), (1, 1), (2, 4)], "b": [(0, 4), (2, 0)]},
            width=32, height=8, title="test chart",
        )
        assert "test chart" in chart
        assert "o=a" in chart and "x=b" in chart
        assert "o" in chart and "x" in chart

    def test_flat_series(self):
        chart = render_series({"flat": [(0, 5), (10, 5)]}, width=16, height=4)
        assert "o" in chart

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_series({})
        with pytest.raises(ExperimentError):
            render_series({"a": []})

    def test_too_small_rejected(self):
        with pytest.raises(ExperimentError):
            render_series({"a": [(0, 1)]}, width=2, height=2)

    @given(
        st.lists(
            st.tuples(st.floats(-1e4, 1e4), st.floats(-1e4, 1e4)),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_never_crashes_and_fits(self, points):
        chart = render_series({"s": points}, width=40, height=10)
        for line in chart.splitlines():
            assert len(line) <= 40 + 16  # axis labels + grid


class TestRenderHistogram:
    def test_basic(self):
        out = render_histogram([1, 1, 2, 3, 3, 3], bins=3, title="h")
        assert "h" in out
        assert out.count("|") == 3
        assert "3" in out

    def test_log_bins(self):
        out = render_histogram([1, 10, 100, 1000], bins=3, log_bins=True)
        assert out.count("|") == 3

    def test_single_value(self):
        out = render_histogram([5.0], bins=4)
        assert "1" in out

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_histogram([])
        with pytest.raises(ExperimentError):
            render_histogram([1.0], bins=0)

    @given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=100))
    @settings(max_examples=40)
    def test_counts_conserved(self, values):
        out = render_histogram(values, bins=5)
        # Total of per-bin trailing counts equals the sample size.
        counts = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
        assert sum(counts) == len(values)
