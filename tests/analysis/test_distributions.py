"""Tests for distributional analysis of job records."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.distributions import (
    DistributionSummary,
    per_size_class_summary,
    response_distribution,
    slowdown_distribution,
    wait_distribution,
)
from repro.metrics.timing import JobRecord


def record(job_id=0, size=4, arrival=0.0, start=10.0, finish=110.0, runtime=100.0):
    return JobRecord(
        job_id=job_id, size=size, arrival=arrival, start=start, finish=finish,
        runtime=runtime, estimate=runtime, restarts=0, lost_work=0.0,
    )


class TestDistributionSummary:
    def test_empty(self):
        d = DistributionSummary.from_values("x", [])
        assert d.n == 0 and d.mean == 0.0

    def test_single_value(self):
        d = DistributionSummary.from_values("x", [5.0])
        assert d.n == 1
        assert d.mean == d.minimum == d.maximum == 5.0
        assert all(v == 5.0 for v in d.percentiles.values())

    def test_known_percentiles(self):
        d = DistributionSummary.from_values("x", list(range(101)))
        assert d.percentiles[50] == pytest.approx(50.0)
        assert d.percentiles[90] == pytest.approx(90.0)
        assert d.minimum == 0 and d.maximum == 100

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_percentiles_monotone(self, values):
        d = DistributionSummary.from_values("x", values)
        ordered = [d.percentiles[p] for p in sorted(d.percentiles)]
        assert ordered == sorted(ordered)
        assert d.minimum <= d.percentiles[50] <= d.maximum


class TestMetricDistributions:
    def test_wait_and_response(self):
        records = [
            record(0, start=10.0, finish=110.0),
            record(1, start=50.0, finish=150.0),
        ]
        assert wait_distribution(records).mean == pytest.approx(30.0)
        assert response_distribution(records).mean == pytest.approx(130.0)

    def test_slowdown(self):
        records = [record(0, start=0.0, finish=100.0, runtime=100.0)]
        assert slowdown_distribution(records).mean == pytest.approx(1.0)


class TestSizeClasses:
    def test_bucketing(self):
        records = [
            record(0, size=1),
            record(1, size=3),
            record(2, size=16),
            record(3, size=64),
            record(4, size=128),
        ]
        buckets = per_size_class_summary(records)
        assert set(buckets) == {"1", "2-4", "5-16", "17-64", "65-128"}
        assert all(b.n == 1 for b in buckets.values())

    def test_empty_classes_omitted(self):
        buckets = per_size_class_summary([record(0, size=1)])
        assert set(buckets) == {"1"}
