"""Tests for paired policy comparison."""

from __future__ import annotations

import pytest

from repro.analysis.compare import (
    PairedComparison,
    compare_reports,
    mean_paired_comparison,
)
from repro.api import SimulationSetup
from repro.errors import ExperimentError
from repro.metrics.capacity import CapacitySummary, CapacityTracker
from repro.metrics.report import Counters, SimulationReport
from repro.metrics.timing import JobRecord


def record(job_id, start, finish, size=4, runtime=None):
    runtime = runtime if runtime is not None else finish - start
    return JobRecord(
        job_id=job_id, size=size, arrival=0.0, start=start, finish=finish,
        runtime=runtime, estimate=runtime, restarts=0, lost_work=0.0,
    )


def report(policy, records, kills=0):
    tracker = CapacityTracker(128)
    tracker.record(0.0, 128, 0)
    tracker.close(1000.0)
    return SimulationReport.build(
        policy=policy, workload="w", n_failures=0, records=records,
        capacity=CapacitySummary.from_tracker(tracker, 0.0, 0.0, 1000.0),
        counters=Counters(job_kills=kills),
    )


class TestCompareReports:
    def test_deltas_and_win_counts(self):
        base = report("krevat", [record(0, 0, 200), record(1, 0, 300)], kills=4)
        cand = report("balancing", [record(0, 0, 100), record(1, 0, 350)], kills=2)
        cmp = compare_reports(base, cand)
        assert cmp.n_jobs == 2
        assert cmp.mean_response_delta == pytest.approx((-100 + 50) / 2)
        assert cmp.jobs_improved == 1
        assert cmp.jobs_regressed == 1
        assert cmp.jobs_unchanged == 0
        assert cmp.kills_delta == -2

    def test_tolerance_ignores_tiny_deltas(self):
        base = report("a", [record(0, 0.0, 100.0)])
        cand = report("b", [record(0, 0.0, 100.5)])
        cmp = compare_reports(base, cand)
        assert cmp.jobs_improved == 0 and cmp.jobs_regressed == 0
        assert cmp.jobs_unchanged == 1

    def test_mismatched_jobs_rejected(self):
        base = report("a", [record(0, 0, 100)])
        cand = report("b", [record(1, 0, 100)])
        with pytest.raises(ExperimentError, match="identical job sets"):
            compare_reports(base, cand)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            compare_reports(report("a", []), report("b", []))

    def test_summary_mentions_policies(self):
        base = report("krevat", [record(0, 0, 200)])
        cand = report("balancing", [record(0, 0, 100)])
        text = compare_reports(base, cand).summary()
        assert "balancing vs krevat" in text
        assert "improves" in text

    def test_identical_seed_pipeline_pairing(self):
        """End-to-end: same seed + scenario, two policies, valid pairing."""
        common = dict(site="nasa", n_jobs=40, n_failures=6, seed=2)
        base = SimulationSetup(policy="krevat", parameter=0.0, **common).run()
        cand = SimulationSetup(policy="balancing", parameter=0.9, **common).run()
        cmp = compare_reports(base, cand)
        assert cmp.n_jobs == 40
        assert cmp.kills_delta <= 0  # prediction never adds kills here


class TestMeanPaired:
    def _cmp(self, delta, pair=("a", "b")):
        return PairedComparison(
            baseline_policy=pair[0], candidate_policy=pair[1], n_jobs=10,
            mean_response_delta=delta, mean_slowdown_delta=delta / 10,
            jobs_improved=3, jobs_regressed=2, kills_delta=-1,
            lost_work_delta=-100.0, utilized_delta=0.01,
        )

    def test_averaging(self):
        mean = mean_paired_comparison([self._cmp(-10.0), self._cmp(-30.0)])
        assert mean.mean_response_delta == pytest.approx(-20.0)
        assert mean.kills_delta == -1

    def test_mixed_pairs_rejected(self):
        with pytest.raises(ExperimentError):
            mean_paired_comparison([self._cmp(-10.0), self._cmp(-10.0, pair=("a", "c"))])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            mean_paired_comparison([])
