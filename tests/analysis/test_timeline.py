"""Tests for timeline reconstruction."""

from __future__ import annotations

import pytest

from repro.analysis.timeline import (
    build_timeline,
    busy_nodes_trace,
    mean_busy_nodes,
    peak_queue_length,
    queue_length_trace,
)
from repro.core.policies import KrevatPolicy
from repro.core.simulator import simulate
from repro.core.config import SimulationConfig
from repro.failures.events import FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.metrics.timing import JobRecord
from repro.workloads.job import Job, Workload


def record(job_id, size, arrival, start, finish):
    return JobRecord(
        job_id=job_id, size=size, arrival=arrival, start=start, finish=finish,
        runtime=finish - start, estimate=finish - start, restarts=0, lost_work=0.0,
    )


class TestTraces:
    def test_timeline_ordering(self):
        records = [record(0, 4, 0.0, 5.0, 15.0), record(1, 2, 1.0, 2.0, 8.0)]
        events = build_timeline(records)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert len(events) == 6

    def test_queue_length(self):
        records = [
            record(0, 4, 0.0, 0.0, 100.0),
            record(1, 4, 10.0, 50.0, 120.0),
            record(2, 4, 20.0, 50.0, 130.0),
        ]
        trace = dict(queue_length_trace(records))
        assert trace[10.0] == 1
        assert trace[20.0] == 2
        assert trace[50.0] == 0
        assert peak_queue_length(records) == 2

    def test_busy_nodes(self):
        records = [record(0, 8, 0.0, 0.0, 10.0), record(1, 4, 0.0, 5.0, 20.0)]
        trace = dict(busy_nodes_trace(records))
        assert trace[0.0] == 8
        assert trace[5.0] == 12
        assert trace[10.0] == 4
        assert trace[20.0] == 0

    def test_empty(self):
        assert queue_length_trace([]) == []
        assert peak_queue_length([]) == 0
        assert mean_busy_nodes([]) == 0.0


class TestCrossCheck:
    def test_mean_busy_matches_utilization_without_failures(self):
        jobs = tuple(Job(i, i * 400.0, 8 * (1 + i % 3), 900.0) for i in range(20))
        workload = Workload("t", 128, jobs)
        report = simulate(
            workload, FailureLog(128), KrevatPolicy(), SimulationConfig()
        )
        mean_busy = mean_busy_nodes(report.records)
        assert mean_busy / 128 == pytest.approx(report.capacity.utilized, rel=1e-9)
