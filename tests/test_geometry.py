"""Satellite suite: coordinate arithmetic, divisor enumeration ``f(s)``
and ``Partition.canonical`` edge cases (ISSUE 1).

Complements ``tests/geometry/``: everything here is either a wrap-around
edge case or an algebraic property the finer-grained unit tests don't
pin down.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims
from repro.geometry.partition import Partition
from repro.geometry.shapes import (
    divisors,
    num_divisors,
    shapes_for_size,
)

dims_strategy = st.builds(
    TorusDims, st.integers(1, 6), st.integers(1, 6), st.integers(1, 8)
)
coord_strategy = st.tuples(
    st.integers(-100, 100), st.integers(-100, 100), st.integers(-100, 100)
)


class TestCoordWrapArithmetic:
    @given(dims_strategy, coord_strategy)
    def test_wrap_is_idempotent(self, dims, coord):
        once = dims.wrap(coord)
        assert dims.wrap(once) == once
        assert dims.contains(once)

    @given(dims_strategy, coord_strategy)
    def test_wrap_respects_periodicity(self, dims, coord):
        shifted = (
            coord[0] + 3 * dims.x,
            coord[1] - 2 * dims.y,
            coord[2] + 7 * dims.z,
        )
        assert dims.wrap(shifted) == dims.wrap(coord)

    @given(dims_strategy, coord_strategy)
    def test_index_coord_roundtrip(self, dims, coord):
        idx = dims.index(coord)
        assert 0 <= idx < dims.volume
        assert dims.coord(idx) == dims.wrap(coord)

    @given(dims_strategy)
    def test_index_enumeration_is_bijective(self, dims):
        seen = [dims.index(c) for c in dims.iter_coords()]
        assert seen == list(range(dims.volume))

    @given(dims_strategy, st.integers(-20, 20), st.integers(-20, 20),
           st.integers(0, 2))
    def test_axis_distance_symmetric_and_bounded(self, dims, a, b, axis):
        a %= dims[axis]
        b %= dims[axis]
        d = dims.axis_distance(a, b, axis)
        assert d == dims.axis_distance(b, a, axis)
        assert 0 <= d <= dims[axis] // 2
        assert dims.axis_distance(a, a, axis) == 0

    def test_wrap_on_bgl_known_values(self):
        d = BGL_SUPERNODE_DIMS
        assert d.wrap((4, 4, 8)) == (0, 0, 0)
        assert d.wrap((-1, -1, -1)) == (3, 3, 7)
        assert d.index((3, 3, 7)) == d.volume - 1


class TestDivisorEnumeration:
    @given(st.integers(1, 5000))
    def test_divisors_complete_and_sorted(self, n):
        ds = divisors(n)
        assert list(ds) == sorted(set(ds))
        assert all(n % d == 0 for d in ds)
        assert ds[0] == 1 and ds[-1] == n
        brute = [d for d in range(1, n + 1) if n % d == 0]
        assert list(ds) == brute

    @pytest.mark.parametrize(
        "n,f", [(1, 1), (2, 2), (12, 6), (36, 9), (97, 2), (128, 8)]
    )
    def test_f_known_values(self, n, f):
        assert num_divisors(n) == f

    @given(dims_strategy, st.integers(1, 64))
    def test_shape_count_bounded_by_f_squared(self, dims, size):
        """|SHAPES(s)| ≤ f(s)² — the Appendix-9 cost-bound ingredient:
        choosing the first two extents fixes the third."""
        assert len(shapes_for_size(size, dims)) <= num_divisors(size) ** 2

    @given(dims_strategy, st.integers(1, 64))
    def test_every_shape_factors_size(self, dims, size):
        for a, b, c in shapes_for_size(size, dims):
            assert a * b * c == size
            assert a <= dims.x and b <= dims.y and c <= dims.z
            assert size % a == 0 and (size // a) % b == 0

    def test_unconstrained_dims_reach_f_bound(self):
        """On a machine larger than s on every axis, the count is exactly
        Σ_{a|s} f(s/a)."""
        dims = TorusDims(6, 6, 8)
        size = 6
        expected = sum(num_divisors(size // a) for a in divisors(size) if a <= 6)
        assert len(shapes_for_size(size, dims)) == expected


class TestCanonicalEdgeCases:
    def test_identity_for_interior_partition(self):
        dims = TorusDims(4, 4, 8)
        p = Partition((1, 2, 3), (2, 1, 4))
        assert p.canonical(dims) == p

    def test_full_axis_span_pins_base_to_zero(self):
        dims = TorusDims(4, 4, 8)
        for bx in range(4):
            p = Partition((bx, 1, 2), (4, 2, 2))
            assert p.canonical(dims).base == (0, 1, 2)

    def test_full_machine_all_bases_equal(self):
        dims = TorusDims(4, 4, 8)
        canons = {
            Partition((x, y, z), (4, 4, 8)).canonical(dims)
            for x in range(4) for y in range(4) for z in range(8)
        }
        assert canons == {Partition((0, 0, 0), (4, 4, 8))}

    def test_canonical_wraps_out_of_range_base(self):
        dims = TorusDims(4, 4, 8)
        p = Partition((5, 0, 9), (1, 1, 1))
        assert p.canonical(dims).base == (1, 0, 1)

    @given(dims_strategy, st.data())
    def test_canonical_preserves_node_set(self, dims, data):
        base = (
            data.draw(st.integers(0, dims.x - 1)),
            data.draw(st.integers(0, dims.y - 1)),
            data.draw(st.integers(0, dims.z - 1)),
        )
        shape = (
            data.draw(st.integers(1, dims.x)),
            data.draw(st.integers(1, dims.y)),
            data.draw(st.integers(1, dims.z)),
        )
        p = Partition(base, shape)
        canon = p.canonical(dims)
        assert canon.node_set(dims) == p.node_set(dims)
        assert canon.canonical(dims) == canon  # idempotent

    @given(dims_strategy, st.data())
    def test_equal_node_sets_iff_equal_canonicals(self, dims, data):
        def draw_partition():
            return Partition(
                (
                    data.draw(st.integers(0, dims.x - 1)),
                    data.draw(st.integers(0, dims.y - 1)),
                    data.draw(st.integers(0, dims.z - 1)),
                ),
                (
                    data.draw(st.integers(1, dims.x)),
                    data.draw(st.integers(1, dims.y)),
                    data.draw(st.integers(1, dims.z)),
                ),
            )

        p, q = draw_partition(), draw_partition()
        same_nodes = p.node_set(dims) == q.node_set(dims)
        same_canon = p.canonical(dims) == q.canonical(dims)
        assert same_nodes == same_canon
