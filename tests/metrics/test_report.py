"""Tests for report assembly and counters."""

from __future__ import annotations

import pytest

from repro.metrics.capacity import CapacitySummary, CapacityTracker
from repro.metrics.report import Counters, SimulationReport
from repro.metrics.timing import JobRecord


def record(job_id=0):
    return JobRecord(
        job_id=job_id, size=4, arrival=0.0, start=10.0, finish=110.0,
        runtime=100.0, estimate=100.0, restarts=1, lost_work=40.0,
    )


def capacity():
    t = CapacityTracker(128)
    t.record(0.0, 128, 0)
    t.close(110.0)
    return CapacitySummary.from_tracker(t, 400.0, 0.0, 110.0)


class TestBuild:
    def test_aggregates_timing(self):
        report = SimulationReport.build(
            policy="krevat", workload="w", n_failures=3,
            records=[record(0), record(1)], capacity=capacity(),
            counters=Counters(failures_total=3),
        )
        assert report.timing.n_jobs == 2
        assert report.timing.total_restarts == 2
        assert report.timing.total_lost_work == 80.0
        assert report.counters.failures_total == 3
        assert report.n_failures == 3

    def test_parameters_dict_copied(self):
        params = {"a": 1}
        report = SimulationReport.build(
            policy="p", workload="w", n_failures=0, records=[],
            capacity=capacity(), counters=Counters(), parameters=params,
        )
        params["a"] = 2
        assert report.parameters["a"] == 1

    def test_summary_line_contains_key_fields(self):
        report = SimulationReport.build(
            policy="balancing", workload="sdsc", n_failures=7,
            records=[record()], capacity=capacity(), counters=Counters(),
        )
        line = report.summary_line()
        assert "balancing" in line and "sdsc" in line and "fail=7" in line
        assert "slowdown=" in line and "util=" in line


class TestCounters:
    def test_defaults_zero(self):
        c = Counters()
        assert c.failures_total == 0
        assert c.migrations == 0
        assert c.backfills == 0
        assert c.checkpoint_restores == 0
