"""Tests for JSON report serialisation."""

from __future__ import annotations

import json

import pytest

from repro.api import quick_simulate
from repro.errors import SimulationError
from repro.metrics.serialize import (
    SCHEMA_VERSION,
    report_from_dict,
    report_from_json,
    report_to_dict,
    report_to_json,
)


@pytest.fixture(scope="module")
def sample_report():
    return quick_simulate(
        site="nasa", n_jobs=25, n_failures=4, policy="balancing",
        confidence=0.5, seed=1,
    )


class TestRoundTrip:
    def test_dict_round_trip_lossless(self, sample_report):
        restored = report_from_dict(report_to_dict(sample_report))
        assert restored.policy == sample_report.policy
        assert restored.records == sample_report.records
        assert restored.timing == sample_report.timing
        assert restored.capacity == sample_report.capacity
        assert restored.parameters == sample_report.parameters

    def test_json_round_trip(self, sample_report):
        text = report_to_json(sample_report)
        restored = report_from_json(text)
        assert restored.records == sample_report.records
        assert restored.counters == sample_report.counters

    def test_json_is_valid_and_versioned(self, sample_report):
        data = json.loads(report_to_json(sample_report, indent=2))
        assert data["schema"] == SCHEMA_VERSION
        assert isinstance(data["records"], list)
        assert len(data["records"]) == 25

    def test_wrong_schema_rejected(self, sample_report):
        data = report_to_dict(sample_report)
        data["schema"] = 999
        with pytest.raises(SimulationError, match="schema"):
            report_from_dict(data)

    def test_missing_schema_rejected(self, sample_report):
        data = report_to_dict(sample_report)
        del data["schema"]
        with pytest.raises(SimulationError):
            report_from_dict(data)

    def test_export_does_not_alias_report(self, sample_report):
        data = report_to_dict(sample_report)
        data["parameters"]["site"] = "mutated"
        assert sample_report.parameters["site"] == "nasa"


class TestEmptyReport:
    """A zero-job run serialises and restores like any other."""

    @pytest.fixture(scope="class")
    def empty_report(self):
        return quick_simulate(n_jobs=0, n_failures=0, seed=3)

    def test_round_trip(self, empty_report):
        restored = report_from_json(report_to_json(empty_report))
        assert restored.records == ()
        assert restored.timing == empty_report.timing
        assert restored.capacity == empty_report.capacity
        assert restored.counters == empty_report.counters

    def test_empty_records_and_zero_averages(self, empty_report):
        data = report_to_dict(empty_report)
        assert data["records"] == []
        assert data["timing"]["n_jobs"] == 0
        assert data["timing"]["avg_wait"] == 0.0

    def test_json_stable(self, empty_report):
        # Serialisation is deterministic: same report, same bytes.
        assert report_to_json(empty_report) == report_to_json(empty_report)
