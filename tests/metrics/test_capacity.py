"""Tests for the capacity integrals (ω_util, ω_unused, ω_lost)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.metrics.capacity import CapacitySummary, CapacityTracker


class TestTracker:
    def test_simple_integral(self):
        t = CapacityTracker(128)
        t.record(0.0, 128, 0)      # surplus 128 for 10 s
        t.record(10.0, 64, 0)      # surplus 64 for 10 s
        t.record(20.0, 64, 100)    # surplus 0 for 10 s (queue wants more)
        t.close(30.0)
        assert t.surplus_integral() == pytest.approx(128 * 10 + 64 * 10)

    def test_surplus_clamped_at_zero(self):
        t = CapacityTracker(128)
        t.record(0.0, 10, 50)
        t.close(10.0)
        assert t.surplus_integral() == 0.0

    def test_time_must_not_rewind(self):
        t = CapacityTracker(128)
        t.record(10.0, 128, 0)
        with pytest.raises(SimulationError):
            t.record(5.0, 128, 0)

    def test_range_validation(self):
        t = CapacityTracker(128)
        with pytest.raises(SimulationError):
            t.record(0.0, 129, 0)
        with pytest.raises(SimulationError):
            t.record(0.0, -1, 0)
        with pytest.raises(SimulationError):
            t.record(0.0, 0, -1)

    def test_zero_duration_segments(self):
        t = CapacityTracker(128)
        t.record(5.0, 128, 0)
        t.record(5.0, 0, 0)
        t.close(5.0)
        assert t.surplus_integral() == 0.0

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.integers(0, 128), st.integers(0, 256)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_integral_matches_bruteforce(self, samples):
        samples = sorted(samples, key=lambda s: s[0])
        t = CapacityTracker(128)
        for time, free, queued in samples:
            t.record(time, free, queued)
        t.close(samples[-1][0] + 10.0)
        expected = 0.0
        times = [s[0] for s in samples] + [samples[-1][0] + 10.0]
        for i, (time, free, queued) in enumerate(samples):
            expected += (times[i + 1] - times[i]) * max(0, free - queued)
        assert t.surplus_integral() == pytest.approx(expected)


class TestSummary:
    def test_fractions_sum_to_one(self):
        t = CapacityTracker(128)
        t.record(0.0, 128, 0)
        t.record(50.0, 0, 0)
        t.close(100.0)
        # 50 s fully idle-no-demand + 50 s fully busy; useful work equals
        # the busy node-seconds.
        s = CapacitySummary.from_tracker(t, useful_work=128 * 50.0, start_time=0.0, end_time=100.0)
        assert s.utilized == pytest.approx(0.5)
        assert s.unused == pytest.approx(0.5)
        assert s.lost == pytest.approx(0.0, abs=1e-12)
        assert s.utilized + s.unused + s.lost == pytest.approx(1.0)

    def test_lost_captures_failures_and_fragmentation(self):
        t = CapacityTracker(128)
        t.record(0.0, 64, 100)  # half busy but queue starving: no surplus
        t.close(100.0)
        s = CapacitySummary.from_tracker(t, useful_work=64 * 100.0, start_time=0.0, end_time=100.0)
        assert s.utilized == pytest.approx(0.5)
        assert s.unused == 0.0
        assert s.lost == pytest.approx(0.5)

    def test_degenerate_span(self):
        t = CapacityTracker(128)
        s = CapacitySummary.from_tracker(t, 0.0, 0.0, 0.0)
        assert s.utilized == 0.0 and s.span == 0.0

    def test_str_smoke(self):
        t = CapacityTracker(128)
        t.record(0.0, 128, 0)
        t.close(10.0)
        s = CapacitySummary.from_tracker(t, 0.0, 0.0, 10.0)
        assert "util" in str(s)
