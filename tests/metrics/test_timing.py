"""Tests for wait/response/bounded-slowdown metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.metrics.timing import (
    BoundedSlowdownRule,
    GAMMA_SECONDS,
    JobRecord,
    bounded_slowdown,
    summarize_timing,
)


def record(arrival=0.0, start=10.0, finish=110.0, runtime=100.0, **kw) -> JobRecord:
    defaults = dict(job_id=0, size=4, estimate=runtime, restarts=0, lost_work=0.0)
    defaults.update(kw)
    return JobRecord(arrival=arrival, start=start, finish=finish, runtime=runtime, **defaults)


class TestBoundedSlowdown:
    def test_no_wait_long_job(self):
        # response == runtime == 100 > gamma: slowdown exactly 1.
        assert bounded_slowdown(100.0, 100.0) == 1.0

    def test_short_job_bounded_by_gamma(self):
        # 1-second job answered in 1 second: NOT 1/1 but gamma-bounded.
        assert bounded_slowdown(1.0, 1.0) == 1.0
        # 1-second job answered in 20 seconds: 20/gamma = 2.
        assert bounded_slowdown(20.0, 1.0) == 2.0

    def test_standard_vs_paper_literal(self):
        # 1000 s job, 2000 s response.
        assert bounded_slowdown(2000.0, 1000.0, rule=BoundedSlowdownRule.STANDARD) == 2.0
        # Literal paper formula divides by min(t_e, gamma) = 10.
        assert (
            bounded_slowdown(2000.0, 1000.0, rule=BoundedSlowdownRule.PAPER_LITERAL)
            == 200.0
        )

    @given(st.floats(0.0, 1e6), st.floats(0.001, 1e6))
    def test_literal_rule_dominates_standard(self, response, runtime):
        # min(t_e, gamma) <= max(t_e, gamma), so the literal formula's
        # slowdown is always at least the standard one.
        literal = bounded_slowdown(response, runtime, rule=BoundedSlowdownRule.PAPER_LITERAL)
        standard = bounded_slowdown(response, runtime, rule=BoundedSlowdownRule.STANDARD)
        assert literal >= standard - 1e-12

    def test_validation(self):
        with pytest.raises(SimulationError):
            bounded_slowdown(-1.0, 10.0)
        with pytest.raises(SimulationError):
            bounded_slowdown(10.0, 0.0)

    @given(st.floats(0.0, 1e7), st.floats(0.001, 1e7))
    def test_slowdown_at_least_gamma_ratio(self, response, runtime):
        sd = bounded_slowdown(response, runtime)
        assert sd >= min(1.0, max(response, GAMMA_SECONDS) / max(runtime, GAMMA_SECONDS)) - 1e-12
        assert sd > 0

    @given(st.floats(0.0, 1e7), st.floats(0.001, 1e7))
    def test_monotone_in_response(self, response, runtime):
        assert bounded_slowdown(response + 100.0, runtime) >= bounded_slowdown(
            response, runtime
        )


class TestJobRecord:
    def test_derived_times(self):
        r = record(arrival=5.0, start=25.0, finish=125.0, runtime=100.0)
        assert r.wait == 20.0
        assert r.response == 120.0
        assert r.slowdown() == pytest.approx(120.0 / 100.0)

    def test_restarted_job_has_longer_response(self):
        # Killed once: start of final run is late, response includes it.
        r = record(arrival=0.0, start=500.0, finish=600.0, runtime=100.0, restarts=1)
        assert r.wait == 500.0
        assert r.slowdown() == pytest.approx(6.0)


class TestSummarize:
    def test_empty(self):
        s = summarize_timing([])
        assert s.n_jobs == 0 and s.avg_wait == 0.0

    def test_averages(self):
        records = [
            record(arrival=0.0, start=0.0, finish=100.0, runtime=100.0),
            record(job_id=1, arrival=0.0, start=100.0, finish=200.0, runtime=100.0),
        ]
        s = summarize_timing(records)
        assert s.n_jobs == 2
        assert s.avg_wait == 50.0
        assert s.avg_response == 150.0
        assert s.avg_bounded_slowdown == pytest.approx((1.0 + 2.0) / 2)
        assert s.max_bounded_slowdown == 2.0

    def test_restart_and_loss_totals(self):
        records = [
            record(restarts=2, lost_work=800.0),
            record(job_id=1, restarts=1, lost_work=100.0),
        ]
        s = summarize_timing(records)
        assert s.total_restarts == 3
        assert s.total_lost_work == 900.0


class TestZeroDurationEdges:
    """Degenerate timing: instantaneous responses and Γ boundaries."""

    def test_zero_response_is_gamma_bounded(self):
        # Answered instantly: numerator pinned at Γ, never 0/x.
        assert bounded_slowdown(0.0, 100.0) == pytest.approx(
            GAMMA_SECONDS / 100.0
        )
        assert bounded_slowdown(0.0, 1.0) == 1.0

    def test_runtime_exactly_gamma(self):
        # Both conventions agree at the Γ boundary.
        for rule in BoundedSlowdownRule:
            assert (
                bounded_slowdown(GAMMA_SECONDS, GAMMA_SECONDS, rule=rule)
                == 1.0
            )

    def test_zero_duration_record(self):
        # arrival == start == finish needs runtime > 0 only.
        r = record(arrival=50.0, start=50.0, finish=50.0, runtime=0.001)
        assert r.wait == 0.0
        assert r.response == 0.0
        assert r.slowdown() == 1.0

    def test_summarize_all_instantaneous(self):
        records = [
            record(job_id=i, arrival=10.0, start=10.0, finish=10.0, runtime=0.5)
            for i in range(3)
        ]
        s = summarize_timing(records)
        assert s.n_jobs == 3
        assert s.avg_wait == 0.0
        assert s.avg_response == 0.0
        assert s.avg_bounded_slowdown == 1.0
        assert s.max_bounded_slowdown == 1.0
