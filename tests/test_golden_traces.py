"""Golden-trace regression tests.

Small-scale simulation reports are pinned against text fixtures in
``tests/fixtures/`` (same spirit as the ``benchmarks/results/fig*.txt``
tables, but small enough to run in the tier-1 suite).  Any change to
scheduling behaviour — event ordering, placement scoring, capacity
accounting, RNG consumption — shows up as a readable diff.

Regenerate after an *intentional* behaviour change with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.api import SimulationSetup
from repro.core.config import SimulationConfig
from repro.metrics.report import SimulationReport

FIXTURES = Path(__file__).resolve().parent / "fixtures"

SCENARIOS = {
    "golden_nasa_krevat": SimulationSetup(
        site="nasa", n_jobs=30, n_failures=0, policy="krevat", seed=7,
        config=SimulationConfig(check_invariants=True),
    ),
    "golden_nasa_balancing": SimulationSetup(
        site="nasa", n_jobs=40, n_failures=12, policy="balancing",
        parameter=0.5, seed=7,
        config=SimulationConfig(check_invariants=True),
    ),
    "golden_sdsc_tiebreak": SimulationSetup(
        site="sdsc", n_jobs=40, n_failures=25, policy="tiebreak",
        parameter=0.9, seed=7,
        config=SimulationConfig(check_invariants=True, migration_cost_s=10.0),
    ),
}


def render(report: SimulationReport) -> str:
    """Canonical, diff-friendly text form of a report (floats rounded so
    the fixture is stable across platforms)."""
    t, c, k = report.timing, report.capacity, report.counters
    lines = [
        f"policy={report.policy} workload={report.workload} "
        f"n_failures={report.n_failures}",
        f"jobs={t.n_jobs} slowdown={t.avg_bounded_slowdown:.4f} "
        f"response={t.avg_response:.3f} wait={t.avg_wait:.3f}",
        f"util={c.utilized:.6f} unused={c.unused:.6f} lost={c.lost:.6f} "
        f"span={c.span:.3f}",
        f"kills={k.job_kills} migrations={k.migrations} "
        f"jobs_migrated={k.jobs_migrated} backfills={k.backfills} "
        f"passes={k.scheduler_passes}",
        "job size arrival start finish restarts lost_work",
    ]
    for r in report.records:
        lines.append(
            f"{r.job_id} {r.size} {r.arrival:.3f} {r.start:.3f} "
            f"{r.finish:.3f} {r.restarts} {r.lost_work:.3f}"
        )
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name):
    rendered = render(SCENARIOS[name].run())
    path = FIXTURES / f"{name}.txt"
    if os.environ.get("GOLDEN_REGEN"):
        path.write_text(rendered, encoding="utf-8")
    expected = path.read_text(encoding="utf-8")
    assert rendered == expected, (
        f"golden trace {name} drifted; if the behaviour change is "
        f"intentional, regenerate with GOLDEN_REGEN=1 and review the diff"
    )


def test_render_is_deterministic():
    report = SCENARIOS["golden_nasa_krevat"].run()
    assert render(report) == render(report)
