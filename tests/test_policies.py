"""Satellite suite: placement-policy scoring (ISSUE 2).

Independent re-derivations of the paper's scoring rules:

* ``L_MFP`` — verified against a brute-force allocate-and-rebuild MFP
  recomputation rather than the incremental ``mfp_excluding`` path;
* ``L_PF = P_f · s_j`` — the balancing policy's choice re-derived from
  predictor queries outside the policy;
* tie-break false-negative behaviour at the ``a = 0`` and ``a = 1``
  extremes, including the all-tied-predicted-to-fail fallback.

Complements ``tests/core/test_policies.py`` (engine-level behaviour).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.allocation.mfp import PlacementIndex, mfp_size
from repro.core.jobstate import JobState
from repro.core.policies.balancing import BalancingPolicy
from repro.core.policies.krevat import KrevatPolicy
from repro.core.policies.tiebreak import TieBreakPolicy
from repro.failures.events import FailureEvent, FailureLog
from repro.geometry.coords import TorusDims
from repro.geometry.shapes import schedulable_sizes
from repro.geometry.torus import Torus
from repro.prediction.balancing import BalancingPredictor
from repro.prediction.base import PartitionFailureRule, combine_probabilities
from repro.prediction.tiebreak import TieBreakPredictor
from repro.testing import random_torus

LINE = TorusDims(1, 1, 8)  # a ring of 8 nodes: losses computable by hand

dims_strategy = st.builds(
    TorusDims, st.integers(1, 3), st.integers(1, 3), st.integers(1, 4)
)


def make_state(size: int, runtime: float = 100.0) -> JobState:
    from repro.workloads.job import Job

    return JobState(Job(job_id=0, arrival=0.0, size=size, runtime=runtime))


def line_torus(busy: tuple[int, ...]) -> Torus:
    """Ring of 8 nodes with the given z positions occupied."""
    from repro.geometry.partition import Partition

    torus = Torus(LINE)
    for i, z in enumerate(busy):
        torus.allocate(500 + i, Partition((0, 0, z), (1, 1, 1)))
    return torus


class TestMfpLoss:
    @settings(deadline=None)
    @given(dims_strategy, st.integers(0, 2**32 - 1), st.data())
    def test_loss_matches_brute_force_recomputation(self, dims, seed, data):
        """L_MFP(P) == MFP(before) - MFP(after actually allocating P)."""
        torus = random_torus(dims, np.random.default_rng(seed))
        size = data.draw(st.sampled_from(schedulable_sizes(dims)))
        index = PlacementIndex(torus)
        before = index.mfp_size()
        for partition, loss in index.scored_candidates(size):
            torus.allocate(999_999, partition)
            after = mfp_size(torus)  # fresh index: independent path
            torus.release(999_999)
            assert loss == before - after, (partition, loss, before, after)

    def test_loss_hand_computed_on_ring(self):
        """Occupying z=2 on the 8-ring leaves one free arc of 7; losses
        for size-1 placements are arc-splitting arithmetic."""
        torus = line_torus(busy=(2,))
        index = PlacementIndex(torus)
        assert index.mfp_size() == 7
        expected = {0: 2, 1: 1, 3: 1, 4: 2, 5: 3, 6: 4, 7: 3}
        got = {
            p.base[2]: loss for p, loss in index.scored_candidates(1)
        }
        assert got == expected

    def test_loss_zero_only_when_mfp_survives(self):
        """Placing inside the smaller arc never shrinks the MFP."""
        torus = line_torus(busy=(0, 4))  # arcs 1-3 and 5-7, MFP = 3
        index = PlacementIndex(torus)
        losses = {p.base[2]: loss for p, loss in index.scored_candidates(3)}
        # Allocating one whole arc keeps the other intact: loss 0.
        assert losses[1] == 0 and losses[5] == 0


class TestKrevatSelection:
    def test_picks_first_minimal_loss_in_enumeration_order(self):
        torus = line_torus(busy=(2,))
        index = PlacementIndex(torus)
        choice = KrevatPolicy().choose_partition(index, make_state(1), 0.0)
        # Ties at loss 1: z=1 and z=3; enumeration order says z=1.
        assert choice.base == (0, 0, 1)

    def test_none_when_no_candidate(self):
        torus = line_torus(busy=(0, 2, 4, 6))  # no 2 adjacent free nodes
        index = PlacementIndex(torus)
        assert KrevatPolicy().choose_partition(index, make_state(2), 0.0) is None

    @settings(deadline=None)
    @given(dims_strategy, st.integers(0, 2**32 - 1), st.data())
    def test_choice_is_minimal_loss(self, dims, seed, data):
        torus = random_torus(dims, np.random.default_rng(seed))
        size = data.draw(st.sampled_from(schedulable_sizes(dims)))
        index = PlacementIndex(torus)
        choice = KrevatPolicy().choose_partition(index, make_state(size), 0.0)
        scored = index.scored_candidates(size)
        if not scored:
            assert choice is None
        else:
            min_loss = min(loss for _, loss in scored)
            assert dict(scored)[choice] == min_loss
            # first of the minimal ones, in finder order
            assert choice == next(p for p, l in scored if l == min_loss)


def failure_log(*nodes: int, time: float = 50.0, n_nodes: int = 8) -> FailureLog:
    return FailureLog(n_nodes, [FailureEvent(time, n) for n in nodes])


class TestBalancingScoring:
    def test_a0_degenerates_to_krevat(self):
        torus = line_torus(busy=(2,))
        index = PlacementIndex(torus)
        predictor = BalancingPredictor(failure_log(1), confidence=0.0)
        choice = BalancingPolicy(predictor).choose_partition(
            index, make_state(1), 0.0
        )
        assert choice == KrevatPolicy().choose_partition(index, make_state(1), 0.0)

    @pytest.mark.parametrize("confidence", [0.1, 0.5, 1.0])
    def test_avoids_flagged_minimal_loss_candidate(self, confidence):
        """Krevat's pick (z=1) carries a predicted failure; the clean tied
        candidate z=3 has E_loss = 1 + 0 < 1 + a·1."""
        torus = line_torus(busy=(2,))
        index = PlacementIndex(torus)
        predictor = BalancingPredictor(failure_log(1), confidence=confidence)
        choice = BalancingPolicy(predictor).choose_partition(
            index, make_state(1), 0.0
        )
        assert choice.base == (0, 0, 3)

    def test_trades_space_for_stability_when_worthwhile(self):
        """With every minimal-loss candidate flagged and s_j·a exceeding
        the extra MFP loss, balancing pays the space premium."""
        torus = line_torus(busy=(2,))
        index = PlacementIndex(torus)
        # Flag both loss-1 candidates (z=1, z=3); z=0 has loss 2, clean.
        predictor = BalancingPredictor(failure_log(1, 3), confidence=1.0)
        choice = BalancingPolicy(predictor).choose_partition(
            index, make_state(1), 0.0
        )
        # E(z=1)=E(z=3)=2 with p_f=1; E(z=0)=2 with p_f=0: stability wins.
        assert choice.base == (0, 0, 0)

    def test_failure_outside_window_ignored(self):
        torus = line_torus(busy=(2,))
        index = PlacementIndex(torus)
        predictor = BalancingPredictor(
            failure_log(1, time=5000.0), confidence=1.0
        )  # window is [0, 100): event at t=5000 is invisible
        choice = BalancingPolicy(predictor).choose_partition(
            index, make_state(1, runtime=100.0), 0.0
        )
        assert choice.base == (0, 0, 1)

    @settings(deadline=None, max_examples=60)
    @given(
        dims_strategy,
        st.integers(0, 2**32 - 1),
        st.floats(0.05, 1.0),
        st.data(),
    )
    def test_choice_minimises_rederived_e_loss(self, dims, seed, confidence, data):
        """Re-derive E_loss = L_MFP + P_f·s_j outside the policy and
        check the policy's pick attains the lexicographic minimum of
        (E_loss, P_f)."""
        rng = np.random.default_rng(seed)
        torus = random_torus(dims, rng)
        size = data.draw(st.sampled_from(schedulable_sizes(dims)))
        n_events = data.draw(st.integers(0, 6))
        log = FailureLog.from_arrays(
            dims.volume,
            rng.uniform(0.0, 200.0, n_events),
            rng.integers(0, dims.volume, n_events),
        )
        predictor = BalancingPredictor(log, confidence=confidence)
        state = make_state(size, runtime=100.0)
        index = PlacementIndex(torus)
        choice = BalancingPolicy(predictor).choose_partition(index, state, 0.0)
        scored = index.scored_candidates(size)
        if not scored:
            assert choice is None
            return
        window = (0.0, max(state.remaining_estimate, 1.0))
        def key(item):
            part, mfp_loss = item
            p_f = predictor.partition_failure_probability(
                part, dims, window[0], window[1]
            )
            return (mfp_loss + p_f * size, p_f)

        best = min(key(item) for item in scored)
        chosen_loss = dict(scored)[choice]
        p_f = predictor.partition_failure_probability(
            choice, dims, window[0], window[1]
        )
        assert (chosen_loss + p_f * size, p_f) == best


class TestCombineProbabilities:
    def test_max_rule_is_flat_in_count(self):
        for k in (1, 2, 5):
            assert combine_probabilities(0.7, k, PartitionFailureRule.MAX) == 0.7

    def test_complement_product_known_values(self):
        rule = PartitionFailureRule.COMPLEMENT_PRODUCT
        assert combine_probabilities(0.5, 2, rule) == pytest.approx(0.75)
        assert combine_probabilities(1.0, 3, rule) == 1.0

    @given(st.floats(0.0, 1.0), st.integers(0, 8))
    def test_rules_agree_on_zero_and_one_flagged(self, a, k):
        max_p = combine_probabilities(a, k, PartitionFailureRule.MAX)
        cp = combine_probabilities(a, k, PartitionFailureRule.COMPLEMENT_PRODUCT)
        if k == 0:
            assert max_p == cp == 0.0
        elif k == 1:
            assert max_p == pytest.approx(cp)
        else:
            assert cp >= max_p - 1e-12  # complement-product dominates


class TestTieBreakFalseNegatives:
    def test_a0_is_all_false_negatives(self):
        """Accuracy 0: every genuine upcoming failure is missed, so the
        choice is bit-for-bit Krevat even with the pick's node doomed."""
        torus = line_torus(busy=(2,))
        index = PlacementIndex(torus)
        predictor = TieBreakPredictor(failure_log(1), accuracy=0.0, seed=0)
        choice = TieBreakPolicy(predictor).choose_partition(
            index, make_state(1), 0.0
        )
        assert choice.base == (0, 0, 1)  # Krevat's pick, failure ignored
        assert not predictor.node_predicts_failure(1, 0.0, 100.0)

    def test_a1_has_no_false_negatives(self):
        """Accuracy 1: the doomed tied candidate is always dodged."""
        torus = line_torus(busy=(2,))
        index = PlacementIndex(torus)
        predictor = TieBreakPredictor(failure_log(1), accuracy=1.0, seed=0)
        choice = TieBreakPolicy(predictor).choose_partition(
            index, make_state(1), 0.0
        )
        assert choice.base == (0, 0, 3)

    def test_a1_never_false_positive(self):
        """Clean nodes are never reported, at any accuracy (the paper's
        p_f+ = 0 assumption)."""
        predictor = TieBreakPredictor(failure_log(1), accuracy=1.0, seed=0)
        for node in range(8):
            if node != 1:
                assert not predictor.node_predicts_failure(node, 0.0, 100.0)

    def test_all_tied_doomed_falls_back_to_first(self):
        """When every minimal-loss candidate is predicted to fail the
        policy keeps the first in enumeration order (never escalates to
        a higher-loss partition — unlike balancing)."""
        torus = line_torus(busy=(2,))
        index = PlacementIndex(torus)
        predictor = TieBreakPredictor(failure_log(1, 3), accuracy=1.0, seed=0)
        choice = TieBreakPolicy(predictor).choose_partition(
            index, make_state(1), 0.0
        )
        assert choice.base == (0, 0, 1)

    @settings(deadline=None, max_examples=40)
    @given(dims_strategy, st.integers(0, 2**32 - 1), st.data())
    def test_a0_equals_krevat_everywhere(self, dims, seed, data):
        rng = np.random.default_rng(seed)
        torus = random_torus(dims, rng)
        size = data.draw(st.sampled_from(schedulable_sizes(dims)))
        n_events = data.draw(st.integers(0, 6))
        log = FailureLog.from_arrays(
            dims.volume,
            rng.uniform(0.0, 200.0, n_events),
            rng.integers(0, dims.volume, n_events),
        )
        index = PlacementIndex(torus)
        state = make_state(size)
        tiebreak = TieBreakPolicy(
            TieBreakPredictor(log, accuracy=0.0, seed=seed)
        ).choose_partition(index, state, 0.0)
        krevat = KrevatPolicy().choose_partition(index, state, 0.0)
        assert tiebreak == krevat

    @given(st.floats(0.0, 1.0))
    def test_false_negative_rate_matches_accuracy(self, accuracy):
        """Over many doomed nodes, the per-node miss indicator is the
        cached Bernoulli(a) draw — a=0 misses all, a=1 misses none."""
        log = FailureLog(64, [FailureEvent(10.0, n) for n in range(64)])
        predictor = TieBreakPredictor(log, accuracy=accuracy, seed=123)
        hits = sum(
            predictor.node_predicts_failure(n, 0.0, 100.0) for n in range(64)
        )
        if accuracy == 0.0:
            assert hits == 0
        elif accuracy == 1.0:
            assert hits == 64
        else:
            assert 0 <= hits <= 64
