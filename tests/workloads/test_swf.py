"""Tests for the SWF reader/writer."""

from __future__ import annotations

import io

import pytest

from repro.errors import SWFParseError
from repro.workloads.job import Job, Workload
from repro.workloads.swf import parse_swf, read_swf, write_swf

SAMPLE = """\
; Computer: Test Machine
; MaxProcs: 128
; UnixStartTime: 0
1 0 10 300 16 -1 -1 16 600 -1 1 1 1 1 1 -1 -1 -1
2 120 -1 50 8 -1 -1 -1 -1 -1 1 2 1 1 1 -1 -1 -1
3 150 5 0 4 -1 -1 4 100 -1 0 3 1 1 1 -1 -1 -1
4 180 5 75 -1 -1 -1 32 90 -1 1 4 1 1 1 -1 -1 -1
"""


class TestParse:
    def test_basic_fields(self):
        w = parse_swf(io.StringIO(SAMPLE), name="sample")
        assert w.machine_nodes == 128
        ids = [j.job_id for j in w]
        assert ids == [1, 2, 4]  # job 3 has runtime 0 -> skipped
        j1 = w[0]
        assert j1.arrival == 0.0
        assert j1.size == 16
        assert j1.runtime == 300.0
        assert j1.estimate == 600.0

    def test_allocated_fallback_when_no_request(self):
        w = parse_swf(io.StringIO(SAMPLE))
        j2 = [j for j in w if j.job_id == 2][0]
        assert j2.size == 8          # field 5 fallback
        assert j2.estimate == 50.0   # runtime fallback

    def test_requested_preferred_over_allocated(self):
        w = parse_swf(io.StringIO(SAMPLE))
        j4 = [j for j in w if j.job_id == 4][0]
        assert j4.size == 32

    def test_machine_from_jobs_when_no_header(self):
        text = "1 0 0 100 64 -1 -1 64 -1 -1 1 1 1 1 1 -1 -1 -1\n"
        w = parse_swf(io.StringIO(text))
        assert w.machine_nodes == 64

    def test_short_line_rejected(self):
        with pytest.raises(SWFParseError, match="expected >= 9"):
            parse_swf(io.StringIO("1 2 3\n"))

    def test_non_numeric_rejected(self):
        with pytest.raises(SWFParseError, match="non-numeric"):
            parse_swf(io.StringIO("a b c d e f g h i\n"))

    def test_bad_maxprocs_header(self):
        with pytest.raises(SWFParseError, match="MaxProcs"):
            parse_swf(io.StringIO("; MaxProcs: lots\n"))

    def test_blank_lines_ignored(self):
        w = parse_swf(io.StringIO("\n\n; comment\n\n"))
        assert len(w) == 0


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        original = Workload(
            "rt",
            128,
            (
                Job(1, 0.0, 16, 300.0, 600.0),
                Job(2, 120.0, 8, 50.0, 100.0),
                Job(3, 500.0, 128, 7200.0, 7200.0),
            ),
        )
        path = tmp_path / "trace.swf"
        write_swf(original, path)
        back = read_swf(path)
        assert back.machine_nodes == 128
        assert len(back) == len(original)
        for a, b in zip(original, back):
            assert a.job_id == b.job_id
            assert a.size == b.size
            assert a.arrival == pytest.approx(b.arrival)
            assert a.runtime == pytest.approx(b.runtime)
            assert a.estimate == pytest.approx(b.estimate)

    def test_write_returns_text(self):
        w = Workload("t", 64, (Job(0, 0.0, 4, 10.0),))
        text = write_swf(w)
        assert "MaxProcs: 64" in text
        assert len(text.splitlines()) == 4  # 3 headers + 1 job

    def test_written_lines_have_18_fields(self):
        w = Workload("t", 64, (Job(0, 0.0, 4, 10.0),))
        line = write_swf(w).splitlines()[-1]
        assert len(line.split()) == 18
