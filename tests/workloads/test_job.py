"""Unit tests for Job and Workload records."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import WorkloadError
from repro.workloads.job import Job, Workload


def job(job_id=0, arrival=0.0, size=4, runtime=100.0, estimate=None) -> Job:
    if estimate is None:
        return Job(job_id, arrival, size, runtime)
    return Job(job_id, arrival, size, runtime, estimate)


class TestJob:
    def test_estimate_defaults_to_runtime(self):
        assert job(runtime=123.0).estimate == 123.0

    def test_explicit_estimate_kept(self):
        assert job(runtime=100.0, estimate=250.0).estimate == 250.0

    def test_work(self):
        assert job(size=8, runtime=50.0).work == 400.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(job_id=-1),
            dict(arrival=-1.0),
            dict(size=0),
            dict(runtime=0.0),
            dict(runtime=-5.0),
            dict(estimate=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(WorkloadError):
            job(**kwargs)

    def test_runtime_scaling(self):
        j = job(runtime=100.0, estimate=200.0)
        scaled = j.with_runtime_scaled(1.2)
        assert scaled.runtime == pytest.approx(120.0)
        assert scaled.estimate == pytest.approx(240.0)
        assert scaled.size == j.size and scaled.arrival == j.arrival

    def test_runtime_scaling_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            job().with_runtime_scaled(0.0)

    def test_with_size(self):
        assert job(size=3).with_size(4).size == 4

    @given(st.floats(0.1, 10.0), st.floats(1.0, 1e6))
    def test_scaling_preserves_work_ratio(self, c, runtime):
        j = job(runtime=runtime)
        assert j.with_runtime_scaled(c).work == pytest.approx(j.work * c)


class TestWorkload:
    def test_sorted_by_arrival(self):
        w = Workload("t", 128, (job(1, 50.0), job(0, 10.0), job(2, 30.0)))
        assert [j.job_id for j in w] == [0, 2, 1]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(WorkloadError):
            Workload("t", 128, (job(1), job(1, arrival=5.0)))

    def test_span_and_total_work(self):
        w = Workload("t", 128, (job(0, 0.0, 2, 10.0), job(1, 100.0, 4, 20.0)))
        assert w.span == 100.0
        assert w.total_work == 2 * 10.0 + 4 * 20.0
        assert w.max_size == 4

    def test_empty_workload(self):
        w = Workload("t", 128)
        assert len(w) == 0 and w.span == 0.0 and w.total_work == 0.0
        assert w.max_size == 0

    def test_head(self):
        w = Workload("t", 128, tuple(job(i, float(i)) for i in range(10)))
        assert [j.job_id for j in w.head(3)] == [0, 1, 2]

    def test_machine_nodes_validation(self):
        with pytest.raises(WorkloadError):
            Workload("t", 0)

    def test_indexing(self):
        w = Workload("t", 128, (job(0, 0.0), job(1, 5.0)))
        assert w[0].job_id == 0 and w[1].job_id == 1
