"""Tests for load scaling and machine fitting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.geometry.shapes import schedulable_sizes
from repro.workloads.job import Job, Workload
from repro.workloads.models import SDSC_SP
from repro.workloads.scaling import fit_to_machine, offered_load, scale_load
from repro.workloads.synthetic import generate_workload

D = BGL_SUPERNODE_DIMS


def wl(*jobs: Job) -> Workload:
    return Workload("t", 128, tuple(jobs))


class TestScaleLoad:
    def test_identity(self):
        w = wl(Job(0, 0.0, 4, 100.0))
        assert scale_load(w, 1.0) is w

    def test_scales_runtime_and_estimate(self):
        w = wl(Job(0, 0.0, 4, 100.0, 200.0))
        scaled = scale_load(w, 1.2)
        assert scaled[0].runtime == pytest.approx(120.0)
        assert scaled[0].estimate == pytest.approx(240.0)

    def test_arrivals_untouched(self):
        w = wl(Job(0, 50.0, 4, 100.0), Job(1, 80.0, 2, 10.0))
        scaled = scale_load(w, 0.5)
        assert [j.arrival for j in scaled] == [50.0, 80.0]

    def test_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            scale_load(wl(Job(0, 0.0, 1, 1.0)), 0.0)

    @given(st.floats(0.5, 1.5))
    def test_offered_load_scales_linearly(self, c):
        w = generate_workload(SDSC_SP, 200, seed=0)
        base = offered_load(w)
        assert offered_load(scale_load(w, c)) == pytest.approx(base * c, rel=1e-9)


class TestOfferedLoad:
    def test_simple_case(self):
        # Two jobs, span 100 s, machine 128: work = 4*50 + 2*100 = 400.
        w = wl(Job(0, 0.0, 4, 50.0), Job(1, 100.0, 2, 100.0))
        assert offered_load(w) == pytest.approx(400.0 / (100.0 * 128))

    def test_zero_span(self):
        assert offered_load(wl(Job(0, 0.0, 4, 50.0))) == 0.0

    def test_bad_machine(self):
        with pytest.raises(WorkloadError):
            offered_load(wl(Job(0, 0.0, 1, 1.0)), machine_nodes=0)


class TestFitToMachine:
    def test_rounds_unschedulable_sizes_up(self):
        w = wl(Job(0, 0.0, 11, 100.0))
        fitted = fit_to_machine(w, D)
        assert fitted[0].size == 12
        assert fitted[0].size in schedulable_sizes(D)

    def test_caps_oversize(self):
        w = Workload("t", 256, (Job(0, 0.0, 256, 100.0),))
        fitted = fit_to_machine(w, D)
        assert fitted[0].size == 128

    def test_schedulable_sizes_untouched(self):
        w = wl(Job(0, 0.0, 16, 100.0), Job(1, 5.0, 3, 50.0))
        fitted = fit_to_machine(w, D)
        assert fitted[0].size == 16
        assert fitted[1].size == 3

    def test_machine_nodes_updated(self):
        w = Workload("t", 256, (Job(0, 0.0, 8, 1.0),))
        assert fit_to_machine(w, D).machine_nodes == 128

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_all_fitted_sizes_schedulable(self, seed):
        w = generate_workload(SDSC_SP, 50, seed=seed)
        fitted = fit_to_machine(w, D)
        valid = set(schedulable_sizes(D))
        for original, job in zip(w, fitted):
            assert job.size in valid
            assert job.size >= min(original.size, 128)
