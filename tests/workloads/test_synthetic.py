"""Tests for site models and the synthetic trace generator."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.models import (
    LLNL_T3D,
    NASA_IPSC,
    SDSC_SP,
    SiteModel,
    available_sites,
    site_model,
)
from repro.workloads.synthetic import generate_workload


class TestSiteModels:
    def test_registry(self):
        assert set(available_sites()) == {"nasa", "sdsc", "llnl"}
        assert site_model("SDSC") is SDSC_SP
        assert site_model("nasa") is NASA_IPSC
        assert site_model("llnl") is LLNL_T3D

    def test_unknown_site(self):
        with pytest.raises(WorkloadError, match="unknown site"):
            site_model("earth-simulator")

    def test_llnl_maps_to_128(self):
        assert LLNL_T3D.machine_nodes == 256
        assert LLNL_T3D.size_divisor == 2

    @pytest.mark.parametrize(
        "field,value",
        [
            ("mean_interarrival_s", -1.0),
            ("diurnal_amplitude", 1.5),
            ("p_power_of_two", 2.0),
            ("min_size", 0),
            ("size_divisor", 0),
            ("max_runtime_s", 0.0),
        ],
    )
    def test_validation(self, field, value):
        import dataclasses

        with pytest.raises(WorkloadError):
            dataclasses.replace(SDSC_SP, **{field: value})


class TestGenerator:
    def test_determinism(self):
        a = generate_workload(SDSC_SP, 100, seed=42)
        b = generate_workload(SDSC_SP, 100, seed=42)
        assert a.jobs == b.jobs

    def test_seed_changes_output(self):
        a = generate_workload(SDSC_SP, 100, seed=1)
        b = generate_workload(SDSC_SP, 100, seed=2)
        assert a.jobs != b.jobs

    def test_count_and_bounds(self):
        w = generate_workload(SDSC_SP, 500, seed=0)
        assert len(w) == 500
        assert w.machine_nodes == 128
        for j in w:
            assert 1 <= j.size <= 128
            assert 1.0 <= j.runtime <= SDSC_SP.max_runtime_s
            assert j.estimate >= j.runtime or math.isclose(j.estimate, j.runtime)
            assert j.arrival >= 0

    def test_arrivals_strictly_ordered(self):
        w = generate_workload(NASA_IPSC, 300, seed=3)
        arrivals = [j.arrival for j in w]
        assert arrivals == sorted(arrivals)

    def test_llnl_sizes_halved_and_bounded(self):
        w = generate_workload(LLNL_T3D, 300, seed=0)
        assert w.machine_nodes == 128
        for j in w:
            assert 4 <= j.size <= 128  # min_size 8 halved

    def test_llnl_all_powers_of_two(self):
        w = generate_workload(LLNL_T3D, 200, seed=1)
        for j in w:
            assert j.size & (j.size - 1) == 0, j.size

    def test_nasa_unit_job_share(self):
        w = generate_workload(NASA_IPSC, 2000, seed=0)
        unit = sum(1 for j in w if j.size == 1)
        # p_unit_job = 0.55; allow generous sampling slack.
        assert 0.45 < unit / len(w) < 0.65

    def test_empty_workload(self):
        w = generate_workload(SDSC_SP, 0, seed=0)
        assert len(w) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            generate_workload(SDSC_SP, -1)

    def test_mean_interarrival_close_to_model(self):
        w = generate_workload(SDSC_SP, 3000, seed=0)
        mean_gap = w.span / (len(w) - 1)
        assert mean_gap == pytest.approx(SDSC_SP.mean_interarrival_s, rel=0.25)

    def test_size_runtime_correlation_positive(self):
        w = generate_workload(SDSC_SP, 3000, seed=0)
        sizes = np.array([j.size for j in w], dtype=float)
        runtimes = np.array([j.runtime for j in w])
        rho = np.corrcoef(np.log(sizes + 1), np.log(runtimes))[0, 1]
        assert rho > 0.2

    @given(st.integers(0, 2**31), st.sampled_from([NASA_IPSC, SDSC_SP, LLNL_T3D]))
    @settings(max_examples=10, deadline=None)
    def test_generator_invariants(self, seed, model):
        w = generate_workload(model, 50, seed=seed)
        assert len(w) == 50
        machine = max(1, model.machine_nodes // model.size_divisor)
        for j in w:
            assert 1 <= j.size <= machine
            assert j.runtime > 0 and j.estimate > 0
