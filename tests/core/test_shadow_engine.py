"""Cross-validation of the incremental shadow-time engine.

:class:`~repro.core.backfill.ShadowTimeEngine` (reusable scratch grid,
head-shapes-only window rebuilds, per-``(version, size)`` memoisation)
must agree exactly with :func:`~repro.core.backfill.shadow_time_naive`
(full grid copy + fresh PlacementIndex per hypothetical release) on
every machine state.  The hypothesis sweep below pins its own
``max_examples`` so at least 100 random torus states are exercised
regardless of the active profile.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backfill import ShadowTimeEngine, shadow_time, shadow_time_naive
from repro.core.jobstate import JobState
from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus
from repro.testing.random_state import random_torus
from repro.workloads.job import Job

D = BGL_SUPERNODE_DIMS

#: Head sizes worth probing: schedulable, awkward, and impossible (11 is
#: a prime exceeding every axis of 4x4x8, so no box shape exists).
HEAD_SIZES = (1, 2, 5, 8, 11, 16, 32, 64, 100, 128)


def running_states(
    torus: Torus, est_finishes: list[float]
) -> list[JobState]:
    """One running JobState per allocation, with assigned est finishes."""
    states = []
    for i, (job_id, partition) in enumerate(torus.allocations()):
        js = JobState(Job(job_id, 0.0, partition.size, 100.0, 100.0))
        js.dispatch(0.0, 100.0)
        js.est_finish = est_finishes[i % len(est_finishes)] if est_finishes else 50.0
        states.append(js)
    return states


class TestEngineMatchesNaive:
    @settings(max_examples=120, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        est_finishes=st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=6,
        ),
        head_size=st.sampled_from(HEAD_SIZES),
        now=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    )
    def test_random_states_agree(self, seed, est_finishes, head_size, now):
        torus = random_torus(D, rng=seed)
        running = running_states(torus, est_finishes)
        expected = shadow_time_naive(torus, running, head_size, now)
        engine = ShadowTimeEngine(torus)
        assert engine.shadow_time(running, head_size, now) == expected
        # Cached repeat (same torus version) must return the same value.
        assert engine.shadow_time(running, head_size, now) == expected
        # The one-shot wrapper is the same computation.
        assert shadow_time(torus, running, head_size, now) == expected

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        head_size=st.sampled_from((1, 4, 8, 16, 64)),
    )
    def test_tied_estimates_break_by_job_id(self, seed, head_size):
        """All-equal est finishes force the job-id tiebreak everywhere."""
        torus = random_torus(D, rng=seed)
        running = running_states(torus, [250.0])
        expected = shadow_time_naive(torus, running, head_size, 0.0)
        assert ShadowTimeEngine(torus).shadow_time(running, head_size, 0.0) == expected

    def test_non_running_states_ignored(self):
        torus = Torus(D)
        torus.allocate(1, Partition((0, 0, 0), (4, 4, 8)))
        js = JobState(Job(1, 0.0, 128, 100.0, 100.0))
        js.dispatch(0.0, 100.0)
        js.est_finish = 75.0
        js.complete(75.0)
        torus.release(1)
        # A completed job in the running list must not be replayed.
        assert ShadowTimeEngine(torus).shadow_time([js], 8, 10.0) == 10.0


class TestEngineCache:
    def _machine_with_two_jobs(self):
        torus = Torus(D)
        a = JobState(Job(1, 0.0, 64, 100.0, 100.0))
        a.dispatch(0.0, 100.0)
        a.est_finish = 100.0
        torus.allocate(1, Partition((0, 0, 0), (4, 4, 4)))
        b = JobState(Job(2, 0.0, 64, 200.0, 200.0))
        b.dispatch(0.0, 200.0)
        b.est_finish = 200.0
        torus.allocate(2, Partition((0, 0, 4), (4, 4, 4)))
        return torus, [a, b]

    def test_replay_runs_once_per_version_and_size(self, monkeypatch):
        torus, running = self._machine_with_two_jobs()
        engine = ShadowTimeEngine(torus)
        calls = []
        inner = ShadowTimeEngine._first_fit_time

        def counting(self, run, size):
            calls.append(size)
            return inner(self, run, size)

        monkeypatch.setattr(ShadowTimeEngine, "_first_fit_time", counting)
        assert engine.shadow_time(running, 64, 0.0) == 100.0
        assert engine.shadow_time(running, 64, 10.0) == 100.0
        assert engine.shadow_time(running, 64, 150.0) == 150.0
        assert calls == [64]  # one replay serves all three queries
        assert engine.shadow_time(running, 128, 0.0) == 200.0
        assert calls == [64, 128]

    def test_cache_invalidated_on_torus_mutation(self):
        torus, running = self._machine_with_two_jobs()
        engine = ShadowTimeEngine(torus)
        assert engine.shadow_time(running, 64, 0.0) == 100.0
        # Job 1 finishes early: release frees a 64-box immediately.
        torus.release(1)
        running[0].complete(50.0)
        assert engine.shadow_time(running, 64, 50.0) == 50.0
        assert engine.shadow_time(running, 64, 50.0) == shadow_time_naive(
            torus, running, 64, 50.0
        )

    def test_impossible_size_is_inf(self):
        torus, running = self._machine_with_two_jobs()
        assert math.isinf(ShadowTimeEngine(torus).shadow_time(running, 11, 0.0))

    def test_scratch_never_mutates_the_torus(self):
        torus, running = self._machine_with_two_jobs()
        before = torus.grid.copy()
        version = torus.version
        ShadowTimeEngine(torus).shadow_time(running, 128, 0.0)
        assert np.array_equal(torus.grid, before)
        assert torus.version == version

    def test_small_dims_regression(self):
        """Engine agrees with naive on a non-BGL geometry too."""
        dims = TorusDims(2, 3, 4)
        for seed in range(20):
            torus = random_torus(dims, rng=seed, attempts=6)
            running = running_states(torus, [30.0, 60.0, 90.0])
            for size in (1, 2, 6, 12, 24, 7):
                for now in (0.0, 45.0):
                    assert ShadowTimeEngine(torus).shadow_time(
                        running, size, now
                    ) == shadow_time_naive(torus, running, size, now)
