"""Tests for simulator events and the event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.core.events import Event, EventKind, EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(30.0, EventKind.ARRIVAL, 1)
        q.push(10.0, EventKind.ARRIVAL, 2)
        q.push(20.0, EventKind.ARRIVAL, 3)
        assert [q.pop().payload for _ in range(3)] == [2, 3, 1]

    def test_kind_ordering_at_same_time(self):
        q = EventQueue()
        q.push(10.0, EventKind.ARRIVAL, 1)
        q.push(10.0, EventKind.FINISH, 2)
        q.push(10.0, EventKind.FAILURE, 3)
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [EventKind.FINISH, EventKind.FAILURE, EventKind.ARRIVAL]

    def test_insertion_order_stable_within_kind(self):
        q = EventQueue()
        for payload in (5, 6, 7):
            q.push(1.0, EventKind.ARRIVAL, payload)
        assert [q.pop().payload for _ in range(3)] == [5, 6, 7]

    def test_pop_batch_groups_same_timestamp(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, 1)
        q.push(1.0, EventKind.FINISH, 2)
        q.push(2.0, EventKind.ARRIVAL, 3)
        batch = q.pop_batch()
        assert [e.payload for e in batch] == [2, 1]
        assert len(q) == 1

    def test_empty_queue_errors(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.pop()
        with pytest.raises(SimulationError):
            q.peek()
        with pytest.raises(SimulationError):
            q.pop_batch()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, EventKind.ARRIVAL, 0)

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, EventKind.ARRIVAL, 0)
        assert q and len(q) == 1

    def test_epoch_carried(self):
        q = EventQueue()
        q.push(5.0, EventKind.FINISH, 9, epoch=3)
        assert q.pop().epoch == 3

    def test_next_time_peeks_without_popping(self):
        q = EventQueue()
        assert q.next_time() is None
        q.push(7.0, EventKind.ARRIVAL, 1)
        q.push(3.0, EventKind.FINISH, 2)
        assert q.next_time() == 3.0
        assert len(q) == 2

    def test_pop_batch_keeps_stale_epoch_distinguishable(self):
        """A cancelled-then-resubmitted job id leaves two ARRIVAL events
        for one payload; the consumer tells them apart by epoch, so a
        same-instant batch must surface both."""
        q = EventQueue()
        q.push(10.0, EventKind.ARRIVAL, 7, epoch=0)  # cancelled life
        q.push(10.0, EventKind.ARRIVAL, 7, epoch=1)  # resubmission
        batch = q.pop_batch()
        assert [e.payload for e in batch] == [7, 7]
        assert [e.epoch for e in batch] == [0, 1]  # arrival order preserved

    def test_pop_batch_resubmission_at_later_time(self):
        q = EventQueue()
        q.push(10.0, EventKind.ARRIVAL, 7, epoch=0)
        q.push(20.0, EventKind.ARRIVAL, 7, epoch=1)
        first = q.pop_batch()
        second = q.pop_batch()
        assert [(e.time, e.epoch) for e in first] == [(10.0, 0)]
        assert [(e.time, e.epoch) for e in second] == [(20.0, 1)]

    @given(st.lists(st.tuples(st.floats(0, 100), st.sampled_from(list(EventKind))), max_size=40))
    @settings(max_examples=50)
    def test_global_ordering_property(self, items):
        q = EventQueue()
        for t, k in items:
            q.push(t, k, 0)
        popped = [q.pop() for _ in range(len(items))]
        keys = [(e.time, e.kind, e.seq) for e in popped]
        assert keys == sorted(keys)

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_pop_batch_drains_everything(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, EventKind.ARRIVAL, 0)
        total = 0
        last = -1.0
        while q:
            batch = q.pop_batch()
            assert len({e.time for e in batch}) == 1
            assert batch[0].time > last or total == 0 or batch[0].time == last
            assert batch[0].time >= last
            last = batch[0].time
            total += len(batch)
        assert total == len(times)
