"""Integration tests for the event-driven simulator."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint.model import CheckpointConfig, CheckpointMode
from repro.core.config import BackfillMode, SimulationConfig
from repro.core.policies import BalancingPolicy, KrevatPolicy
from repro.core.simulator import Simulator, simulate
from repro.errors import SimulationError
from repro.failures.events import FailureEvent, FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.prediction import BalancingPredictor
from repro.workloads.job import Job, Workload

D = BGL_SUPERNODE_DIMS
N = D.volume


def wl(*jobs: Job) -> Workload:
    return Workload("test", N, tuple(jobs))


def no_failures() -> FailureLog:
    return FailureLog(N)


def cfg(**kw) -> SimulationConfig:
    return SimulationConfig(**{"strict_invariants": True, **kw})


class TestBasicRuns:
    def test_single_job(self):
        report = simulate(wl(Job(0, 0.0, 8, 100.0)), no_failures(), KrevatPolicy(), cfg())
        assert report.timing.n_jobs == 1
        rec = report.records[0]
        assert rec.wait == 0.0
        assert rec.response == 100.0
        assert rec.restarts == 0
        assert report.capacity.utilized == pytest.approx(8 * 100 / (100 * N))

    def test_empty_workload(self):
        report = simulate(wl(), no_failures(), KrevatPolicy(), cfg())
        assert report.timing.n_jobs == 0

    def test_two_independent_jobs_run_concurrently(self):
        report = simulate(
            wl(Job(0, 0.0, 64, 100.0), Job(1, 0.0, 64, 100.0)),
            no_failures(),
            KrevatPolicy(),
            cfg(),
        )
        for rec in report.records:
            assert rec.wait == 0.0

    def test_machine_sized_jobs_serialize(self):
        report = simulate(
            wl(Job(0, 0.0, 128, 100.0), Job(1, 0.0, 128, 100.0)),
            no_failures(),
            KrevatPolicy(),
            cfg(),
        )
        recs = {r.job_id: r for r in report.records}
        assert recs[0].start == 0.0
        assert recs[1].start == 100.0
        assert recs[1].wait == 100.0

    def test_fcfs_order_respected_without_backfill(self):
        # Head job (big) blocks; later small job must not overtake.
        report = simulate(
            wl(
                Job(0, 0.0, 128, 100.0),
                Job(1, 1.0, 128, 100.0),
                Job(2, 2.0, 1, 10.0),
            ),
            no_failures(),
            KrevatPolicy(),
            cfg(backfill=BackfillMode.NONE),
        )
        recs = {r.job_id: r for r in report.records}
        assert recs[2].start >= recs[1].start

    def test_aggressive_backfill_overtakes(self):
        # Job 0 takes half the machine; job 1 (head) needs all of it and
        # must wait; tiny job 2 can slot into the free half immediately.
        report = simulate(
            wl(
                Job(0, 0.0, 64, 100.0),
                Job(1, 1.0, 128, 100.0),
                Job(2, 2.0, 1, 10.0),
            ),
            no_failures(),
            KrevatPolicy(),
            cfg(backfill=BackfillMode.AGGRESSIVE),
        )
        recs = {r.job_id: r for r in report.records}
        assert recs[2].start < recs[1].start
        assert report.counters.backfills >= 1

    def test_easy_backfill_respects_shadow(self):
        # Head (job 1) reserves t=100 (job 0's estimated finish); job 2
        # estimates 200 s -> would end at 202 > 100: must NOT backfill
        # ahead of the reservation.
        report = simulate(
            wl(
                Job(0, 0.0, 64, 100.0),
                Job(1, 1.0, 128, 100.0),
                Job(2, 2.0, 1, 200.0),
            ),
            no_failures(),
            KrevatPolicy(),
            cfg(backfill=BackfillMode.EASY),
        )
        recs = {r.job_id: r for r in report.records}
        assert recs[2].start >= recs[1].start

    def test_easy_backfill_fills_short_jobs(self):
        # Same but job 2 estimates 50 s -> fits before the reservation.
        report = simulate(
            wl(
                Job(0, 0.0, 64, 100.0),
                Job(1, 1.0, 128, 100.0),
                Job(2, 2.0, 1, 50.0),
            ),
            no_failures(),
            KrevatPolicy(),
            cfg(backfill=BackfillMode.EASY),
        )
        recs = {r.job_id: r for r in report.records}
        assert recs[2].start < recs[1].start


class TestValidation:
    def test_unschedulable_size_rejected(self):
        with pytest.raises(SimulationError, match="no rectangular"):
            simulate(wl(Job(0, 0.0, 11, 10.0)), no_failures(), KrevatPolicy(), cfg())

    def test_wrong_failure_log_size_rejected(self):
        with pytest.raises(SimulationError, match="map_node_ids"):
            simulate(wl(Job(0, 0.0, 1, 1.0)), FailureLog(350), KrevatPolicy(), cfg())


class TestFailures:
    def test_failure_kills_and_restarts(self):
        # Job runs 100 s from t=0 on the whole machine; failure at t=50.
        log = FailureLog(N, [FailureEvent(50.0, 0)])
        report = simulate(wl(Job(0, 0.0, 128, 100.0)), log, KrevatPolicy(), cfg())
        rec = report.records[0]
        assert rec.restarts == 1
        assert rec.finish == 150.0          # 50 wasted + fresh 100 s run
        assert rec.lost_work == 50.0 * 128
        assert report.counters.failures_hit_jobs == 1
        assert report.counters.job_kills == 1

    def test_failure_on_idle_node_harmless(self):
        # Krevat places the 64-node job as (2,4,8) at x in {0,1}; a
        # failure at x=3 lands in the free half.
        log = FailureLog(N, [FailureEvent(50.0, D.index((3, 0, 0)))])
        report = simulate(wl(Job(0, 0.0, 64, 100.0)), log, KrevatPolicy(), cfg())
        assert report.records[0].restarts == 0
        assert report.counters.failures_idle == 1

    def test_failure_at_exact_finish_is_harmless(self):
        log = FailureLog(N, [FailureEvent(100.0, 0)])
        report = simulate(wl(Job(0, 0.0, 128, 100.0)), log, KrevatPolicy(), cfg())
        assert report.records[0].restarts == 0

    def test_repeated_failures_repeated_restarts(self):
        # Run 1: 0-50 (killed); run 2: 50-120 (killed); run 3: 120-220.
        log = FailureLog(N, [FailureEvent(50.0, 0), FailureEvent(120.0, 0)])
        report = simulate(wl(Job(0, 0.0, 128, 100.0)), log, KrevatPolicy(), cfg())
        rec = report.records[0]
        assert rec.restarts == 2
        assert rec.finish == 220.0
        assert rec.lost_work == (50.0 + 70.0) * 128

    def test_killed_job_requeues_at_head(self):
        # Two jobs: 0 running, 1 waiting. 0 killed -> it must restart
        # before 1 (original arrival priority).
        log = FailureLog(N, [FailureEvent(50.0, 0)])
        report = simulate(
            wl(Job(0, 0.0, 128, 100.0), Job(1, 1.0, 128, 100.0)),
            log,
            KrevatPolicy(),
            cfg(backfill=BackfillMode.NONE),
        )
        recs = {r.job_id: r for r in report.records}
        assert recs[0].finish == 150.0
        assert recs[1].start == 150.0

    def test_balancing_avoids_predicted_failure(self):
        # Two 64-node jobs would normally pack side by side; node (0,0,0)
        # fails at t=50. With a perfect predictor the first job (placed
        # first) avoids the failing half entirely.
        log = FailureLog(N, [FailureEvent(50.0, D.index((0, 0, 0)))])
        policy = BalancingPolicy(BalancingPredictor(log, 1.0))
        report = simulate(wl(Job(0, 0.0, 64, 100.0)), log, policy, cfg())
        assert report.records[0].restarts == 0
        assert report.counters.failures_idle == 1

    def test_krevat_suffers_where_balancing_does_not(self):
        log = FailureLog(N, [FailureEvent(50.0, 0)])
        krevat = simulate(wl(Job(0, 0.0, 64, 100.0)), log, KrevatPolicy(), cfg())
        assert krevat.records[0].restarts == 1  # placed at origin corner


class TestMigration:
    def test_compaction_unblocks_fragmented_head(self):
        # Jobs 0,1 fragment the machine (est 1000 s each); job 2 needs a
        # 64-box that only exists after compaction.  Without migration it
        # waits ~1000 s; with migration it starts immediately.
        jobs = (
            Job(0, 0.0, 32, 1000.0),
            Job(1, 0.0, 32, 1000.0),
            Job(2, 5.0, 64, 10.0),
        )

        class FragmentingPolicy(KrevatPolicy):
            """Force jobs 0/1 into z-slabs 0-1 and 4-5 (fragmented)."""

            def choose_partition(self, index, state, now):
                from repro.geometry.partition import Partition

                if state.job_id == 0:
                    return Partition((0, 0, 0), (4, 4, 2))
                if state.job_id == 1:
                    return Partition((0, 0, 4), (4, 4, 2))
                return super().choose_partition(index, state, now)

        with_migration = simulate(
            wl(*jobs), no_failures(), FragmentingPolicy(), cfg(migration=True)
        )
        without = simulate(
            wl(*jobs), no_failures(), FragmentingPolicy(), cfg(migration=False)
        )
        recs_m = {r.job_id: r for r in with_migration.records}
        recs_n = {r.job_id: r for r in without.records}
        assert recs_m[2].start == 5.0
        assert with_migration.counters.migrations == 1
        assert recs_n[2].start >= 1000.0

    def test_migration_cost_charged(self):
        jobs = (
            Job(0, 0.0, 32, 1000.0),
            Job(1, 0.0, 32, 1000.0),
            Job(2, 5.0, 64, 10.0),
        )

        class FragmentingPolicy(KrevatPolicy):
            def choose_partition(self, index, state, now):
                from repro.geometry.partition import Partition

                if state.job_id == 0:
                    return Partition((0, 0, 0), (4, 4, 2))
                if state.job_id == 1:
                    return Partition((0, 0, 4), (4, 4, 2))
                return super().choose_partition(index, state, now)

        report = simulate(
            wl(*jobs),
            no_failures(),
            FragmentingPolicy(),
            cfg(migration=True, migration_cost_s=60.0),
        )
        moved = [r for r in report.records if r.job_id in (0, 1) and r.lost_work > 0]
        assert moved, "at least one migrated job should be charged"
        for rec in moved:
            assert rec.finish >= 1060.0


class TestCheckpointIntegration:
    def test_periodic_checkpoint_reduces_lost_work(self):
        log = FailureLog(N, [FailureEvent(950.0, 0)])
        job = Job(0, 0.0, 128, 1000.0)
        plain = simulate(wl(job), log, KrevatPolicy(), cfg())
        ckpt_cfg = cfg(
            checkpoint=CheckpointConfig(
                mode=CheckpointMode.PERIODIC, interval_s=100.0, overhead_s=1.0
            )
        )
        ckpt = simulate(wl(job), log, KrevatPolicy(), ckpt_cfg)
        assert plain.records[0].lost_work == pytest.approx(950.0 * 128)
        assert ckpt.records[0].lost_work < plain.records[0].lost_work / 5
        assert ckpt.records[0].finish < plain.records[0].finish
        assert ckpt.counters.checkpoint_restores == 1

    def test_checkpoint_overhead_extends_wall_time(self):
        job = Job(0, 0.0, 128, 1000.0)
        ckpt_cfg = cfg(
            checkpoint=CheckpointConfig(
                mode=CheckpointMode.PERIODIC, interval_s=100.0, overhead_s=10.0
            )
        )
        report = simulate(wl(job), no_failures(), KrevatPolicy(), ckpt_cfg)
        assert report.records[0].finish == pytest.approx(1090.0)  # 9 checkpoints


class TestConservation:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_all_jobs_complete_and_accounting_holds(self, seed):
        rng = np.random.default_rng(seed)
        n_jobs = int(rng.integers(5, 40))
        jobs = []
        t = 0.0
        for i in range(n_jobs):
            t += float(rng.exponential(200.0))
            size = int(rng.choice([1, 2, 4, 8, 16, 32, 64, 128]))
            runtime = float(rng.uniform(10.0, 2000.0))
            jobs.append(Job(i, t, size, runtime, runtime * float(rng.uniform(1.0, 2.0))))
        n_fail = int(rng.integers(0, 20))
        events = [
            FailureEvent(float(rng.uniform(0, t + 4000)), int(rng.integers(N)))
            for _ in range(n_fail)
        ]
        log = FailureLog(N, events)
        report = simulate(wl(*jobs), log, KrevatPolicy(), cfg())
        assert report.timing.n_jobs == n_jobs
        cap = report.capacity
        assert cap.utilized + cap.unused + cap.lost == pytest.approx(1.0)
        assert 0 <= cap.utilized <= 1 and 0 <= cap.unused <= 1
        assert cap.lost >= -1e-9
        for rec in report.records:
            assert rec.finish >= rec.start >= rec.arrival
            assert rec.lost_work >= 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_determinism(self, seed):
        rng = np.random.default_rng(seed)
        jobs = [
            Job(i, float(i * 100), int(rng.choice([1, 4, 16])), 300.0, 400.0)
            for i in range(10)
        ]
        log = FailureLog(N, [FailureEvent(500.0, int(rng.integers(N)))])
        p1 = BalancingPolicy(BalancingPredictor(log, 0.5))
        p2 = BalancingPolicy(BalancingPredictor(log, 0.5))
        r1 = simulate(wl(*jobs), log, p1, cfg(seed=7))
        r2 = simulate(wl(*jobs), log, p2, cfg(seed=7))
        assert r1.records == r2.records
