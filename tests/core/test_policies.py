"""Tests for the three placement policies."""

from __future__ import annotations

import pytest

from repro.allocation.mfp import PlacementIndex
from repro.core.jobstate import JobState
from repro.core.policies import BalancingPolicy, KrevatPolicy, TieBreakPolicy, make_policy
from repro.errors import SimulationError
from repro.failures.events import FailureEvent, FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus
from repro.prediction import BalancingPredictor, TieBreakPredictor
from repro.workloads.job import Job

D = BGL_SUPERNODE_DIMS


def js(size=8, estimate=1000.0, job_id=0) -> JobState:
    return JobState(Job(job_id, 0.0, size, estimate, estimate))


def empty_log() -> FailureLog:
    return FailureLog(D.volume)


def log_at(coord, when=500.0) -> FailureLog:
    return FailureLog(D.volume, [FailureEvent(when, D.index(coord))])


class TestKrevatPolicy:
    def test_places_on_empty_machine(self):
        t = Torus(D)
        part = KrevatPolicy().choose_partition(PlacementIndex(t), js(8), 0.0)
        assert part is not None and part.size == 8

    def test_none_when_no_partition(self):
        t = Torus(D)
        t.allocate(99, Partition((0, 0, 0), (4, 4, 8)))
        assert KrevatPolicy().choose_partition(PlacementIndex(t), js(1), 0.0) is None

    def test_prefers_minimal_mfp_loss(self):
        """With one corner occupied, placing next to it preserves MFP."""
        t = Torus(D)
        t.allocate(99, Partition((0, 0, 0), (4, 4, 4)))  # half machine busy
        index = PlacementIndex(t)
        part = KrevatPolicy().choose_partition(index, js(8), 0.0)
        assert index.mfp_loss(part) == min(
            loss for _, loss in index.scored_candidates(8)
        )

    def test_deterministic(self):
        t = Torus(D)
        t.allocate(99, Partition((1, 2, 3), (2, 2, 2)))
        a = KrevatPolicy().choose_partition(PlacementIndex(t), js(4), 0.0)
        b = KrevatPolicy().choose_partition(PlacementIndex(t), js(4), 0.0)
        assert a == b


class TestBalancingPolicy:
    def test_avoids_predicted_failure_when_free(self):
        """A flagged node inside one candidate pushes the job elsewhere."""
        t = Torus(D)
        policy = BalancingPolicy(BalancingPredictor(log_at((0, 0, 0)), 0.9))
        part = policy.choose_partition(PlacementIndex(t), js(8, estimate=1000.0), 0.0)
        assert not part.contains(D, (0, 0, 0))

    def test_zero_confidence_matches_krevat(self):
        t = Torus(D)
        t.allocate(99, Partition((0, 1, 2), (2, 2, 3)))
        balancing = BalancingPolicy(BalancingPredictor(log_at((3, 3, 3)), 0.0))
        for size in (1, 4, 8, 16):
            assert balancing.choose_partition(
                PlacementIndex(t), js(size), 0.0
            ) == KrevatPolicy().choose_partition(PlacementIndex(t), js(size), 0.0)

    def test_flag_outside_window_ignored(self):
        t = Torus(D)
        policy = BalancingPolicy(BalancingPredictor(log_at((0, 0, 0), when=5000.0), 0.9))
        krevat = KrevatPolicy().choose_partition(PlacementIndex(t), js(8, estimate=1000.0), 0.0)
        chosen = policy.choose_partition(PlacementIndex(t), js(8, estimate=1000.0), 0.0)
        assert chosen == krevat

    def test_accepts_doomed_partition_when_it_is_the_only_one(self):
        t = Torus(D)
        # Fill everything except one 1x1x2 strip containing a flagged node.
        t.allocate(99, Partition((0, 0, 2), (4, 4, 6)))
        t.allocate(98, Partition((0, 0, 0), (4, 4, 2)))
        t.release(98)
        t.allocate(98, Partition((0, 1, 0), (4, 3, 2)))
        t.allocate(97, Partition((1, 0, 0), (3, 1, 2)))
        policy = BalancingPolicy(BalancingPredictor(log_at((0, 0, 0)), 1.0))
        part = policy.choose_partition(PlacementIndex(t), js(2, estimate=1000.0), 0.0)
        assert part is not None
        assert part.contains(D, (0, 0, 0))

    def test_none_when_full(self):
        t = Torus(D)
        t.allocate(99, Partition((0, 0, 0), (4, 4, 8)))
        policy = BalancingPolicy(BalancingPredictor(empty_log(), 0.5))
        assert policy.choose_partition(PlacementIndex(t), js(1), 0.0) is None


class TestTieBreakPolicy:
    def test_breaks_tie_away_from_flagged(self):
        t = Torus(D)
        policy = TieBreakPolicy(TieBreakPredictor(log_at((0, 0, 0)), 1.0, seed=0))
        part = policy.choose_partition(PlacementIndex(t), js(8, estimate=1000.0), 0.0)
        assert not part.contains(D, (0, 0, 0))

    def test_never_leaves_tied_set(self):
        """Unlike balancing, tie-break never trades MFP for stability."""
        t = Torus(D)
        t.allocate(99, Partition((0, 0, 0), (4, 4, 4)))
        index = PlacementIndex(t)
        min_loss = min(loss for _, loss in index.scored_candidates(8))
        policy = TieBreakPolicy(TieBreakPredictor(log_at((2, 2, 6)), 1.0, seed=0))
        part = policy.choose_partition(index, js(8, estimate=1000.0), 0.0)
        assert index.mfp_loss(part) == min_loss

    def test_all_tied_doomed_falls_back_to_first(self):
        t = Torus(D)
        t.allocate(99, Partition((0, 0, 2), (4, 4, 6)))  # only z in {0,1} free
        # Flag every free node.
        events = [
            FailureEvent(500.0, D.index((x, y, z)))
            for x in range(4)
            for y in range(4)
            for z in (0, 1)
        ]
        log = FailureLog(D.volume, events)
        policy = TieBreakPolicy(TieBreakPredictor(log, 1.0, seed=0))
        part = policy.choose_partition(PlacementIndex(t), js(4, estimate=1000.0), 0.0)
        assert part is not None  # arbitrary choice, but a choice

    def test_zero_accuracy_matches_krevat(self):
        t = Torus(D)
        t.allocate(99, Partition((2, 0, 1), (2, 2, 2)))
        policy = TieBreakPolicy(TieBreakPredictor(log_at((0, 0, 0)), 0.0, seed=0))
        assert policy.choose_partition(
            PlacementIndex(t), js(8), 0.0
        ) == KrevatPolicy().choose_partition(PlacementIndex(t), js(8), 0.0)


class TestRegistry:
    def test_krevat_needs_no_log(self):
        assert isinstance(make_policy("krevat"), KrevatPolicy)

    def test_fault_aware_need_log(self):
        with pytest.raises(SimulationError):
            make_policy("balancing")
        with pytest.raises(SimulationError):
            make_policy("tiebreak")

    def test_construction(self):
        log = empty_log()
        assert isinstance(make_policy("balancing", log, 0.5), BalancingPolicy)
        assert isinstance(make_policy("tiebreak", log, 0.5), TieBreakPolicy)

    def test_unknown(self):
        with pytest.raises(SimulationError, match="unknown policy"):
            make_policy("random")
