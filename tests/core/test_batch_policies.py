"""Batch policy paths must pick exactly what the scalar oracles pick.

Each policy's production ``choose_partition`` is a vectorised argmin
over the batch-scored candidate set; ``choose_partition_scalar`` is the
retained per-candidate walk.  Identical choices — including tie order —
are what make the whole batch refactor observationally invisible, so
this suite asserts them per decision over random machine states and
end-to-end over whole simulations (bitwise-identical reports).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.allocation.mfp import PlacementIndex
from repro.core.config import BackfillMode, SimulationConfig
from repro.core.jobstate import JobState
from repro.core.policies import BalancingPolicy, KrevatPolicy, TieBreakPolicy
from repro.core.simulator import simulate
from repro.failures.events import FailureEvent, FailureLog
from repro.geometry.coords import TorusDims
from repro.geometry.shapes import schedulable_sizes
from repro.prediction import (
    BalancingPredictor,
    PartitionFailureRule,
    TieBreakPredictor,
)
from repro.testing import random_torus
from repro.workloads.job import Job, Workload

D = TorusDims(4, 4, 5)


@st.composite
def torus_states(draw):
    seed = draw(st.integers(0, 2**32 - 1))
    attempts = draw(st.integers(0, 14))
    return random_torus(D, np.random.default_rng(seed), attempts=attempts)


@st.composite
def failure_logs(draw) -> FailureLog:
    n = draw(st.integers(0, 10))
    events = [
        FailureEvent(
            draw(st.floats(0.0, 800.0, allow_nan=False)),
            draw(st.integers(0, D.volume - 1)),
        )
        for _ in range(n)
    ]
    return FailureLog(D.volume, events)


def policies(log: FailureLog, accuracy: float, seed: int):
    return [
        KrevatPolicy(),
        BalancingPolicy(BalancingPredictor(log, accuracy, PartitionFailureRule.MAX)),
        BalancingPolicy(
            BalancingPredictor(log, accuracy, PartitionFailureRule.COMPLEMENT_PRODUCT)
        ),
        TieBreakPolicy(TieBreakPredictor(log, accuracy, seed=seed)),
    ]


class TestPerDecision:
    @settings(max_examples=100, deadline=None)
    @given(
        torus_states(),
        failure_logs(),
        st.floats(0.0, 1.0, allow_nan=False),
        st.integers(0, 2**31 - 1),
        st.data(),
    )
    def test_batch_choice_equals_scalar_choice(self, torus, log, accuracy, seed, data):
        """≥100 random states × all policies: same winner, tie order
        included.  The tie-break predictor draws its response noise once
        per window, so batch and scalar see identical answers."""
        size = data.draw(st.sampled_from(schedulable_sizes(D)))
        now = data.draw(st.floats(0.0, 700.0, allow_nan=False))
        state = JobState(
            Job(0, 0.0, size, data.draw(st.floats(1.0, 300.0, allow_nan=False)))
        )
        for policy in policies(log, accuracy, seed):
            policy.begin_pass(now)
            index = PlacementIndex(torus)
            assert policy.choose_partition(
                index, state, now
            ) == policy.choose_partition_scalar(index, state, now), policy.name


# Scalar-oracle policy variants: same class, production entry point
# swapped for the retained scalar walk.  Used to run whole simulations
# down the scalar path.
class ScalarKrevat(KrevatPolicy):
    choose_partition = KrevatPolicy.choose_partition_scalar


class ScalarBalancing(BalancingPolicy):
    choose_partition = BalancingPolicy.choose_partition_scalar


class ScalarTieBreak(TieBreakPolicy):
    choose_partition = TieBreakPolicy.choose_partition_scalar


SCALAR_VARIANTS = {
    KrevatPolicy: ScalarKrevat,
    BalancingPolicy: ScalarBalancing,
    TieBreakPolicy: ScalarTieBreak,
}


@st.composite
def workloads(draw) -> Workload:
    sizes = schedulable_sizes(D)
    n = draw(st.integers(1, 8))
    jobs = []
    arrival = 0.0
    for i in range(n):
        arrival += draw(st.floats(0.0, 50.0, allow_nan=False))
        jobs.append(
            Job(
                i,
                arrival,
                draw(st.sampled_from(sizes)),
                draw(st.floats(1.0, 200.0, allow_nan=False)),
            )
        )
    return Workload("batch-vs-scalar", D.volume, tuple(jobs))


def policy_pairs(log: FailureLog, accuracy: float, seed: int):
    """(batch, scalar) policy instances of every flavour.

    Predictors with RNG state (tie-break) are built fresh per instance
    from the same seed, so both runs see identical response noise.
    """
    return [
        (KrevatPolicy(), ScalarKrevat()),
        (
            BalancingPolicy(BalancingPredictor(log, accuracy, PartitionFailureRule.MAX)),
            ScalarBalancing(BalancingPredictor(log, accuracy, PartitionFailureRule.MAX)),
        ),
        (
            TieBreakPolicy(TieBreakPredictor(log, accuracy, seed=seed)),
            ScalarTieBreak(TieBreakPredictor(log, accuracy, seed=seed)),
        ),
    ]


class TestEndToEnd:
    @settings(max_examples=20, deadline=None)
    @given(
        workloads(),
        failure_logs(),
        st.floats(0.0, 1.0, allow_nan=False),
        st.sampled_from(list(BackfillMode)),
        st.booleans(),
        st.data(),
    )
    def test_reports_bitwise_identical(
        self, workload, log, accuracy, backfill, migration, data
    ):
        """Whole simulations agree: batch-path and scalar-path runs of
        the same scenario produce equal reports, field for field."""
        seed = data.draw(st.integers(0, 2**31 - 1))
        config = SimulationConfig(
            dims=D, backfill=backfill, migration=migration, seed=seed
        )
        for batch_policy, scalar_policy in policy_pairs(log, accuracy, seed):
            batch_report = simulate(workload, log, batch_policy, config)
            scalar_report = simulate(workload, log, scalar_policy, config)
            assert batch_report == scalar_report, batch_policy.name
