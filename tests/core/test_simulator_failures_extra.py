"""Additional failure-semantics and accounting edge cases."""

from __future__ import annotations

import pytest

from repro.core.config import BackfillMode, SimulationConfig
from repro.core.policies import KrevatPolicy, TieBreakPolicy
from repro.core.simulator import simulate
from repro.failures.events import FailureEvent, FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.prediction import TieBreakPredictor
from repro.workloads.job import Job, Workload

D = BGL_SUPERNODE_DIMS
N = D.volume


def wl(*jobs: Job) -> Workload:
    return Workload("t", N, tuple(jobs))


def cfg(**kw) -> SimulationConfig:
    return SimulationConfig(**{"strict_invariants": True, **kw})


class TestBurstSemantics:
    def test_simultaneous_failures_on_one_job_kill_once(self):
        # Three nodes of the same running job fail at the same instant:
        # one kill, one restart, later failures in the batch are idle.
        log = FailureLog(
            N,
            [FailureEvent(50.0, D.index((0, 0, 0))),
             FailureEvent(50.0, D.index((0, 0, 1))),
             FailureEvent(50.0, D.index((0, 1, 0)))],
        )
        report = simulate(wl(Job(0, 0.0, 128, 100.0)), log, KrevatPolicy(), cfg())
        rec = report.records[0]
        assert rec.restarts == 1
        assert report.counters.failures_hit_jobs == 1
        # The re-dispatch happens in the same batch's scheduler pass
        # (after all 3 events), so the remaining two land on the fresh
        # run only if they are in a *later* batch — here they are not.
        assert report.counters.failures_idle == 2

    def test_burst_spanning_batches_can_kill_twice(self):
        log = FailureLog(
            N,
            [FailureEvent(50.0, D.index((0, 0, 0))),
             FailureEvent(51.0, D.index((0, 0, 1)))],
        )
        report = simulate(wl(Job(0, 0.0, 128, 100.0)), log, KrevatPolicy(), cfg())
        assert report.records[0].restarts == 2
        assert report.records[0].finish == pytest.approx(151.0)

    def test_failure_before_any_arrival(self):
        log = FailureLog(N, [FailureEvent(0.0, 5)])
        report = simulate(wl(Job(0, 100.0, 8, 50.0)), log, KrevatPolicy(), cfg())
        assert report.records[0].restarts == 0
        assert report.counters.failures_idle == 1

    def test_failures_after_all_jobs_done_ignored(self):
        log = FailureLog(N, [FailureEvent(10_000.0, 0)])
        report = simulate(wl(Job(0, 0.0, 8, 50.0)), log, KrevatPolicy(), cfg())
        # Simulation ends at the last completion; trailing failures are
        # never processed.
        assert report.counters.failures_total == 0

    def test_lost_work_appears_in_capacity(self):
        log = FailureLog(N, [FailureEvent(80.0, 0)])
        report = simulate(wl(Job(0, 0.0, 128, 100.0)), log, KrevatPolicy(), cfg())
        # Span 180 s: 80 s destroyed + 100 s useful on the full machine.
        assert report.capacity.utilized == pytest.approx(100.0 / 180.0)
        assert report.capacity.lost == pytest.approx(80.0 / 180.0)
        assert report.capacity.unused == pytest.approx(0.0, abs=1e-12)


class TestTieBreakInSimulation:
    def test_tiebreak_policy_runs_end_to_end(self):
        log = FailureLog(N, [FailureEvent(50.0, D.index((0, 0, 0)))])
        policy = TieBreakPolicy(TieBreakPredictor(log, 1.0, seed=0))
        report = simulate(wl(Job(0, 0.0, 64, 100.0)), log, policy, cfg())
        # Perfect tie-break prediction steers the job off the failing
        # node (all 64-node placements tie on an empty machine).
        assert report.records[0].restarts == 0


class TestStressScenarios:
    def test_many_small_jobs_with_failures(self):
        jobs = tuple(Job(i, i * 5.0, 1, 60.0) for i in range(150))
        log = FailureLog(
            N, [FailureEvent(100.0 + 37.0 * k, (k * 13) % N) for k in range(25)]
        )
        report = simulate(wl(*jobs), log, KrevatPolicy(), cfg())
        assert report.timing.n_jobs == 150
        cap = report.capacity
        assert cap.utilized + cap.unused + cap.lost == pytest.approx(1.0)

    def test_no_backfill_with_failures_still_completes(self):
        jobs = tuple(Job(i, i * 50.0, 32 if i % 3 else 128, 400.0) for i in range(30))
        log = FailureLog(
            N, [FailureEvent(500.0 * k + 123.0, (k * 29) % N) for k in range(12)]
        )
        report = simulate(
            wl(*jobs), log, KrevatPolicy(), cfg(backfill=BackfillMode.NONE)
        )
        assert report.timing.n_jobs == 30

    def test_migration_cost_with_failures(self):
        jobs = tuple(Job(i, i * 20.0, 16, 300.0) for i in range(40))
        log = FailureLog(N, [FailureEvent(700.0 + k * 211.0, (k * 7) % N) for k in range(10)])
        report = simulate(
            wl(*jobs), log, KrevatPolicy(), cfg(migration=True, migration_cost_s=30.0)
        )
        assert report.timing.n_jobs == 40
        assert report.capacity.lost >= 0
