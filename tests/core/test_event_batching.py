"""Event-batching equivalence: batched vs per-event simulator core.

With ``batch_events=True`` the simulator drains every event sharing the
next timestamp (kind order FINISH < FAILURE < ARRIVAL), repairs the
placement index once, and runs one scheduling pass.  With
``batch_events=False`` the index is refreshed after *every* handler —
the oracle semantics.  The two must be indistinguishable: identical
reports and byte-identical NDJSON decision traces, across randomized
workloads and failure mixes (DESIGN.md §5.12).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SimulationSetup
from repro.core.config import SimulationConfig
from repro.core.events import EventKind, EventQueue
from repro.core.policies import KrevatPolicy
from repro.core.policies.registry import make_policy
from repro.core.simulator import Simulator, simulate
from repro.failures.events import FailureEvent, FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.obs.tools import diff_traces
from repro.obs.trace import _encode, write_trace
from repro.workloads.job import Job, Workload

D = BGL_SUPERNODE_DIMS
N = D.volume


def run_traced(setup: SimulationSetup, batch_events: bool):
    """One traced simulation; returns (report, trace records)."""
    config = SimulationConfig(trace=True, batch_events=batch_events)
    workload = setup.build_workload()
    failures = setup.build_failures(workload)
    policy = make_policy(
        setup.policy,
        failure_log=failures,
        parameter=setup.parameter,
        pf_rule=setup.pf_rule,
        seed=setup.seed + 2,
    )
    sim = Simulator(workload, failures, policy, config)
    report = sim.run()
    return report, sim.recorder.records


def assert_equivalent(setup: SimulationSetup) -> None:
    batched_report, batched_trace = run_traced(setup, batch_events=True)
    oracle_report, oracle_trace = run_traced(setup, batch_events=False)
    assert batched_report.records == oracle_report.records
    assert batched_report.timing == oracle_report.timing
    assert batched_report.capacity == oracle_report.capacity
    assert batched_report.counters == oracle_report.counters
    # Byte-identical NDJSON: _encode produces exactly the serialized
    # line each record becomes on disk.
    assert [_encode(r) for r in batched_trace] == [
        _encode(r) for r in oracle_trace
    ]
    assert diff_traces(batched_trace, oracle_trace) is None


class TestRandomizedEquivalence:
    """100 randomized workloads: reports and traces byte-identical."""

    @settings(max_examples=100, deadline=None)
    @given(
        site=st.sampled_from(["sdsc", "nasa", "llnl"]),
        n_jobs=st.integers(min_value=1, max_value=25),
        n_failures=st.integers(min_value=0, max_value=12),
        policy=st.sampled_from(["krevat", "balancing", "tiebreak"]),
        parameter=st.sampled_from([0.0, 0.1, 0.5, 1.0]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_batched_equals_unbatched(
        self, site, n_jobs, n_failures, policy, parameter, seed
    ):
        assert_equivalent(
            SimulationSetup(
                site=site,
                n_jobs=n_jobs,
                n_failures=n_failures,
                policy=policy,
                parameter=parameter,
                seed=seed,
            )
        )

    def test_ndjson_files_byte_identical(self, tmp_path):
        """The full on-disk NDJSON artefacts match, byte for byte."""
        setup = SimulationSetup(
            site="sdsc", n_jobs=30, n_failures=10,
            policy="balancing", parameter=0.3, seed=11,
        )
        _, batched = run_traced(setup, batch_events=True)
        _, oracle = run_traced(setup, batch_events=False)
        a, b = tmp_path / "batched.ndjson", tmp_path / "oracle.ndjson"
        write_trace(batched, a)
        write_trace(oracle, b)
        assert a.read_bytes() == b.read_bytes()


class TestIntraTimestampOrdering:
    """The batch drain preserves the FINISH < FAILURE < ARRIVAL order."""

    def test_pop_batch_orders_by_kind_then_seq(self):
        queue = EventQueue()
        queue.push(5.0, EventKind.ARRIVAL, payload=1)
        queue.push(5.0, EventKind.FINISH, payload=2)
        queue.push(5.0, EventKind.FAILURE, payload=3)
        queue.push(5.0, EventKind.FINISH, payload=4)
        queue.push(6.0, EventKind.FINISH, payload=5)
        batch = queue.pop_batch()
        assert [e.payload for e in batch] == [2, 4, 3, 1]
        assert [e.kind for e in batch] == [
            EventKind.FINISH, EventKind.FINISH, EventKind.FAILURE,
            EventKind.ARRIVAL,
        ]
        assert len(queue) == 1  # the t=6 event stays queued

    def test_finish_before_simultaneous_arrival(self):
        """A partition freed at t is visible to a job arriving at t."""
        for batch_events in (True, False):
            report = simulate(
                Workload("test", N, (
                    Job(0, 0.0, N, 100.0),
                    Job(1, 100.0, N, 50.0),
                )),
                FailureLog(N),
                KrevatPolicy(),
                SimulationConfig(
                    strict_invariants=True, batch_events=batch_events
                ),
            )
            recs = {r.job_id: r for r in report.records}
            assert recs[1].start == 100.0
            assert recs[1].wait == 0.0

    def test_finish_before_simultaneous_failure(self):
        """A job completing at exactly the failure instant has already
        finished — no restart in either mode."""
        for batch_events in (True, False):
            report = simulate(
                Workload("test", N, (Job(0, 0.0, N, 100.0),)),
                FailureLog(N, [FailureEvent(100.0, 0)]),
                KrevatPolicy(),
                SimulationConfig(
                    strict_invariants=True, batch_events=batch_events
                ),
            )
            assert report.records[0].restarts == 0
            assert report.records[0].response == 100.0


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
