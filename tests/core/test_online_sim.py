"""Steppable simulator: watermark pumping, cancel/resubmit, and the
online-equals-batch equivalence the serve subsystem is built on."""

from __future__ import annotations

import math

import pytest

from repro.api import SimulationSetup
from repro.core.arrivals import ArrivalStream, OnlineArrivalStream, TraceArrivalStream
from repro.core.policies.registry import make_policy
from repro.core.simulator import Simulator
from repro.errors import SimulationError
from repro.metrics.serialize import report_to_dict
from repro.workloads.job import Job, Workload


def scenario(n_jobs: int = 120, seed: int = 5):
    setup = SimulationSetup(site="sdsc", n_jobs=n_jobs, seed=seed)
    workload = setup.build_workload()
    failures = setup.build_failures(workload)

    def policy():
        return make_policy(
            setup.policy,
            failure_log=failures,
            parameter=setup.parameter,
            pf_rule=setup.pf_rule,
            seed=setup.seed + 2,
        )

    return setup, workload, failures, policy


def online_sim(setup, workload, failures, policy) -> tuple[Simulator, OnlineArrivalStream]:
    empty = Workload(workload.name, workload.machine_nodes, ())
    sim = Simulator(empty, failures, policy(), setup.config, open_ended=True)
    stream = OnlineArrivalStream()
    stream.bind(sim)
    return sim, stream


class TestEquivalence:
    @pytest.mark.parametrize("pump_every", [1, 7, 1000])
    def test_online_replay_matches_batch_report(self, pump_every):
        """Feeding the trace one job at a time — pumping aggressively,
        occasionally, or only at drain — reproduces the batch report
        exactly."""
        setup, workload, failures, policy = scenario()
        batch = report_to_dict(
            Simulator(workload, failures, policy(), setup.config).run()
        )
        sim, stream = online_sim(setup, workload, failures, policy)
        for i, job in enumerate(workload.jobs):
            stream.submit(job)
            if i % pump_every == 0:
                sim.pump(horizon=stream.watermark)
        stream.close()
        assert report_to_dict(sim.drain()) == batch

    def test_trace_stream_binding_matches_batch(self):
        """The TraceArrivalStream driver is the batch construction."""
        setup, workload, failures, policy = scenario(n_jobs=60)
        batch = report_to_dict(
            Simulator(workload, failures, policy(), setup.config).run()
        )
        empty = Workload(workload.name, workload.machine_nodes, ())
        sim = Simulator(empty, failures, policy(), setup.config, open_ended=True)
        driver = TraceArrivalStream(workload)
        driver.bind(sim)
        assert driver.closed and math.isinf(driver.watermark)
        assert report_to_dict(sim.drain()) == batch

    def test_run_is_drain_on_batch_path(self):
        setup, workload, failures, policy = scenario(n_jobs=40)
        sim = Simulator(workload, failures, policy(), setup.config)
        first = sim.run()
        assert sim.drain() is first  # cached, idempotent


class TestPumpSemantics:
    def test_pump_stops_strictly_before_horizon(self):
        """Events at exactly the watermark stay queued: a job arriving
        at that instant would join their batch and change the pass."""
        setup, workload, failures, policy = scenario(n_jobs=30)
        sim, stream = online_sim(setup, workload, failures, policy)
        first = workload.jobs[0]
        stream.submit(first)
        sim.pump(horizon=first.arrival)
        assert sim.job_status(first.job_id) == "pending"
        sim.pump(horizon=first.arrival + 1e-9)
        assert sim.job_status(first.job_id) != "pending"

    def test_pump_without_submissions_is_a_no_op(self):
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        assert sim.pump() == 0

    def test_max_batches_bounds_one_call(self):
        setup, workload, failures, policy = scenario(n_jobs=30)
        sim, stream = online_sim(setup, workload, failures, policy)
        for job in workload.jobs:
            stream.submit(job)
        stream.close()
        assert sim.pump(max_batches=3) == 3

    def test_drain_on_empty_open_ended_session(self):
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        stream.close()
        report = sim.drain()
        assert report.records == ()


class TestOnlineStreamContract:
    def test_rejects_decreasing_arrivals(self):
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        stream.submit(Job(1, 100.0, 2, 60.0))
        with pytest.raises(SimulationError, match="nondecreasing"):
            stream.submit(Job(2, 99.0, 2, 60.0))

    def test_rejects_submit_after_close(self):
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        stream.close()
        with pytest.raises(SimulationError, match="closed"):
            stream.submit(Job(1, 0.0, 2, 60.0))

    def test_unbound_stream_raises(self):
        with pytest.raises(SimulationError, match="not bound"):
            OnlineArrivalStream().submit(Job(1, 0.0, 2, 60.0))

    def test_protocol_membership(self):
        assert isinstance(OnlineArrivalStream(), ArrivalStream)
        assert isinstance(
            TraceArrivalStream(Workload("w", 4, ())), ArrivalStream
        )


class TestSubmitCancel:
    def test_duplicate_submit_rejected(self):
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        stream.submit(Job(1, 0.0, 2, 60.0))
        with pytest.raises(SimulationError, match="already submitted"):
            sim.submit_job(Job(1, 5.0, 2, 60.0))

    def test_oversized_job_rejected_with_guidance(self):
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        with pytest.raises(SimulationError, match="no rectangular"):
            sim.submit_job(Job(1, 0.0, 100000, 60.0))

    def test_cancel_pending_job_never_runs(self):
        """Cancel before the ARRIVAL event lands: the job must not
        appear in the wait queue, the records, or the report."""
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        victim = Job(7, 50.0, 2, 60.0)
        stream.submit(victim)
        assert sim.cancel_job(7) == "pending"
        assert sim.job_status(7) == "cancelled"
        stream.submit(Job(8, 60.0, 2, 30.0))
        stream.close()
        report = sim.drain()
        assert [r.job_id for r in report.records] == [8]

    def test_cancel_waiting_and_running(self):
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        # Fill the machine so a second job must wait.
        big = Job(1, 0.0, setup.config.dims.volume, 500.0)
        queued = Job(2, 1.0, 2, 50.0)
        stream.submit(big)
        stream.submit(queued)
        sim.pump(horizon=2.0)
        assert sim.job_status(1) == "running"
        assert sim.job_status(2) == "waiting"
        assert sim.cancel_job(2) == "waiting"
        assert sim.cancel_job(1) == "running"
        assert sim.outstanding == 0
        assert sim.torus.free_count == setup.config.dims.volume

    def test_cancel_then_resubmit_same_id(self):
        """A resubmitted id gets a fresh arrival epoch; the stale queued
        ARRIVAL from the cancelled life is ignored."""
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        stream.submit(Job(3, 10.0, 2, 60.0))
        assert sim.cancel_job(3) == "pending"
        stream.submit(Job(3, 20.0, 4, 30.0))
        stream.close()
        report = sim.drain()
        assert [r.job_id for r in report.records] == [3]
        [record] = report.records
        assert record.size == 4 and record.arrival == 20.0

    def test_cancel_outcomes_for_unknown_and_completed(self):
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        assert sim.cancel_job(99) == "unknown"
        stream.submit(Job(1, 0.0, 2, 10.0))
        stream.close()
        sim.drain()
        assert sim.cancel_job(1) == "completed"
        assert sim.job_status(1) == "completed"

    def test_repeat_cancel_is_stable(self):
        setup, workload, failures, policy = scenario(n_jobs=10)
        sim, stream = online_sim(setup, workload, failures, policy)
        stream.submit(Job(5, 0.0, 2, 10.0))
        assert sim.cancel_job(5) == "pending"
        assert sim.cancel_job(5) == "cancelled"
