"""Tests for shadow-time backfilling and compaction migration."""

from __future__ import annotations

import math

import pytest

from repro.core.backfill import shadow_time
from repro.core.jobstate import JobState
from repro.core.migration import apply_compaction, head_partition, plan_compaction
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus
from repro.workloads.job import Job

D = BGL_SUPERNODE_DIMS


def running_state(job_id, size, est_finish, torus, partition) -> JobState:
    s = JobState(Job(job_id, 0.0, size, 100.0, 100.0))
    s.dispatch(0.0, est_finish)
    s.est_finish = est_finish
    torus.allocate(job_id, partition)
    return s


class TestShadowTime:
    def test_immediate_when_fits(self):
        t = Torus(D)
        assert shadow_time(t, [], 8, now=50.0) == 50.0

    def test_waits_for_first_sufficient_release(self):
        t = Torus(D)
        # Two jobs cover the machine; the one finishing first frees
        # enough space for a 64-node job.
        a = running_state(1, 64, est_finish=100.0, torus=t, partition=Partition((0, 0, 0), (4, 4, 4)))
        b = running_state(2, 64, est_finish=200.0, torus=t, partition=Partition((0, 0, 4), (4, 4, 4)))
        assert shadow_time(t, [a, b], 64, now=0.0) == 100.0

    def test_needs_multiple_releases(self):
        t = Torus(D)
        a = running_state(1, 64, est_finish=100.0, torus=t, partition=Partition((0, 0, 0), (4, 4, 4)))
        b = running_state(2, 64, est_finish=200.0, torus=t, partition=Partition((0, 0, 4), (4, 4, 4)))
        # Full machine needed: both must finish.
        assert shadow_time(t, [a, b], 128, now=0.0) == 200.0

    def test_infinite_for_impossible_size(self):
        t = Torus(D)
        # 11 supernodes never form a box on 4x4x8.
        assert math.isinf(shadow_time(t, [], 11, now=0.0))

    def test_shadow_never_before_now(self):
        t = Torus(D)
        a = running_state(1, 128, est_finish=10.0, torus=t, partition=Partition((0, 0, 0), (4, 4, 8)))
        assert shadow_time(t, [a], 8, now=50.0) == 50.0


class TestCompaction:
    def test_cures_fragmentation(self):
        """Two separated blocks leave 64 free nodes but no 64-box; the
        plan must re-pack so the head fits."""
        t = Torus(D)
        a = running_state(1, 32, 100.0, t, Partition((0, 0, 0), (4, 4, 2)))
        b = running_state(2, 32, 100.0, t, Partition((0, 0, 4), (4, 4, 2)))
        head = JobState(Job(3, 0.0, 64, 100.0, 100.0))
        # Free nodes: z in {2,3,6,7} -> 64 nodes, but max box is 4x4x2=32.
        plan = plan_compaction(t, [a, b], head)
        assert plan is not None
        part = head_partition(plan, 3)
        assert part.size == 64
        apply_compaction(t, plan, head_id=3)
        t.allocate(3, part)
        t.check_invariants()
        assert t.free_count == 128 - 32 - 32 - 64

    def test_returns_none_when_impossible(self):
        t = Torus(D)
        a = running_state(1, 128, 100.0, t, Partition((0, 0, 0), (4, 4, 8)))
        head = JobState(Job(2, 0.0, 8, 100.0, 100.0))
        assert plan_compaction(t, [a], head) is None

    def test_moved_ids_exclude_unmoved(self):
        t = Torus(D)
        a = running_state(1, 64, 100.0, t, Partition((0, 0, 0), (4, 4, 4)))
        head = JobState(Job(2, 0.0, 64, 100.0, 100.0))
        plan = plan_compaction(t, [a], head)
        assert plan is not None
        # Largest-first places job 1 at its current corner: not moved.
        assert 2 not in plan.moved_job_ids

    def test_head_partition_lookup_error(self):
        t = Torus(D)
        head = JobState(Job(5, 0.0, 8, 100.0, 100.0))
        plan = plan_compaction(t, [], head)
        with pytest.raises(LookupError):
            head_partition(plan, 999)

    def test_plan_covers_all_running_and_head(self):
        t = Torus(D)
        states = [
            running_state(1, 16, 100.0, t, Partition((0, 0, 0), (4, 4, 1))),
            running_state(2, 16, 150.0, t, Partition((0, 0, 2), (4, 4, 1))),
            running_state(3, 16, 200.0, t, Partition((0, 0, 4), (4, 4, 1))),
        ]
        head = JobState(Job(4, 0.0, 32, 100.0, 100.0))
        plan = plan_compaction(t, states, head)
        assert plan is not None
        placed_ids = {job_id for job_id, _ in plan.placements}
        assert placed_ids == {1, 2, 3, 4}
        # Planned partitions must be pairwise disjoint.
        parts = [p for _, p in plan.placements]
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                assert not parts[i].overlaps(D, parts[j])
