"""End-to-end capacity-accounting cross-checks.

ω_util is useful work over span; these tests verify the simulator's
tracker against values computable by hand and against the
timeline-reconstruction module.
"""

from __future__ import annotations

import pytest

from repro.core.config import BackfillMode, SimulationConfig
from repro.core.policies import KrevatPolicy
from repro.core.simulator import simulate
from repro.failures.events import FailureEvent, FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.workloads.job import Job, Workload

D = BGL_SUPERNODE_DIMS
N = D.volume


def run(jobs, failures=(), **cfg_kw):
    workload = Workload("t", N, tuple(jobs))
    log = FailureLog(N, [FailureEvent(t, n) for t, n in failures])
    return simulate(
        workload, log, KrevatPolicy(),
        SimulationConfig(strict_invariants=True, **cfg_kw),
    )


class TestHandComputable:
    def test_single_job_full_machine(self):
        report = run([Job(0, 0.0, 128, 100.0)])
        assert report.capacity.utilized == pytest.approx(1.0)
        assert report.capacity.unused == pytest.approx(0.0, abs=1e-12)
        assert report.capacity.lost == pytest.approx(0.0, abs=1e-12)

    def test_half_machine_job(self):
        report = run([Job(0, 0.0, 64, 100.0)])
        # Half the machine busy; the idle half has no queued demand.
        assert report.capacity.utilized == pytest.approx(0.5)
        assert report.capacity.unused == pytest.approx(0.5)

    def test_gap_between_jobs_is_unused(self):
        # Job 0: [0, 100); job 1 arrives at 200: [200, 300). Span 300.
        report = run([Job(0, 0.0, 128, 100.0), Job(1, 200.0, 128, 100.0)])
        assert report.capacity.utilized == pytest.approx(200.0 / 300.0)
        assert report.capacity.unused == pytest.approx(100.0 / 300.0)

    def test_queued_demand_masks_unused(self):
        # Two full-machine jobs arriving together: second waits; while it
        # waits the machine is fully busy, so nothing is unused or lost.
        report = run([Job(0, 0.0, 128, 100.0), Job(1, 0.0, 128, 100.0)])
        assert report.capacity.utilized == pytest.approx(1.0)

    def test_fragmentation_counts_as_lost(self):
        # Job 0 takes half; job 1 wants the full machine: the free half
        # is denied to it (q > f), so that time is "lost", not "unused".
        report = run(
            [Job(0, 0.0, 64, 100.0), Job(1, 0.0, 128, 100.0)],
            backfill=BackfillMode.NONE,
        )
        # Span 200: 0-100 half-busy with unmet demand, 100-200 full.
        assert report.capacity.utilized == pytest.approx(
            (64 * 100 + 128 * 100) / (200.0 * 128)
        )
        assert report.capacity.unused == pytest.approx(0.0, abs=1e-12)
        assert report.capacity.lost == pytest.approx(0.25)

    def test_failure_loss_exact(self):
        # 100 s job killed at 60 s, reruns 60-160: span 160,
        # useful 100, lost 60.
        report = run([Job(0, 0.0, 128, 100.0)], failures=[(60.0, 0)])
        assert report.capacity.utilized == pytest.approx(100.0 / 160.0)
        assert report.capacity.lost == pytest.approx(60.0 / 160.0)
        assert report.timing.total_lost_work == pytest.approx(60.0 * 128)
