"""Tests for the FCFS wait queue and per-job simulation state."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.core.jobstate import JobState, MIN_ESTIMATE_S
from repro.core.queue import WaitQueue
from repro.workloads.job import Job


def state(job_id=0, arrival=0.0, size=4, runtime=100.0, estimate=None) -> JobState:
    job = Job(job_id, arrival, size, runtime, estimate if estimate else runtime)
    return JobState(job)


class TestWaitQueue:
    def test_fcfs_order(self):
        q = WaitQueue()
        q.push(state(2, arrival=30.0))
        q.push(state(0, arrival=10.0))
        q.push(state(1, arrival=20.0))
        assert [s.job_id for s in q] == [0, 1, 2]
        assert q.head().job_id == 0

    def test_requeued_job_returns_to_front(self):
        q = WaitQueue()
        q.push(state(5, arrival=100.0))
        q.push(state(9, arrival=50.0))  # killed job with old arrival
        assert q.head().job_id == 9

    def test_ties_broken_by_id(self):
        q = WaitQueue()
        q.push(state(7, arrival=10.0))
        q.push(state(3, arrival=10.0))
        assert [s.job_id for s in q] == [3, 7]

    def test_requested_nodes(self):
        q = WaitQueue()
        q.push(state(0, size=8))
        q.push(state(1, arrival=1.0, size=16))
        assert q.requested_nodes == 24
        q.remove(q.head())
        assert q.requested_nodes == 16

    def test_duplicate_rejected(self):
        q = WaitQueue()
        s = state(0)
        q.push(s)
        with pytest.raises(SimulationError):
            q.push(s)

    def test_remove_missing(self):
        q = WaitQueue()
        with pytest.raises(SimulationError):
            q.remove(state(0))

    def test_head_on_empty(self):
        with pytest.raises(SimulationError):
            WaitQueue().head()

    def test_discard_present_and_absent(self):
        q = WaitQueue()
        queued = state(1, arrival=10.0, size=8)
        q.push(queued)
        assert q.discard(queued) is True
        assert q.requested_nodes == 0
        # Cancellation can race dispatch: absence is an answer, not an error.
        assert q.discard(queued) is False
        assert len(q) == 0

    def test_discard_leaves_other_jobs_intact(self):
        q = WaitQueue()
        keep = state(1, arrival=10.0, size=4)
        drop = state(2, arrival=20.0, size=8)
        q.push(keep)
        q.push(drop)
        assert q.discard(drop) is True
        assert [s.job_id for s in q] == [1]
        assert q.requested_nodes == 4

    def test_discard_distinguishes_same_id_different_arrival(self):
        """A cancelled-then-resubmitted id is keyed by (arrival, id):
        discarding the old life must not remove the new one."""
        q = WaitQueue()
        resubmitted = state(3, arrival=50.0)
        q.push(resubmitted)
        old_life = state(3, arrival=10.0)
        assert q.discard(old_life) is False
        assert q.find(3) is resubmitted

    def test_find_by_id(self):
        q = WaitQueue()
        a, b = state(1, arrival=10.0), state(2, arrival=20.0)
        q.push(a)
        q.push(b)
        assert q.find(2) is b
        assert q.find(99) is None

    def test_indexing_and_iteration(self):
        q = WaitQueue()
        q.push(state(0, arrival=0.0))
        q.push(state(1, arrival=1.0))
        assert q[1].job_id == 1
        assert len(list(q)) == 2


class TestJobState:
    def test_initial_state(self):
        s = state(runtime=100.0, estimate=150.0)
        assert s.remaining_work == 100.0
        assert s.remaining_estimate == 150.0
        assert not s.running and not s.done

    def test_dispatch_and_complete(self):
        s = state(runtime=100.0)
        epoch = s.dispatch(50.0, 100.0)
        assert epoch == 1 and s.running
        assert s.est_finish == 150.0
        s.complete(150.0)
        assert s.done
        r = s.to_record()
        assert r.wait == 50.0 and r.response == 150.0 and r.restarts == 0

    def test_double_dispatch_rejected(self):
        s = state()
        s.dispatch(0.0, 100.0)
        with pytest.raises(SimulationError):
            s.dispatch(1.0, 100.0)

    def test_kill_without_checkpoint_restores_full_work(self):
        s = state(runtime=100.0)
        s.dispatch(0.0, 100.0)
        s.kill(60.0, new_saved_progress=0.0)
        assert not s.running
        assert s.restarts == 1
        assert s.remaining_work == 100.0
        assert s.lost_work == 60.0 * s.size

    def test_kill_with_checkpoint_keeps_progress(self):
        s = state(runtime=100.0, estimate=120.0)
        s.dispatch(0.0, 100.0)
        s.kill(60.0, new_saved_progress=50.0)
        assert s.remaining_work == 50.0
        assert s.remaining_estimate == 70.0
        assert s.lost_work == pytest.approx(10.0 * s.size)

    def test_checkpoint_cannot_regress(self):
        s = state(runtime=100.0)
        s.dispatch(0.0, 100.0)
        s.kill(60.0, new_saved_progress=50.0)
        s.dispatch(70.0, 50.0)
        with pytest.raises(SimulationError):
            s.kill(80.0, new_saved_progress=20.0)

    def test_estimate_floor_after_deep_checkpoint(self):
        s = state(runtime=100.0, estimate=100.0)
        s.dispatch(0.0, 100.0)
        s.kill(99.9, new_saved_progress=99.9)
        assert s.remaining_estimate >= MIN_ESTIMATE_S

    def test_kill_invalidates_epoch(self):
        s = state()
        e1 = s.dispatch(0.0, 100.0)
        s.kill(10.0, 0.0)
        e2 = s.dispatch(20.0, 100.0)
        assert e2 > e1 + 1  # kill also bumped the epoch

    def test_kill_while_idle_rejected(self):
        with pytest.raises(SimulationError):
            state().kill(0.0, 0.0)

    def test_complete_while_idle_rejected(self):
        with pytest.raises(SimulationError):
            state().complete(0.0)

    def test_record_before_completion_rejected(self):
        s = state()
        with pytest.raises(SimulationError):
            s.to_record()

    def test_record_after_restart(self):
        s = state(runtime=100.0)
        s.dispatch(0.0, 100.0)
        s.kill(60.0, 0.0)
        s.dispatch(200.0, 100.0)
        s.complete(300.0)
        r = s.to_record()
        assert r.start == 200.0
        assert r.finish == 300.0
        assert r.restarts == 1
        assert r.lost_work == 60.0 * s.size
