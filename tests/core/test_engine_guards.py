"""Engine guard rails: event budgets, allocations iterator, dispatch abort."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.jobstate import JobState
from repro.core.policies import KrevatPolicy
from repro.core.simulator import Simulator, simulate
from repro.errors import SimulationError
from repro.failures.events import FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus
from repro.workloads.job import Job, Workload

D = BGL_SUPERNODE_DIMS
N = D.volume


class TestEventBudget:
    def test_budget_exhaustion_raises(self):
        jobs = tuple(Job(i, float(i), 1, 10.0) for i in range(20))
        workload = Workload("t", N, jobs)
        config = SimulationConfig(max_events=5)
        with pytest.raises(SimulationError, match="event budget"):
            simulate(workload, FailureLog(N), KrevatPolicy(), config)

    def test_generous_budget_fine(self):
        jobs = tuple(Job(i, float(i), 1, 10.0) for i in range(20))
        workload = Workload("t", N, jobs)
        report = simulate(workload, FailureLog(N), KrevatPolicy(), SimulationConfig())
        assert report.timing.n_jobs == 20


class TestTorusAllocationsView:
    def test_allocations_iterates_pairs(self):
        t = Torus(D)
        t.allocate(3, Partition((0, 0, 0), (1, 1, 1)))
        t.allocate(5, Partition((2, 2, 2), (1, 1, 2)))
        pairs = dict(t.allocations())
        assert set(pairs) == {3, 5}
        assert pairs[5].size == 2
        assert t.n_jobs == 2


class TestAbortDispatch:
    def test_abort_rolls_back(self):
        s = JobState(Job(0, 0.0, 4, 100.0))
        epoch = s.dispatch(10.0, 100.0)
        s.abort_dispatch()
        assert not s.running
        assert s.restarts == 0
        # The aborted epoch can never deliver a stale FINISH.
        assert s.epoch > epoch

    def test_abort_without_dispatch_rejected(self):
        s = JobState(Job(0, 0.0, 4, 100.0))
        with pytest.raises(SimulationError):
            s.abort_dispatch()


class TestSimulatorConstruction:
    def test_states_created_per_job(self):
        jobs = tuple(Job(i, float(i), 2, 50.0) for i in range(5))
        sim = Simulator(Workload("t", N, jobs), FailureLog(N), KrevatPolicy())
        assert set(sim.states) == {0, 1, 2, 3, 4}
        assert len(sim.events) == 5  # arrivals only, no failures

    def test_failure_events_enqueued(self):
        from repro.failures.events import FailureEvent

        log = FailureLog(N, [FailureEvent(5.0, 1), FailureEvent(9.0, 2)])
        sim = Simulator(
            Workload("t", N, (Job(0, 0.0, 1, 10.0),)), log, KrevatPolicy()
        )
        assert len(sim.events) == 3
