"""Tests for SimulationConfig validation and defaults."""

from __future__ import annotations

import pytest

from repro.checkpoint.model import CheckpointConfig, CheckpointMode
from repro.core.config import BackfillMode, SimulationConfig
from repro.errors import SimulationError
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.metrics.timing import BoundedSlowdownRule


class TestDefaults:
    def test_paper_defaults(self):
        cfg = SimulationConfig()
        assert cfg.dims == BGL_SUPERNODE_DIMS
        assert cfg.backfill is BackfillMode.EASY
        assert cfg.migration is True
        assert cfg.migration_cost_s == 0.0
        assert cfg.gamma == 10.0
        assert cfg.slowdown_rule is BoundedSlowdownRule.STANDARD
        assert cfg.checkpoint.mode is CheckpointMode.NONE

    def test_frozen(self):
        cfg = SimulationConfig()
        with pytest.raises(Exception):
            cfg.migration = False  # type: ignore[misc]


class TestValidation:
    def test_negative_migration_cost(self):
        with pytest.raises(SimulationError):
            SimulationConfig(migration_cost_s=-1.0)

    def test_nonpositive_gamma(self):
        with pytest.raises(SimulationError):
            SimulationConfig(gamma=0.0)

    def test_max_events(self):
        with pytest.raises(SimulationError):
            SimulationConfig(max_events=0)

    def test_checkpoint_config_embedded(self):
        cfg = SimulationConfig(
            checkpoint=CheckpointConfig(mode=CheckpointMode.PERIODIC, interval_s=100.0)
        )
        assert cfg.checkpoint.periodic


class TestBackfillMode:
    def test_values(self):
        assert {m.value for m in BackfillMode} == {"none", "easy", "aggressive"}
