"""Tests for the top-level API and the CLI."""

from __future__ import annotations

import pytest

import repro
from repro.api import SimulationSetup, quick_simulate, run_simulation
from repro.cli import main
from repro.errors import SimulationError
from repro.workloads.job import Job, Workload
from repro.workloads.swf import write_swf


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_lazy_exports(self):
        assert repro.quick_simulate is quick_simulate
        assert repro.SimulationSetup is SimulationSetup

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestQuickSimulate:
    def test_end_to_end(self):
        report = quick_simulate(
            site="nasa", n_jobs=40, n_failures=5, policy="balancing",
            confidence=0.5, seed=0,
        )
        assert report.timing.n_jobs == 40
        assert 0.0 <= report.capacity.utilized <= 1.0
        assert report.parameters["site"] == "nasa"

    def test_krevat_policy(self):
        report = quick_simulate(site="nasa", n_jobs=20, n_failures=0, policy="krevat")
        assert report.policy == "krevat"
        assert report.counters.job_kills == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            quick_simulate(n_jobs=-1)

    def test_setup_equivalent(self):
        a = quick_simulate(site="nasa", n_jobs=25, n_failures=3, confidence=0.3, seed=5)
        b = run_simulation(
            SimulationSetup(site="nasa", n_jobs=25, n_failures=3,
                            policy="balancing", parameter=0.3, seed=5)
        )
        assert a.timing == b.timing
        assert a.capacity == b.capacity


class TestCli:
    def test_run_command(self, capsys):
        assert main(["run", "--site", "nasa", "--jobs", "20", "--failures", "2"]) == 0
        out = capsys.readouterr().out
        assert "slowdown=" in out and "counters:" in out

    def test_sites_command(self, capsys):
        assert main(["sites"]) == 0
        out = capsys.readouterr().out
        assert "nasa" in out and "sdsc" in out and "llnl" in out

    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        assert "fig3" in capsys.readouterr().out

    def test_swf_command(self, tmp_path, capsys):
        workload = Workload(
            "t", 128, tuple(Job(i, i * 60.0, 4, 120.0) for i in range(10))
        )
        path = tmp_path / "t.swf"
        write_swf(workload, path)
        assert main(["swf", str(path), "--failures", "2", "--policy", "krevat"]) == 0
        assert "krevat" in capsys.readouterr().out

    def test_swf_head_limits_jobs(self, tmp_path, capsys):
        workload = Workload(
            "t", 128, tuple(Job(i, i * 60.0, 2, 60.0) for i in range(30))
        )
        path = tmp_path / "t.swf"
        write_swf(workload, path)
        assert main(["swf", str(path), "--head", "5", "--failures", "0"]) == 0

    def test_run_detail(self, capsys):
        assert main(
            ["run", "--site", "nasa", "--jobs", "30", "--failures", "3", "--detail"]
        ) == 0
        out = capsys.readouterr().out
        assert "Distributions:" in out
        assert "histogram" in out
        assert "size class" in out or "job-size class" in out

    def test_characterize_site(self, capsys):
        assert main(["characterize", "--site", "nasa", "--jobs", "150"]) == 0
        out = capsys.readouterr().out
        assert "Workload profile:" in out
        assert "offered_load" in out
        assert "failure-trace profile" in out

    def test_compare_command(self, capsys):
        assert main(
            ["compare", "--site", "nasa", "--jobs", "25", "--failures", "3",
             "--seeds", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "balancing vs krevat" in out
        assert "mean over seeds" in out

    def test_characterize_swf(self, tmp_path, capsys):
        workload = Workload(
            "t", 128, tuple(Job(i, i * 60.0, 4, 120.0) for i in range(20))
        )
        path = tmp_path / "c.swf"
        write_swf(workload, path)
        assert main(["characterize", "--swf", str(path)]) == 0
        assert "n_jobs" in capsys.readouterr().out


class TestCliObservability:
    def run_traced(self, tmp_path, name, extra=()):
        path = tmp_path / name
        code = main(
            ["run", "--site", "nasa", "--jobs", "15", "--failures", "2",
             "--trace", str(path), *extra]
        )
        assert code == 0
        return path

    def test_run_trace_writes_valid_file(self, tmp_path, capsys):
        path = self.run_traced(tmp_path, "t.ndjson")
        assert path.exists()
        assert "trace:" in capsys.readouterr().out
        assert main(["trace", "validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_run_metrics_prints_counters(self, capsys):
        assert main(
            ["run", "--site", "nasa", "--jobs", "15", "--failures", "2",
             "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "sim.dispatches" in out
        assert "timer" in out

    def test_trace_summarize(self, tmp_path, capsys):
        path = self.run_traced(tmp_path, "t.ndjson")
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "records by kind:" in out
        assert "arrival" in out

    def test_trace_diff_identical(self, tmp_path, capsys):
        a = self.run_traced(tmp_path, "a.ndjson")
        b = self.run_traced(tmp_path, "b.ndjson")
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_trace_diff_divergent(self, tmp_path, capsys):
        a = self.run_traced(tmp_path, "a.ndjson")
        b = self.run_traced(tmp_path, "b.ndjson", extra=["--seed", "9"])
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert "decision #" in capsys.readouterr().out

    def test_trace_validate_flags_broken_file(self, tmp_path, capsys):
        path = tmp_path / "broken.ndjson"
        path.write_text('{"kind":"arrival","t":0.0,"seq":0,"job":1,"size":2}\n')
        assert main(["trace", "validate", str(path)]) == 1
        assert "header" in capsys.readouterr().out

    def test_workers_must_be_positive(self, capsys):
        for bad in ("0", "-3", "abc"):
            with pytest.raises(SystemExit) as exc_info:
                main(["figure", "fig3", "--workers", bad])
            assert exc_info.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_verbose_flag_accepted(self, capsys):
        assert main(["-v", "sites"]) == 0
        assert "nasa" in capsys.readouterr().out
