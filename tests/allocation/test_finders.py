"""Cross-validation of the three partition finders.

The naive exhaustive finder is the correctness oracle; POP and both fast
variants must return exactly the same set of free partitions on random
occupancy states.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, GeometryError
from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus
from repro.allocation import (
    FastFinder,
    NaiveFinder,
    POPFinder,
    available_finders,
    get_finder,
)

ALL_FINDERS = [
    NaiveFinder(),
    POPFinder(),
    FastFinder(vectorized=True),
    FastFinder(vectorized=False),
]

FAST_FINDERS = ALL_FINDERS[1:]


def random_torus(dims: TorusDims, fill: float, seed: int) -> Torus:
    """Torus with each node independently occupied with probability fill.

    Occupancy painted directly on the grid (not via allocate) — finders
    only read the grid, and arbitrary masks exercise more corner cases
    than rectangular allocations.
    """
    t = Torus(dims)
    rng = np.random.default_rng(seed)
    mask = rng.random(dims.as_tuple()) < fill
    t.grid[mask] = 999
    return t


def as_node_sets(parts, dims):
    return {p.node_set(dims) for p in parts}


class TestFindersAgree:
    @pytest.mark.parametrize("size", [1, 2, 4, 6, 8, 12])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_small_torus_agreement(self, size, seed):
        dims = TorusDims(3, 3, 4)
        t = random_torus(dims, 0.3, seed)
        reference = as_node_sets(NaiveFinder().find_free(t, size), dims)
        for finder in FAST_FINDERS:
            assert as_node_sets(finder.find_free(t, size), dims) == reference, finder.name

    @pytest.mark.parametrize("size", [1, 4, 8, 16, 32, 64, 128])
    def test_bgl_torus_agreement(self, size):
        t = random_torus(BGL_SUPERNODE_DIMS, 0.4, 7)
        reference = as_node_sets(NaiveFinder().find_free(t, size), BGL_SUPERNODE_DIMS)
        for finder in FAST_FINDERS:
            found = as_node_sets(finder.find_free(t, size), BGL_SUPERNODE_DIMS)
            assert found == reference, finder.name

    @given(
        st.integers(0, 10_000),
        st.floats(0.0, 1.0),
        st.sampled_from([1, 2, 3, 4, 6, 8, 9, 12]),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_agreement(self, seed, fill, size):
        dims = TorusDims(3, 3, 3)
        t = random_torus(dims, fill, seed)
        reference = as_node_sets(NaiveFinder().find_free(t, size), dims)
        for finder in FAST_FINDERS:
            assert as_node_sets(finder.find_free(t, size), dims) == reference, finder.name


class TestFinderBehaviour:
    @pytest.mark.parametrize("finder", ALL_FINDERS, ids=lambda f: f.name + str(getattr(f, "vectorized", "")))
    def test_empty_torus_counts(self, finder):
        t = Torus(BGL_SUPERNODE_DIMS)
        # size 1: every node is a free partition
        assert len(finder.find_free_unique(t, 1)) == 128
        # full machine: exactly one node set
        assert len(finder.find_free_unique(t, 128)) == 1

    @pytest.mark.parametrize("finder", ALL_FINDERS, ids=lambda f: f.name + str(getattr(f, "vectorized", "")))
    def test_full_torus_finds_nothing(self, finder):
        t = Torus(BGL_SUPERNODE_DIMS)
        t.allocate(0, Partition((0, 0, 0), (4, 4, 8)))
        for size in (1, 2, 8):
            assert finder.find_free(t, size) == []

    @pytest.mark.parametrize("finder", ALL_FINDERS, ids=lambda f: f.name + str(getattr(f, "vectorized", "")))
    def test_unschedulable_size_empty(self, finder):
        t = Torus(BGL_SUPERNODE_DIMS)
        assert finder.find_free(t, 11) == []

    @pytest.mark.parametrize("finder", ALL_FINDERS, ids=lambda f: f.name + str(getattr(f, "vectorized", "")))
    def test_size_validation(self, finder):
        t = Torus(BGL_SUPERNODE_DIMS)
        with pytest.raises(GeometryError):
            finder.find_free(t, 0)
        with pytest.raises(GeometryError):
            finder.find_free(t, 129)

    def test_results_actually_free_and_right_size(self):
        t = random_torus(BGL_SUPERNODE_DIMS, 0.5, 3)
        for finder in ALL_FINDERS:
            for p in finder.find_free(t, 8):
                assert p.size == 8
                assert t.is_free(p), finder.name

    def test_wrapping_partition_found(self):
        # Occupy everything except a 2x1x1 block wrapping the x axis.
        t = Torus(TorusDims(4, 1, 1))
        t.grid[1] = 7
        t.grid[2] = 7
        for finder in ALL_FINDERS:
            sets = as_node_sets(finder.find_free(t, 2), t.dims)
            assert frozenset({(3, 0, 0), (0, 0, 0)}) in sets, finder.name

    def test_exists_free(self):
        t = Torus(BGL_SUPERNODE_DIMS)
        assert NaiveFinder().exists_free(t, 128)
        t.allocate(0, Partition((0, 0, 0), (1, 1, 1)))
        assert not NaiveFinder().exists_free(t, 128)
        assert NaiveFinder().exists_free(t, 64)


class TestRegistry:
    def test_available(self):
        names = available_finders()
        assert {"naive", "pop", "fast", "fast-scan"} <= set(names)

    def test_get_each(self):
        for name in available_finders():
            finder = get_finder(name)
            t = Torus(TorusDims(2, 2, 2))
            assert len(finder.find_free_unique(t, 8)) == 1

    def test_unknown_name(self):
        with pytest.raises(AllocationError, match="unknown finder"):
            get_finder("bogus")
