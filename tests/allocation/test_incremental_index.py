"""Differential harness: incremental index vs from-scratch rebuild.

:class:`~repro.allocation.incremental.IncrementalPlacementIndex` patches
its window-sum tensor and busy integral in place as the torus mutates;
the from-scratch :class:`~repro.allocation.mfp.PlacementIndex` is the
retained oracle (DESIGN.md §5.12).  The property tests here drive random
alloc/free sequences — including wraparound boxes and full-axis-span
shapes whose aliased bases must canonicalise — through the public torus
API so the mutation journal records them, replay the journal onto one
long-lived incremental index, and assert **bitwise** field-for-field
equality with a fresh rebuild after every mutation.

The poisoning tests prove the fallback contract: an opaque whole-grid
mutation (or a journal gap longer than the repair budget) makes
:class:`~repro.allocation.mfp.IndexCache` abandon the patch path and
rebuild, with the ``index.incremental.*`` counters recording which path
ran.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.incremental import IncrementalPlacementIndex
from repro.allocation.mfp import IndexCache, PlacementIndex
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition
from repro.geometry.shapes import all_shapes
from repro.geometry.torus import Torus
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.testing import random_partition, random_torus

dims_strategy = st.builds(
    TorusDims,
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=5),
)


def mutate(torus: Torus, rng: np.random.Generator, live: dict, next_id: int) -> int:
    """One random mutation through the public torus API.

    Going through ``allocate``/``release`` (never direct grid writes) is
    what makes the journal record the step.  Roughly 40% of steps free a
    live job; the rest try a random allocation, with a bias towards
    full-axis-span shapes so the aliased-base canonicalisation path gets
    exercised (wraparound bases come free from ``random_partition``).
    """
    if live and rng.random() < 0.4:
        job = sorted(live)[int(rng.integers(len(live)))]
        torus.release(job)
        del live[job]
        return next_id
    part = random_partition(torus.dims, rng)
    if rng.random() < 0.3:
        axis = int(rng.integers(3))
        shape = list(part.shape)
        shape[axis] = torus.dims.as_tuple()[axis]
        part = Partition(part.base, (shape[0], shape[1], shape[2]))
    if torus.is_free(part):
        torus.allocate(next_id, part)
        live[next_id] = part
        return next_id + 1
    return next_id


def assert_matches_rebuild(inc: IncrementalPlacementIndex, torus: Torus) -> None:
    """Field-for-field bitwise equality with a fresh oracle rebuild."""
    fresh = PlacementIndex(torus)
    assert inc.torus_version == torus.version
    np.testing.assert_array_equal(inc._busy_integral, fresh._busy_integral)
    shapes = all_shapes(torus.dims)
    sizes = set()
    for shape in shapes:
        sizes.add(shape[0] * shape[1] * shape[2])
        assert inc.count_placements(shape) == fresh.count_placements(shape)
        np.testing.assert_array_equal(
            inc._placements(shape), fresh._placements(shape)
        )
    assert inc.mfp_size() == fresh.mfp_size()
    assert inc.mfp_partition() == fresh.mfp_partition()
    for size in sorted(sizes):
        assert inc.has_candidate(size) == fresh.has_candidate(size)
    # Candidate enumeration (shape order, row-major bases, full-span
    # canonicalisation) for a few representative sizes.
    for size in {1, 2, min(sizes | {1}), max(sizes), inc.mfp_size()} - {0}:
        got, ref = inc.candidate_batch(size), fresh.candidate_batch(size)
        assert got.shapes == ref.shapes
        assert got.starts == ref.starts
        np.testing.assert_array_equal(got.bases, ref.bases)


class TestIncrementalTracksMutations:
    @settings(max_examples=50, deadline=None)
    @given(
        dims=dims_strategy,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        steps=st.integers(min_value=1, max_value=8),
    )
    def test_equal_to_rebuild_after_every_mutation(self, dims, seed, steps):
        rng = np.random.default_rng(seed)
        torus = Torus(dims)
        inc = IncrementalPlacementIndex(torus)
        live: dict[int, Partition] = {}
        next_id = 0
        for _ in range(steps):
            next_id = mutate(torus, rng, live, next_id)
            entries = torus.journal_since(inc.torus_version)
            assert entries is not None
            inc.apply(entries, torus.version)
            assert_matches_rebuild(inc, torus)

    @settings(max_examples=30, deadline=None)
    @given(
        dims=dims_strategy,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rounds=st.integers(min_value=1, max_value=3),
        burst=st.integers(min_value=2, max_value=5),
    )
    def test_multi_entry_replay(self, dims, seed, rounds, burst):
        """One ``apply`` spanning several journal entries is still exact."""
        rng = np.random.default_rng(seed)
        torus = Torus(dims)
        inc = IncrementalPlacementIndex(torus)
        live: dict[int, Partition] = {}
        next_id = 0
        for _ in range(rounds):
            for _ in range(burst):
                next_id = mutate(torus, rng, live, next_id)
            entries = torus.journal_since(inc.torus_version)
            assert entries is not None
            inc.apply(entries, torus.version)
            assert_matches_rebuild(inc, torus)

    @settings(max_examples=30, deadline=None)
    @given(
        dims=dims_strategy,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_scoring_kernels_match_oracle(self, dims, seed):
        """``_batch_excluding`` (bitmask path) vs the inherited probe
        path vs the scalar early-exit walk, on a patched index."""
        rng = np.random.default_rng(seed)
        torus = Torus(dims)
        inc = IncrementalPlacementIndex(torus)
        live: dict[int, Partition] = {}
        next_id = 0
        for _ in range(4):
            next_id = mutate(torus, rng, live, next_id)
        entries = torus.journal_since(inc.torus_version)
        assert entries is not None
        inc.apply(entries, torus.version)
        fresh = PlacementIndex(torus)
        size = inc.mfp_size()
        if size == 0:
            return
        batch = inc.candidate_batch(size)
        if len(batch) == 0:
            return
        got = inc._batch_excluding(batch.bases, batch.shape_rows())
        ref = PlacementIndex._batch_excluding(
            fresh, batch.bases, batch.shape_rows()
        )
        np.testing.assert_array_equal(got, ref)
        scalar = [
            fresh._mfp_excluding_at(
                (int(b[0]), int(b[1]), int(b[2])), batch.shape_of(i)
            )
            for i, b in enumerate(batch.bases[:8])
        ]
        np.testing.assert_array_equal(got[:8], scalar)
        _, inc_losses = inc.batch_mfp_losses(size)
        _, ref_losses = fresh.batch_mfp_losses(size)
        np.testing.assert_array_equal(inc_losses, ref_losses)


class TestFullSpanAliasing:
    def test_full_span_slab_canonicalises_like_oracle(self):
        """A wrapped full-axis-span slab: every aliased base along the
        spanned axis names the same node set, and the batch keeps
        exactly the canonical (axis = 0) representative."""
        dims = TorusDims(4, 3, 2)
        torus = Torus(dims)
        # Spans x fully, wraps on y (base 2 + extent 2 > 3).
        torus.allocate(0, Partition((3, 2, 0), (4, 2, 1)))
        inc = IncrementalPlacementIndex(torus)
        assert_matches_rebuild(inc, torus)
        batch = inc.candidate_batch(dims.x)  # x-spanning shapes exist
        for shape, _, bases in batch.groups():
            for axis in range(3):
                if shape[axis] == dims.as_tuple()[axis] and bases.size:
                    assert (bases[:, axis] == 0).all()

    def test_whole_machine_shape(self):
        dims = TorusDims(2, 2, 3)
        torus = Torus(dims)
        inc = IncrementalPlacementIndex(torus)
        assert_matches_rebuild(inc, torus)
        batch = inc.candidate_batch(dims.volume)
        assert len(batch) == 1
        np.testing.assert_array_equal(batch.bases, [[0, 0, 0]])
        torus.allocate(0, Partition((1, 1, 2), (1, 1, 1)))
        inc.apply(torus.journal_since(inc.torus_version), torus.version)
        assert_matches_rebuild(inc, torus)
        assert len(inc.candidate_batch(dims.volume)) == 0


class TestZallFallback:
    def test_fallback_path_matches_fused_table(self):
        """The per-axis zmask fallback (taken when the fused ``zall``
        table is not built for the dims) is bitwise equal to it."""
        dims = TorusDims(4, 4, 5)
        torus = random_torus(dims, np.random.default_rng(7), attempts=10)
        inc = IncrementalPlacementIndex(torus)
        size = inc.mfp_size()
        assert size > 0
        batch = inc.candidate_batch(size)
        assert len(batch) > 0
        t = inc._tables
        assert t.zall is not None
        fast = inc._batch_excluding(batch.bases, batch.shape_rows())
        saved = (t.zall, t.keyw)
        t.zall = None
        t.keyw = None
        try:
            slow = inc._batch_excluding(batch.bases, batch.shape_rows())
        finally:
            t.zall, t.keyw = saved
        np.testing.assert_array_equal(fast, slow)


class TestStaleVersionPoisoning:
    def test_opaque_mutation_forces_fallback(self):
        """snapshot/restore logs an opaque entry: the journal refuses to
        replay across it, and IndexCache rebuilds (counter proves it)."""
        torus = Torus(TorusDims(3, 3, 4))
        registry = MetricsRegistry()
        with obs_metrics.activate(registry):
            cache = IndexCache(torus, incremental=True)
            first = cache.get()
            assert isinstance(first, IncrementalPlacementIndex)
            torus.allocate(0, Partition((2, 2, 3), (2, 2, 2)))  # wraps
            repaired = cache.get()
            assert repaired is first  # patched in place
            assert registry.counters["index.incremental.repair"].value == 1
            snap = torus.snapshot()
            torus.allocate(1, Partition((1, 1, 1), (1, 1, 1)))
            torus.restore(snap)
            assert torus.journal_since(repaired.torus_version) is None
            rebuilt = cache.get()
            assert rebuilt is not repaired
            assert registry.counters["index.incremental.fallback"].value == 1
        assert_matches_rebuild(rebuilt, torus)

    def test_clear_is_opaque(self):
        torus = Torus(TorusDims(2, 2, 2))
        cache = IndexCache(torus, incremental=True)
        index = cache.get()
        torus.clear()
        assert torus.journal_since(index.torus_version) is None
        rebuilt = cache.get()
        assert rebuilt is not index
        assert_matches_rebuild(rebuilt, torus)

    def test_long_gap_exceeding_repair_budget_falls_back(self):
        """More journal entries than the repair budget: IndexCache must
        prefer a rebuild over a long replay."""
        torus = Torus(TorusDims(3, 3, 4))
        registry = MetricsRegistry()
        with obs_metrics.activate(registry):
            cache = IndexCache(torus, incremental=True)
            index = cache.get()
            for job in range(10):  # > _MAX_PATCH_ENTRIES
                torus.allocate(
                    job, Partition((job % 3, (job // 3) % 3, job // 9), (1, 1, 1))
                )
            rebuilt = cache.get()
            assert rebuilt is not index
            assert registry.counters["index.incremental.fallback"].value == 1
            assert "index.incremental.repair" not in registry.counters
        assert_matches_rebuild(rebuilt, torus)

    def test_future_version_returns_none(self):
        torus = Torus(TorusDims(2, 2, 2))
        assert torus.journal_since(torus.version + 1) is None

    def test_hit_counter_on_unchanged_torus(self):
        torus = Torus(TorusDims(2, 2, 2))
        registry = MetricsRegistry()
        with obs_metrics.activate(registry):
            cache = IndexCache(torus, incremental=True)
            index = cache.get()
            assert cache.get() is index
            assert registry.counters["index.incremental.hit"].value == 1


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
