"""Unit tests for the POP finder's run-length projection."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.allocation.pop import z_free_runs
from repro.geometry.coords import TorusDims


def brute_run(free, dims, x, y, z):
    run = 0
    for k in range(dims.z):
        if free[x, y, (z + k) % dims.z]:
            run += 1
        else:
            break
    return run


class TestZFreeRuns:
    def test_fully_free_column_reports_full_period(self):
        dims = TorusDims(2, 2, 6)
        free = np.ones(dims.as_tuple(), dtype=bool)
        runs = z_free_runs(free, dims)
        assert (runs == 6).all()

    def test_fully_busy_column(self):
        dims = TorusDims(1, 1, 4)
        free = np.zeros(dims.as_tuple(), dtype=bool)
        assert (z_free_runs(free, dims) == 0).all()

    def test_wraparound_run(self):
        dims = TorusDims(1, 1, 5)
        free = np.ones(dims.as_tuple(), dtype=bool)
        free[0, 0, 2] = False
        runs = z_free_runs(free, dims)
        # Starting at z=3: 3,4,0,1 free -> run 4 (wraps past the period
        # boundary, stops at blocked z=2).
        assert runs[0, 0, 3] == 4
        assert runs[0, 0, 2] == 0
        assert runs[0, 0, 0] == 2

    @given(st.integers(0, 2**31), st.integers(1, 4), st.integers(1, 4), st.integers(1, 8))
    @settings(max_examples=50)
    def test_matches_bruteforce(self, seed, X, Y, Z):
        dims = TorusDims(X, Y, Z)
        rng = np.random.default_rng(seed)
        free = rng.random(dims.as_tuple()) < 0.6
        runs = z_free_runs(free, dims)
        for x in range(X):
            for y in range(Y):
                for z in range(Z):
                    expected = brute_run(free, dims, x, y, z)
                    expected = min(expected, Z)
                    assert runs[x, y, z] == expected
