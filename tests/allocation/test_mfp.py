"""Tests for MFP computation and the incremental PlacementIndex."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus
from repro.allocation import FastFinder, PlacementIndex, mfp_partition, mfp_size
from repro.geometry.shapes import all_shapes

D = BGL_SUPERNODE_DIMS


def random_torus(dims: TorusDims, fill: float, seed: int) -> Torus:
    t = Torus(dims)
    rng = np.random.default_rng(seed)
    t.grid[rng.random(dims.as_tuple()) < fill] = 999
    return t


def brute_mfp(torus: Torus) -> int:
    """Reference MFP: largest shape volume with any free placement."""
    finder = FastFinder()
    best = 0
    for shape in all_shapes(torus.dims):
        vol = shape[0] * shape[1] * shape[2]
        if vol <= best:
            continue
        if finder.find_free(torus, vol):
            best = max(best, vol)
    return best


class TestMfpSize:
    def test_empty_machine(self):
        assert mfp_size(Torus(D)) == 128

    def test_full_machine(self):
        t = Torus(D)
        t.allocate(0, Partition((0, 0, 0), (4, 4, 8)))
        assert mfp_size(t) == 0
        assert mfp_partition(t) is None

    def test_half_machine(self):
        t = Torus(D)
        t.allocate(0, Partition((0, 0, 0), (4, 4, 4)))
        assert mfp_size(t) == 64

    def test_single_node_occupied(self):
        t = Torus(D)
        t.allocate(0, Partition((0, 0, 0), (1, 1, 1)))
        # Wrap-around lets a 4x4x7 box (based at z=1) avoid the one
        # occupied node.
        assert mfp_size(t) == 112

    def test_witness_partition_is_free_and_maximal(self):
        t = random_torus(D, 0.3, 11)
        p = mfp_partition(t)
        assert p is not None
        assert t.is_free(p)
        assert p.size == mfp_size(t)

    @given(st.integers(0, 10_000), st.floats(0.0, 0.9))
    @settings(max_examples=30, deadline=None)
    def test_matches_bruteforce(self, seed, fill):
        t = random_torus(TorusDims(3, 3, 4), fill, seed)
        assert mfp_size(t) == brute_mfp(t)


class TestPlacementIndex:
    def test_candidates_match_finder(self):
        t = random_torus(D, 0.4, 5)
        index = PlacementIndex(t)
        finder = FastFinder()
        for size in (1, 4, 8, 16, 32):
            expected = {p.node_set(D) for p in finder.find_free_unique(t, size)}
            got = {p.node_set(D) for p in index.candidates(size)}
            assert got == expected

    def test_candidates_deduplicated(self):
        t = Torus(D)
        index = PlacementIndex(t)
        parts = index.candidates(128)
        assert len(parts) == 1

    def test_has_candidate(self):
        t = Torus(D)
        t.allocate(0, Partition((0, 0, 0), (1, 1, 1)))
        index = PlacementIndex(t)
        assert index.has_candidate(96)
        assert not index.has_candidate(128)
        assert not index.has_candidate(11)

    def test_count_placements_empty_machine(self):
        index = PlacementIndex(Torus(D))
        # On an empty torus every base hosts every shape.
        assert index.count_placements((1, 1, 1)) == 128
        assert index.count_placements((4, 4, 8)) == 128

    def test_mfp_excluding_matches_real_allocation(self):
        t = random_torus(D, 0.3, 21)
        index = PlacementIndex(t)
        for p in index.candidates(8)[:20]:
            predicted = index.mfp_excluding(p)
            t2 = Torus(D)
            t2.grid[...] = t.grid
            t2.grid[np.ix_(*p.axis_ranges(D))] = 998
            assert predicted == mfp_size(t2), p

    @given(st.integers(0, 10_000), st.floats(0.0, 0.8), st.sampled_from([1, 2, 4, 6, 8]))
    @settings(max_examples=30, deadline=None)
    def test_mfp_excluding_property(self, seed, fill, size):
        dims = TorusDims(3, 3, 4)
        t = random_torus(dims, fill, seed)
        index = PlacementIndex(t)
        cands = index.candidates(size)
        if not cands:
            return
        p = cands[seed % len(cands)]
        t2 = Torus(dims)
        t2.grid[...] = t.grid
        t2.grid[np.ix_(*p.axis_ranges(dims))] = 998
        assert index.mfp_excluding(p) == mfp_size(t2)

    def test_mfp_loss_nonnegative(self):
        t = random_torus(D, 0.3, 33)
        index = PlacementIndex(t)
        for p in index.candidates(4)[:30]:
            assert 0 <= index.mfp_loss(p) <= index.mfp_size()
