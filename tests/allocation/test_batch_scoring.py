"""Property-based cross-validation of the batch scoring kernel.

The batch path (:meth:`PlacementIndex.batch_mfp_losses` and friends)
must be *bitwise* interchangeable with the retained scalar oracle
(:meth:`PlacementIndex.scored_candidates` / :meth:`mfp_excluding`): same
candidates, same enumeration order, same losses.  The headline sweep
pins ``max_examples=100`` regardless of the active hypothesis profile,
so every run (including CI) cross-validates at least 100 generated
machine states.

Enumeration is additionally checked against an independent
``argwhere``-based reference that rebuilds the candidate list straight
from the busy integral image — :meth:`candidates` materialises from
:meth:`candidate_batch` in production, so only an outside reference can
catch both drifting together.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.allocation.mfp import IndexCache, PlacementIndex
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition
from repro.geometry.shapes import schedulable_sizes, shapes_for_size
from repro.geometry.torus import (
    FREE,
    Torus,
    window_sums_from_integral,
    wrap_pad_integral,
)
from repro.testing import random_torus

dims_strategy = st.builds(
    TorusDims, st.integers(1, 4), st.integers(1, 4), st.integers(1, 5)
)


@st.composite
def torus_states(draw) -> Torus:
    dims = draw(dims_strategy)
    seed = draw(st.integers(0, 2**32 - 1))
    attempts = draw(st.integers(0, 14))
    return random_torus(dims, np.random.default_rng(seed), attempts=attempts)


def reference_candidates(torus: Torus, size: int) -> list[Partition]:
    """Independent re-derivation of the candidate enumeration.

    Straight from the definition: for each shape (in
    :func:`shapes_for_size` order) scan all-free placement bases in
    row-major ``argwhere`` order, pin fully-spanned axes to base 0 and
    keep each (base, shape) pair's first occurrence.
    """
    dims = torus.dims
    busy_integral = wrap_pad_integral((torus.grid != FREE).astype(np.int64))
    out: list[Partition] = []
    seen: set[tuple] = set()
    for shape in shapes_for_size(size, dims):
        sums = window_sums_from_integral(busy_integral, dims.as_tuple(), shape)
        for bx, by, bz in np.argwhere(sums == 0):
            base = (
                0 if shape[0] == dims.x else int(bx),
                0 if shape[1] == dims.y else int(by),
                0 if shape[2] == dims.z else int(bz),
            )
            key = (base, shape)
            if key not in seen:
                seen.add(key)
                out.append(Partition(base, shape))
    return out


class TestBatchVsScalar:
    @settings(max_examples=100, deadline=None)
    @given(torus_states(), st.data())
    def test_losses_bitwise_equal(self, torus, data):
        """≥100 random states: batch losses == scalar oracle losses,
        candidate for candidate, in enumeration order."""
        size = data.draw(st.sampled_from(schedulable_sizes(torus.dims)))
        batch_index = PlacementIndex(torus)
        scalar_index = PlacementIndex(torus)
        batch, losses = batch_index.batch_mfp_losses(size)
        scored = scalar_index.scored_candidates(size)
        assert len(batch) == len(scored)
        assert batch.partitions() == [p for p, _ in scored]
        assert losses.dtype == np.int64
        assert losses.tolist() == [loss for _, loss in scored]

    @settings(max_examples=50, deadline=None)
    @given(torus_states(), st.data())
    def test_excluding_matches_scalar_on_arbitrary_bases(self, torus, data):
        """``batch_mfp_excluding`` accepts *any* bases (not only free
        candidates) and must agree with per-partition ``mfp_excluding``."""
        dims = torus.dims
        shape = data.draw(
            st.tuples(
                st.integers(1, dims.x),
                st.integers(1, dims.y),
                st.integers(1, dims.z),
            )
        )
        n = data.draw(st.integers(1, 12))
        bases = np.stack(
            [
                data.draw(
                    st.lists(st.integers(0, d - 1), min_size=n, max_size=n)
                )
                for d in dims.as_tuple()
            ],
            axis=1,
        ).astype(np.int64)
        index = PlacementIndex(torus)
        got = index.batch_mfp_excluding(bases, shape)
        want = [
            index.mfp_excluding(
                Partition((int(b[0]), int(b[1]), int(b[2])), shape)
            )
            for b in bases
        ]
        assert got.tolist() == want


class TestEnumeration:
    @settings(max_examples=100, deadline=None)
    @given(torus_states(), st.data())
    def test_matches_independent_reference(self, torus, data):
        """Batch and list enumeration both equal the argwhere reference."""
        size = data.draw(st.sampled_from(schedulable_sizes(torus.dims)))
        index = PlacementIndex(torus)
        want = reference_candidates(torus, size)
        assert index.candidates(size) == want
        assert index.candidate_batch(size).partitions() == want

    @settings(max_examples=50, deadline=None)
    @given(torus_states(), st.data())
    def test_full_span_shapes_canonical_and_unique(self, torus, data):
        """Where a shape spans a full axis, bases on that axis are pinned
        to 0 and each *node set* appears exactly once — the aliasing case
        canonicalisation exists for."""
        dims = torus.dims
        size = data.draw(st.sampled_from(schedulable_sizes(torus.dims)))
        batch = PlacementIndex(torus).candidate_batch(size)
        for shape, _, bases in batch.groups():
            for axis in range(3):
                if shape[axis] == dims.as_tuple()[axis]:
                    assert not bases[:, axis].any()
            node_sets = [
                frozenset(
                    (x % dims.x, y % dims.y, z % dims.z)
                    for x in range(b[0], b[0] + shape[0])
                    for y in range(b[1], b[1] + shape[1])
                    for z in range(b[2], b[2] + shape[2])
                )
                for b in bases.tolist()
            ]
            assert len(node_sets) == len(set(node_sets))

    @settings(max_examples=50, deadline=None)
    @given(torus_states(), st.data())
    def test_batch_row_accessors(self, torus, data):
        """``shape_of``/``partition`` row addressing agrees with the
        group layout for every row."""
        size = data.draw(st.sampled_from(schedulable_sizes(torus.dims)))
        batch = PlacementIndex(torus).candidate_batch(size)
        parts = batch.partitions()
        assert len(batch) == len(parts)
        for i, part in enumerate(parts):
            assert batch.shape_of(i) == part.shape
            assert batch.partition(i) == part


class TestIndexCache:
    def test_reuses_until_version_bump(self):
        torus = Torus(TorusDims(4, 4, 4))
        cache = IndexCache(torus)
        first = cache.get()
        assert cache.get() is first
        torus.allocate(1, Partition((0, 0, 0), (2, 2, 2)))
        second = cache.get()
        assert second is not first
        assert second.torus_version == torus.version
        assert cache.get() is second
        torus.release(1)
        assert cache.get() is not second

    def test_rebuilt_index_answers_for_new_state(self):
        torus = Torus(TorusDims(4, 4, 4))
        cache = IndexCache(torus)
        assert cache.get().mfp_size() == 64
        torus.allocate(1, Partition((0, 0, 0), (4, 4, 2)))
        assert cache.get().mfp_size() == 32
