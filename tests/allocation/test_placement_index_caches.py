"""Cache-consistency tests for PlacementIndex.

The scheduler leans on several layers of per-state memoisation; these
tests pin that the caches never change answers, only cost.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.allocation import PlacementIndex
from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims
from repro.geometry.torus import Torus

D = BGL_SUPERNODE_DIMS


def random_torus(fill: float, seed: int, dims: TorusDims = D) -> Torus:
    t = Torus(dims)
    rng = np.random.default_rng(seed)
    t.grid[rng.random(dims.as_tuple()) < fill] = 999
    return t


class TestCaches:
    def test_candidates_cached_identical(self):
        index = PlacementIndex(random_torus(0.4, 0))
        a = index.candidates(8)
        b = index.candidates(8)
        assert a is b

    def test_scored_candidates_match_direct_scoring(self):
        index = PlacementIndex(random_torus(0.4, 1))
        for partition, loss in index.scored_candidates(8):
            assert loss == index.mfp_loss(partition)

    def test_mfp_size_stable_across_queries(self):
        index = PlacementIndex(random_torus(0.5, 2))
        first = index.mfp_size()
        index.candidates(4)
        index.scored_candidates(2)
        assert index.mfp_size() == first

    def test_index_isolated_from_torus_mutation(self):
        """An index snapshot answers for the state it was built on."""
        torus = random_torus(0.3, 3)
        index = PlacementIndex(torus)
        before = index.mfp_size()
        # Mutate the torus afterwards; the index must not change.
        from repro.geometry.partition import Partition

        free = np.argwhere(torus.grid == -1)
        torus.allocate(7, Partition(tuple(int(v) for v in free[0]), (1, 1, 1)))
        assert index.mfp_size() == before
        assert index.torus_version != torus.version

    @given(st.integers(0, 10_000), st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=25, deadline=None)
    def test_has_candidate_agrees_with_candidates(self, seed, size):
        index = PlacementIndex(random_torus(0.6, seed))
        assert index.has_candidate(size) == bool(index.candidates(size))

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_mfp_loss_zero_only_when_mfp_preserved(self, seed):
        index = PlacementIndex(random_torus(0.4, seed))
        for partition in index.candidates(4)[:10]:
            loss = index.mfp_loss(partition)
            assert (loss == 0) == (index.mfp_excluding(partition) == index.mfp_size())
