"""Unit tests for the capacity-accounting oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvariantViolationError
from repro.metrics.capacity import CapacityTracker
from repro.testing import CapacityOracle

N = 128


class TestRecompute:
    def test_no_samples(self):
        assert CapacityOracle(N).surplus_integral(10.0) == 0.0

    def test_single_segment(self):
        oracle = CapacityOracle(N)
        oracle.record(0.0, 100, 20)
        assert oracle.surplus_integral(10.0) == pytest.approx(800.0)

    def test_queued_exceeding_free_clamps_to_zero(self):
        oracle = CapacityOracle(N)
        oracle.record(0.0, 10, 50)
        assert oracle.surplus_integral(5.0) == 0.0

    def test_step_function(self):
        oracle = CapacityOracle(N)
        oracle.record(0.0, 128, 0)    # surplus 128 for 2s
        oracle.record(2.0, 64, 32)    # surplus 32 for 3s
        oracle.record(5.0, 0, 64)     # surplus 0 for 5s
        assert oracle.surplus_integral(10.0) == pytest.approx(128 * 2 + 32 * 3)

    def test_rejects_bad_free(self):
        oracle = CapacityOracle(N)
        with pytest.raises(InvariantViolationError):
            oracle.record(0.0, N + 1, 0)
        with pytest.raises(InvariantViolationError):
            oracle.record(0.0, -1, 0)

    def test_rejects_negative_queue(self):
        with pytest.raises(InvariantViolationError):
            CapacityOracle(N).record(0.0, 5, -2)

    def test_rejects_time_regression(self):
        oracle = CapacityOracle(N)
        oracle.record(5.0, 10, 0)
        with pytest.raises(InvariantViolationError, match="backwards"):
            oracle.record(4.0, 10, 0)

    def test_rejects_end_before_last_sample(self):
        oracle = CapacityOracle(N)
        oracle.record(5.0, 10, 0)
        with pytest.raises(InvariantViolationError, match="precedes"):
            oracle.surplus_integral(4.0)


class TestAgainstTracker:
    """The tracker's running sum and the oracle recomputation must agree
    on any shared sample stream — this is exactly the cross-check the
    simulator harness performs at end of run."""

    samples = st.lists(
        st.tuples(
            st.floats(0, 1e5, allow_nan=False, allow_infinity=False),
            st.integers(0, N),
            st.integers(0, 4 * N),
        ),
        min_size=1,
        max_size=40,
    )

    @given(samples, st.floats(0, 1e4, allow_nan=False, allow_infinity=False))
    def test_agreement(self, raw, tail):
        ordered = sorted(raw, key=lambda s: s[0])
        tracker = CapacityTracker(N)
        oracle = CapacityOracle(N)
        for t, free, queued in ordered:
            tracker.record(t, free, queued)
            oracle.record(t, free, queued)
        end = ordered[-1][0] + tail
        tracker.close(end)
        assert oracle.verify(end, tracker.surplus_integral()) == pytest.approx(
            tracker.surplus_integral()
        )

    def test_verify_raises_on_disagreement(self):
        oracle = CapacityOracle(N)
        oracle.record(0.0, 100, 0)
        with pytest.raises(InvariantViolationError, match="integral mismatch"):
            oracle.verify(10.0, 999.0)  # true integral is 1000

    def test_verify_tolerates_float_noise(self):
        oracle = CapacityOracle(N)
        oracle.record(0.0, 100, 0)
        true = oracle.surplus_integral(10.0)
        oracle.verify(10.0, true * (1 + 1e-12))
