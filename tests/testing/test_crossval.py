"""Unit tests for the finder cross-validator (mechanics + negatives).

The heavy ≥100-state property sweep lives in
``tests/test_property_finders.py``; this module checks the validator
itself — that it accepts the shipped finders and *rejects* finders that
lie, miss results, duplicate or reorder.
"""

from __future__ import annotations

import pytest

from repro.allocation.base import PartitionFinder
from repro.allocation.fast import FastFinder
from repro.allocation.naive import NaiveFinder
from repro.errors import CrossValidationError
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus
from repro.testing import CrossValidator, default_finders, random_torus

DIMS = TorusDims(3, 3, 4)


class LyingFinder(PartitionFinder):
    """Wraps a real finder and tampers with its output."""

    name = "lying"

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self._inner = FastFinder()

    def find_free(self, torus, size):
        out = self._inner.find_free(torus, size)
        if self.mode == "drop" and out:
            return out[:-1]
        if self.mode == "extra":
            # Claim a partition that overlaps whatever is allocated.
            return out + [out[0]] if out else [Partition((0, 0, 0), (1, 1, 1))]
        if self.mode == "reorder" and len(out) > 1:
            return out[::-1]
        return out


class TestValidatorMechanics:
    def test_default_finder_set(self):
        validator = CrossValidator()
        assert validator.labels == ["naive", "pop", "fast-vectorized", "fast-scan"]

    def test_needs_two_finders(self):
        with pytest.raises(CrossValidationError):
            CrossValidator([NaiveFinder()])

    def test_agreement_on_empty_machine(self):
        agreed = CrossValidator().compare(Torus(DIMS), 4)
        assert agreed  # plenty of free partitions of size 4
        for part in agreed:
            assert part.size == 4

    def test_agreement_on_full_machine(self):
        torus = Torus(DIMS)
        torus.allocate(0, Partition((0, 0, 0), (3, 3, 4)))
        assert CrossValidator().compare(torus, 4) == frozenset()

    def test_compare_all_sizes_counts(self):
        validator = CrossValidator()
        result = validator.compare_all_sizes(Torus(DIMS))
        assert validator.comparisons_run == len(result)
        assert set(result) == {1, 2, 3, 4, 6, 8, 9, 12, 16, 18, 24, 27, 36}

    def test_canonical_sets_keys(self):
        sets = CrossValidator().canonical_sets(Torus(DIMS), 2)
        assert set(sets) == {"naive", "pop", "fast-vectorized", "fast-scan"}
        assert len(set(map(frozenset, sets.values()))) == 1


class TestValidatorCatchesLies:
    def test_dropped_partition_detected(self):
        validator = CrossValidator([NaiveFinder(), LyingFinder("drop")])
        with pytest.raises(CrossValidationError, match="disagreement"):
            validator.compare(Torus(DIMS), 4)

    def test_occupied_partition_detected(self):
        torus = Torus(DIMS)
        torus.allocate(0, Partition((0, 0, 0), (3, 3, 4)))
        validator = CrossValidator([NaiveFinder(), LyingFinder("extra")])
        with pytest.raises(CrossValidationError, match="not actually free"):
            validator.compare(torus, 1)

    def test_reordered_output_detected(self):
        validator = CrossValidator([NaiveFinder(), LyingFinder("reorder")])
        with pytest.raises(CrossValidationError, match="order"):
            validator.compare(Torus(DIMS), 2)

    def test_mismatch_names_offending_finder(self):
        validator = CrossValidator([NaiveFinder(), LyingFinder("drop")])
        with pytest.raises(CrossValidationError, match="lying"):
            validator.compare(Torus(DIMS), 4)


class TestFragmentedStates:
    def test_heavily_fragmented_machine(self):
        torus = random_torus(TorusDims(4, 4, 8), 7, attempts=30)
        assert torus.n_jobs > 0
        CrossValidator().compare_all_sizes(torus)

    def test_single_free_node(self):
        torus = Torus(DIMS)
        torus.allocate(0, Partition((0, 0, 0), (3, 3, 3)))
        torus.allocate(1, Partition((0, 0, 3), (3, 2, 1)))
        torus.allocate(2, Partition((0, 2, 3), (2, 1, 1)))
        assert torus.free_count == 1
        agreed = CrossValidator().compare(torus, 1)
        assert len(agreed) == 1
