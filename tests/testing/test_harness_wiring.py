"""Integration tests: the oracle harness wired into the simulator.

Acceptance criteria exercised here:

* enabling ``check_invariants`` on the seed quickstart scenario runs
  clean, with every oracle demonstrably exercised;
* a deliberately corrupted occupancy grid raises a checker error from
  inside the run (negative test via a sabotaging policy).
"""

from __future__ import annotations

import pytest

from repro.api import quick_simulate
from repro.core.config import SimulationConfig
from repro.core.policies.krevat import KrevatPolicy
from repro.core.simulator import Simulator
from repro.errors import InvariantViolationError, OracleError
from repro.failures.events import FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.testing import SimulationOracleHarness, assert_raises_oracle
from repro.workloads.job import Job, Workload


def small_workload(n: int = 12) -> Workload:
    jobs = tuple(
        Job(job_id=i, arrival=60.0 * i, size=2 ** (i % 5), runtime=600.0)
        for i in range(n)
    )
    return Workload("wiring", 128, jobs)


class TestInstrumentedRuns:
    def test_quickstart_scenario_runs_clean(self):
        report = quick_simulate(
            site="nasa",
            n_jobs=40,
            n_failures=8,
            policy="balancing",
            confidence=0.5,
            seed=0,
            config=SimulationConfig(check_invariants=True),
        )
        assert report.timing.n_jobs == 40

    def test_oracles_actually_exercised(self):
        sim = Simulator(
            small_workload(),
            FailureLog(128),
            KrevatPolicy(),
            SimulationConfig(check_invariants=True),
        )
        sim.run()
        stats = sim.oracles.stats()
        assert stats["invariant_checks"] > 0
        assert stats["batches_observed"] > 0
        assert stats["capacity_samples"] > stats["batches_observed"] // 2

    def test_flag_off_attaches_nothing(self):
        sim = Simulator(small_workload(), FailureLog(128), KrevatPolicy())
        assert sim.oracles is None
        sim.run()

    def test_instrumented_report_identical(self):
        """The harness is observational: same report with the flag on."""
        kwargs = dict(site="nasa", n_jobs=30, n_failures=5, policy="balancing",
                      confidence=0.3, seed=2)
        plain = quick_simulate(**kwargs)
        checked = quick_simulate(
            **kwargs, config=SimulationConfig(check_invariants=True)
        )
        assert plain.records == checked.records
        assert plain.capacity == checked.capacity
        assert plain.timing == checked.timing

    def test_migration_and_failures_under_oracles(self):
        """Compaction + kills, the riskiest mutation paths, stay clean."""
        report = quick_simulate(
            site="sdsc",
            n_jobs=60,
            n_failures=40,
            policy="tiebreak",
            confidence=0.9,
            seed=3,
            config=SimulationConfig(check_invariants=True, migration_cost_s=30.0),
        )
        assert report.counters.failures_total == 40


class CorruptingPolicy(KrevatPolicy):
    """Sabotage: stamps one *occupied* node with a bogus job id mid-run.

    The bogus id is non-FREE, so the uninstrumented engine behaves
    identically (the node already looked busy and the owner's release
    later heals the stamp) — only the oracle harness can tell.
    """

    def __init__(self, after_passes: int) -> None:
        self.after_passes = after_passes
        self._passes = 0
        self._done = False
        self._torus = None

    def begin_pass(self, now: float) -> None:
        self._passes += 1

    def choose_partition(self, index, state, now):
        choice = super().choose_partition(index, state, now)
        if not self._done and self._passes >= self.after_passes:
            flat = self._torus.grid.ravel()
            occupied = (flat >= 0).nonzero()[0]
            if occupied.size:
                flat[occupied[0]] = int(flat[occupied[0]]) + 100_000
                self._done = True
        return choice


class TestNegativeWiring:
    def test_midrun_corruption_raises(self):
        policy = CorruptingPolicy(after_passes=2)
        sim = Simulator(
            small_workload(),
            FailureLog(128),
            policy,
            SimulationConfig(check_invariants=True),
        )
        policy._torus = sim.torus
        with pytest.raises(InvariantViolationError):
            sim.run()

    def test_corruption_unnoticed_without_flag(self):
        """Control: the same sabotage passes silently when oracles are
        off — proof the detection comes from the harness."""
        policy = CorruptingPolicy(after_passes=2)
        sim = Simulator(small_workload(), FailureLog(128), policy)
        policy._torus = sim.torus
        sim.run()  # no oracle, no error

    def test_assert_raises_oracle_helper(self):
        def boom():
            raise InvariantViolationError("x")

        exc = assert_raises_oracle(boom)
        assert isinstance(exc, OracleError)
        with pytest.raises(AssertionError):
            assert_raises_oracle(lambda: None)


class TestHarnessHooks:
    def test_harness_standalone(self):
        harness = SimulationOracleHarness(BGL_SUPERNODE_DIMS.volume)
        harness.record_capacity(0.0, 128, 0)
        harness.record_capacity(10.0, 64, 16)
        harness.finalize(20.0, 128 * 10 + 48 * 10)
        assert harness.stats()["capacity_samples"] == 2

    def test_harness_finalize_mismatch(self):
        harness = SimulationOracleHarness(128)
        harness.record_capacity(0.0, 128, 0)
        with pytest.raises(InvariantViolationError):
            harness.finalize(10.0, 1.0)
