"""Unit tests for the event-stream ordering oracle."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.events import Event, EventKind, EventQueue
from repro.errors import InvariantViolationError
from repro.testing import EventOrderOracle


def ev(time: float, kind: EventKind, seq: int = 0) -> Event:
    return Event(time, kind, seq)


class TestValidStreams:
    def test_single_batch(self):
        oracle = EventOrderOracle()
        oracle.observe_batch([ev(0.0, EventKind.FINISH), ev(0.0, EventKind.ARRIVAL)])
        assert oracle.batches_seen == 1

    def test_monotone_batches(self):
        oracle = EventOrderOracle()
        for t in [0.0, 1.0, 1.0, 2.5]:
            oracle.observe_batch([ev(t, EventKind.ARRIVAL)])
        assert oracle.batches_seen == 4

    def test_full_kind_order(self):
        oracle = EventOrderOracle()
        oracle.observe_batch(
            [
                ev(3.0, EventKind.FINISH),
                ev(3.0, EventKind.FINISH, 1),
                ev(3.0, EventKind.FAILURE, 2),
                ev(3.0, EventKind.ARRIVAL, 3),
            ]
        )

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1e6, allow_nan=False),
                st.sampled_from(list(EventKind)),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_real_queue_output_always_passes(self, pushes):
        """Whatever is pushed, pop_batch output satisfies the oracle."""
        queue = EventQueue()
        for t, kind in pushes:
            queue.push(t, kind, 0)
        oracle = EventOrderOracle()
        while queue:
            oracle.observe_batch(queue.pop_batch())
        assert oracle.batches_seen >= 1


class TestViolations:
    def test_empty_batch(self):
        with pytest.raises(InvariantViolationError, match="empty batch"):
            EventOrderOracle().observe_batch([])

    def test_time_goes_backwards(self):
        oracle = EventOrderOracle()
        oracle.observe_batch([ev(5.0, EventKind.ARRIVAL)])
        with pytest.raises(InvariantViolationError, match="backwards"):
            oracle.observe_batch([ev(4.0, EventKind.ARRIVAL)])

    def test_mixed_timestamps_in_batch(self):
        oracle = EventOrderOracle()
        with pytest.raises(InvariantViolationError, match="mixes timestamps"):
            oracle.observe_batch(
                [ev(1.0, EventKind.FINISH), ev(2.0, EventKind.FINISH, 1)]
            )

    def test_failure_before_finish_rejected(self):
        oracle = EventOrderOracle()
        with pytest.raises(InvariantViolationError, match="kind order"):
            oracle.observe_batch(
                [ev(1.0, EventKind.FAILURE), ev(1.0, EventKind.FINISH, 1)]
            )

    def test_arrival_before_failure_rejected(self):
        oracle = EventOrderOracle()
        with pytest.raises(InvariantViolationError, match="kind order"):
            oracle.observe_batch(
                [ev(1.0, EventKind.ARRIVAL), ev(1.0, EventKind.FAILURE, 1)]
            )

    def test_nan_time_rejected(self):
        with pytest.raises(InvariantViolationError, match="valid time"):
            EventOrderOracle().observe_batch([ev(math.nan, EventKind.ARRIVAL)])

    def test_negative_time_rejected(self):
        with pytest.raises(InvariantViolationError, match="valid time"):
            EventOrderOracle().observe_batch([ev(-1.0, EventKind.ARRIVAL)])
