"""Unit tests for the occupancy-grid invariant oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvariantViolationError
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition
from repro.geometry.torus import FREE, Torus
from repro.testing import InvariantChecker, corrupt_random_node, random_torus

DIMS = TorusDims(4, 4, 8)


class TestCleanStates:
    def test_empty_machine(self):
        checker = InvariantChecker()
        checker.check(Torus(DIMS))
        assert checker.checks_run == 1

    def test_fully_allocated_machine(self):
        torus = Torus(DIMS)
        torus.allocate(0, Partition((0, 0, 0), (4, 4, 8)))
        InvariantChecker().check(torus)

    def test_wrapping_allocation(self):
        torus = Torus(DIMS)
        torus.allocate(3, Partition((3, 3, 7), (2, 2, 2)))
        InvariantChecker().check(torus)

    def test_after_release(self):
        torus = Torus(DIMS)
        torus.allocate(0, Partition((0, 0, 0), (2, 2, 2)))
        torus.allocate(1, Partition((2, 2, 2), (2, 2, 2)))
        torus.release(0)
        InvariantChecker().check(torus)

    @given(st.integers(0, 2**32 - 1))
    def test_random_states_always_clean(self, seed):
        """Any state reachable through allocate/release passes."""
        torus = random_torus(DIMS, seed)
        InvariantChecker().check(torus)

    def test_checks_run_accumulates(self):
        checker = InvariantChecker()
        torus = Torus(DIMS)
        for _ in range(5):
            checker.check(torus)
        assert checker.checks_run == 5


class TestCorruptedStates:
    def test_free_node_stamped_with_bogus_id(self):
        torus = random_torus(DIMS, 0)
        torus.grid[0, 0, 0] = 777 if torus.grid[0, 0, 0] == FREE else FREE
        with pytest.raises(InvariantViolationError):
            InvariantChecker().check(torus)

    def test_occupied_node_stamped_free(self):
        torus = Torus(DIMS)
        torus.allocate(0, Partition((0, 0, 0), (2, 2, 2)))
        torus.grid[1, 1, 1] = FREE
        with pytest.raises(InvariantViolationError, match="free-count|holds"):
            InvariantChecker().check(torus)

    def test_wrong_owner_in_grid(self):
        torus = Torus(DIMS)
        torus.allocate(0, Partition((0, 0, 0), (2, 2, 2)))
        torus.allocate(1, Partition((2, 2, 2), (2, 2, 2)))
        torus.grid[0, 0, 0] = 1  # node belongs to job 0
        with pytest.raises(InvariantViolationError, match="job 0"):
            InvariantChecker().check(torus)

    def test_overlapping_map_entries(self):
        torus = Torus(DIMS)
        torus.allocate(0, Partition((0, 0, 0), (2, 2, 2)))
        # Forge an overlapping entry directly in the map.
        torus._allocations[1] = Partition((1, 1, 1), (2, 2, 2))
        with pytest.raises(InvariantViolationError, match="overlap"):
            InvariantChecker().check(torus)

    def test_negative_job_id_in_map(self):
        torus = Torus(DIMS)
        torus._allocations[-3] = Partition((0, 0, 0), (1, 1, 1))
        with pytest.raises(InvariantViolationError, match="negative job id"):
            InvariantChecker().check(torus)

    def test_partition_not_fitting_machine(self):
        torus = Torus(DIMS)
        torus._allocations[0] = Partition((0, 0, 0), (5, 1, 1))
        with pytest.raises(Exception):
            InvariantChecker().check(torus)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_any_corruption_detected(self, state_seed, corrupt_seed):
        """Acceptance: a deliberately corrupted grid always raises."""
        torus = random_torus(DIMS, state_seed)
        corrupt_random_node(torus, corrupt_seed)
        with pytest.raises(InvariantViolationError):
            InvariantChecker().check(torus)


class TestAgainstTorusBuiltin:
    """The independent oracle and Torus.check_invariants must agree."""

    @given(st.integers(0, 2**32 - 1))
    def test_both_accept_clean(self, seed):
        torus = random_torus(TorusDims(3, 3, 4), seed)
        torus.check_invariants()
        InvariantChecker().check(torus)

    @given(st.integers(0, 2**32 - 1))
    def test_both_reject_corrupt(self, seed):
        torus = random_torus(TorusDims(3, 3, 4), seed)
        corrupt_random_node(torus, seed)
        with pytest.raises(Exception):
            torus.check_invariants()
        with pytest.raises(InvariantViolationError):
            InvariantChecker().check(torus)
