"""Deterministic-replay tests: same seed → identical report.

The whole experiment harness (sweeps, figure regeneration, golden
traces) silently assumes the simulator is a pure function of
``(workload, failure log, policy, config)``.  These tests make the
assumption explicit — including that attaching the oracle harness does
not perturb a single bit of the result.
"""

from __future__ import annotations

import pytest

from repro.api import SimulationSetup, quick_simulate
from repro.core.config import BackfillMode, SimulationConfig
from repro.metrics.serialize import report_to_json

SCENARIOS = [
    dict(site="nasa", n_jobs=30, n_failures=0, policy="krevat", parameter=0.0),
    dict(site="nasa", n_jobs=30, n_failures=10, policy="balancing", parameter=0.5),
    dict(site="sdsc", n_jobs=40, n_failures=20, policy="tiebreak", parameter=0.9),
]


def run(scenario: dict, seed: int = 7, **config_kw) -> str:
    setup = SimulationSetup(
        seed=seed, config=SimulationConfig(**config_kw), **scenario
    )
    return report_to_json(setup.run())


class TestReplay:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s["policy"])
    def test_same_seed_same_report(self, scenario):
        assert run(scenario) == run(scenario)

    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s["policy"])
    def test_oracles_do_not_perturb(self, scenario):
        assert run(scenario) == run(scenario, check_invariants=True)

    def test_strict_invariants_do_not_perturb(self):
        assert run(SCENARIOS[1]) == run(SCENARIOS[1], strict_invariants=True)

    def test_different_seed_different_workload(self):
        a = run(SCENARIOS[1], seed=7)
        b = run(SCENARIOS[1], seed=8)
        assert a != b  # different synthetic draw, different trace

    def test_replay_under_alternative_config(self):
        """Determinism holds off the default config path too."""
        kw = dict(
            backfill=BackfillMode.AGGRESSIVE,
            migration_cost_s=15.0,
            check_invariants=True,
        )
        assert run(SCENARIOS[2], **kw) == run(SCENARIOS[2], **kw)

    def test_quick_simulate_replays(self):
        a = quick_simulate(site="nasa", n_jobs=25, n_failures=5, seed=11)
        b = quick_simulate(site="nasa", n_jobs=25, n_failures=5, seed=11)
        assert report_to_json(a) == report_to_json(b)
