"""Unit and property tests for divisor/shape enumeration."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims
from repro.geometry.shapes import (
    all_shapes,
    divisors,
    iter_shapes,
    num_divisors,
    round_to_schedulable,
    schedulable_sizes,
    shapes_for_size,
)


class TestDivisors:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (1, (1,)),
            (2, (1, 2)),
            (12, (1, 2, 3, 4, 6, 12)),
            (13, (1, 13)),
            (36, (1, 2, 3, 4, 6, 9, 12, 18, 36)),
            (128, (1, 2, 4, 8, 16, 32, 64, 128)),
        ],
    )
    def test_known_values(self, n, expected):
        assert divisors(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            divisors(0)

    @given(st.integers(1, 2000))
    def test_every_divisor_divides(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds[0] == 1 and ds[-1] == n
        assert list(ds) == sorted(set(ds))

    @given(st.integers(1, 500))
    def test_num_divisors_matches_bruteforce(self, n):
        assert num_divisors(n) == sum(1 for d in range(1, n + 1) if n % d == 0)


class TestShapesForSize:
    def test_volume_invariant(self):
        for s in range(1, 129):
            for shape in shapes_for_size(s, BGL_SUPERNODE_DIMS):
                assert shape[0] * shape[1] * shape[2] == s
                assert BGL_SUPERNODE_DIMS.fits_shape(shape)

    def test_full_machine_single_shape(self):
        assert shapes_for_size(128, BGL_SUPERNODE_DIMS) == ((4, 4, 8),)

    def test_unit_shape(self):
        assert shapes_for_size(1, BGL_SUPERNODE_DIMS) == ((1, 1, 1),)

    def test_oriented_shapes_distinct(self):
        shapes = set(shapes_for_size(8, BGL_SUPERNODE_DIMS))
        assert (1, 1, 8) in shapes
        assert (2, 4, 1) in shapes
        assert (4, 2, 1) in shapes

    def test_unschedulable_prime(self):
        # 11 is prime and > 8, so no shape fits the 4x4x8 view.
        assert shapes_for_size(11, BGL_SUPERNODE_DIMS) == ()

    def test_matches_bruteforce_on_bgl(self):
        d = BGL_SUPERNODE_DIMS
        for s in (2, 6, 16, 24, 64, 100):
            brute = {
                (a, b, c)
                for a in range(1, d.x + 1)
                for b in range(1, d.y + 1)
                for c in range(1, d.z + 1)
                if a * b * c == s
            }
            assert set(shapes_for_size(s, d)) == brute

    def test_iter_shapes_agrees(self):
        d = TorusDims(3, 3, 3)
        assert tuple(iter_shapes(8, d)) == shapes_for_size(8, d)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(GeometryError):
            shapes_for_size(0, BGL_SUPERNODE_DIMS)


class TestAllShapes:
    def test_count_on_bgl(self):
        assert len(all_shapes(BGL_SUPERNODE_DIMS)) == 4 * 4 * 8

    def test_sorted_by_decreasing_volume(self):
        vols = [a * b * c for a, b, c in all_shapes(BGL_SUPERNODE_DIMS)]
        assert vols == sorted(vols, reverse=True)
        assert vols[0] == 128

    @given(st.builds(TorusDims, st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)))
    def test_all_fit(self, d):
        for shape in all_shapes(d):
            assert d.fits_shape(shape)


class TestSchedulableSizes:
    def test_contains_powers_of_two(self):
        sizes = schedulable_sizes(BGL_SUPERNODE_DIMS)
        for s in (1, 2, 4, 8, 16, 32, 64, 128):
            assert s in sizes

    def test_excludes_large_primes(self):
        sizes = schedulable_sizes(BGL_SUPERNODE_DIMS)
        assert 11 not in sizes
        assert 127 not in sizes

    def test_round_to_schedulable(self):
        d = BGL_SUPERNODE_DIMS
        assert round_to_schedulable(1, d) == 1
        assert round_to_schedulable(11, d) == 12
        assert round_to_schedulable(127, d) == 128
        assert round_to_schedulable(128, d) == 128

    def test_round_rejects_oversize(self):
        with pytest.raises(GeometryError):
            round_to_schedulable(129, BGL_SUPERNODE_DIMS)
        with pytest.raises(GeometryError):
            round_to_schedulable(0, BGL_SUPERNODE_DIMS)

    @given(st.integers(1, 128))
    def test_rounded_size_schedulable_and_minimal(self, s):
        d = BGL_SUPERNODE_DIMS
        r = round_to_schedulable(s, d)
        sizes = schedulable_sizes(d)
        assert r in sizes and r >= s
        assert all(t < s or t >= r for t in sizes)
