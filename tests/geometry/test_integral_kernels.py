"""Property tests for the integral-image box-sum kernels.

These kernels sit under every partition query in the scheduler; they are
validated here directly against brute-force modular sums, independent of
the finder-level cross-validation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry.torus import (
    box_sum_at,
    circular_window_sum,
    window_sums_from_integral,
    wrap_pad_integral,
)

dims_strategy = st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 6))


def brute_box_sum(grid, base, extents):
    X, Y, Z = grid.shape
    total = 0
    for i in range(extents[0]):
        for j in range(extents[1]):
            for k in range(extents[2]):
                total += grid[(base[0] + i) % X, (base[1] + j) % Y, (base[2] + k) % Z]
    return total


@st.composite
def grid_and_window(draw):
    shape = draw(dims_strategy)
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    grid = rng.integers(0, 4, size=shape)
    window = tuple(draw(st.integers(1, shape[axis])) for axis in range(3))
    base = tuple(draw(st.integers(0, shape[axis] - 1)) for axis in range(3))
    return grid, window, base


class TestIntegralKernels:
    @given(grid_and_window())
    @settings(max_examples=80)
    def test_window_sums_match_bruteforce(self, data):
        grid, window, base = data
        integral = wrap_pad_integral(grid)
        sums = window_sums_from_integral(integral, grid.shape, window)
        assert sums[base] == brute_box_sum(grid, base, window)

    @given(grid_and_window())
    @settings(max_examples=80)
    def test_box_sum_at_matches_bruteforce(self, data):
        grid, window, base = data
        integral = wrap_pad_integral(grid)
        assert box_sum_at(integral, base, window) == brute_box_sum(grid, base, window)

    @given(grid_and_window())
    @settings(max_examples=40)
    def test_circular_window_sum_consistent(self, data):
        grid, window, base = data
        out = circular_window_sum(grid, window)
        assert out[base] == brute_box_sum(grid, base, window)

    @given(dims_strategy, st.integers(0, 2**31))
    @settings(max_examples=40)
    def test_full_window_equals_total(self, shape, seed):
        rng = np.random.default_rng(seed)
        grid = rng.integers(0, 4, size=shape)
        out = circular_window_sum(grid, shape)
        assert (out == grid.sum()).all()

    @given(dims_strategy, st.integers(0, 2**31))
    @settings(max_examples=40)
    def test_integral_monotone_nonneg(self, shape, seed):
        rng = np.random.default_rng(seed)
        grid = rng.integers(0, 4, size=shape)
        integral = wrap_pad_integral(grid)
        # Zero-led integral of a non-negative grid is monotone along
        # every axis.
        assert (np.diff(integral, axis=0) >= 0).all()
        assert (np.diff(integral, axis=1) >= 0).all()
        assert (np.diff(integral, axis=2) >= 0).all()
        assert integral[0].sum() == 0
