"""Unit and property tests for Partition value objects."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims
from repro.geometry.partition import Partition

D = BGL_SUPERNODE_DIMS

small_dims = st.builds(TorusDims, st.integers(1, 4), st.integers(1, 4), st.integers(1, 5))


def partitions_for(dims: TorusDims):
    """Strategy producing valid partitions for the given dims."""
    return st.builds(
        Partition,
        st.tuples(
            st.integers(0, dims.x - 1),
            st.integers(0, dims.y - 1),
            st.integers(0, dims.z - 1),
        ),
        st.tuples(
            st.integers(1, dims.x),
            st.integers(1, dims.y),
            st.integers(1, dims.z),
        ),
    )


class TestPartitionBasics:
    def test_size(self):
        assert Partition((0, 0, 0), (2, 3, 4)).size == 24

    def test_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            Partition((0, 0, 0), (0, 1, 1))

    def test_rejects_negative_base(self):
        with pytest.raises(GeometryError):
            Partition((-1, 0, 0), (1, 1, 1))

    def test_validate_against_dims(self):
        Partition((0, 0, 0), (4, 4, 8)).validate(D)
        with pytest.raises(GeometryError):
            Partition((0, 0, 0), (5, 1, 1)).validate(D)
        with pytest.raises(GeometryError):
            Partition((4, 0, 0), (1, 1, 1)).validate(D)

    def test_value_equality(self):
        assert Partition((1, 2, 3), (2, 2, 2)) == Partition((1, 2, 3), (2, 2, 2))
        assert hash(Partition((1, 2, 3), (2, 2, 2))) == hash(Partition((1, 2, 3), (2, 2, 2)))


class TestNodes:
    def test_node_count_matches_size(self):
        p = Partition((3, 3, 6), (2, 2, 3))  # wraps on all axes
        assert len(p.node_set(D)) == p.size

    def test_wrapping_nodes(self):
        p = Partition((3, 0, 0), (2, 1, 1))
        assert p.node_set(D) == {(3, 0, 0), (0, 0, 0)}

    def test_node_indices_sorted_unique(self):
        p = Partition((2, 3, 7), (2, 2, 2))
        ids = p.node_indices(D)
        assert len(ids) == p.size
        assert list(ids) == sorted(set(int(i) for i in ids))

    def test_node_indices_match_node_set(self):
        p = Partition((1, 2, 5), (2, 1, 4))
        from_ids = {D.coord(int(i)) for i in p.node_indices(D)}
        assert from_ids == p.node_set(D)

    def test_contains(self):
        p = Partition((3, 0, 6), (2, 2, 4))  # wraps in x and z
        assert p.contains(D, (0, 1, 1))
        assert p.contains(D, (3, 0, 6))
        assert not p.contains(D, (1, 0, 0))
        assert not p.contains(D, (3, 2, 6))

    @given(partitions_for(D))
    def test_contains_agrees_with_node_set(self, p):
        nodes = p.node_set(D)
        for c in D.iter_coords():
            assert p.contains(D, c) == (c in nodes)


class TestCanonical:
    def test_full_span_axis_pinned(self):
        p = Partition((2, 1, 3), (4, 2, 8))  # spans x and z fully
        canon = p.canonical(D)
        assert canon.base == (0, 1, 0)
        assert canon.shape == p.shape

    def test_non_spanning_untouched(self):
        p = Partition((2, 1, 3), (2, 2, 2))
        assert p.canonical(D) == p

    @given(partitions_for(D))
    def test_canonical_preserves_node_set(self, p):
        assert p.canonical(D).node_set(D) == p.node_set(D)

    @given(partitions_for(D), partitions_for(D))
    def test_equal_node_sets_have_equal_canonicals(self, p, q):
        if p.node_set(D) == q.node_set(D) and p.shape == q.shape:
            assert p.canonical(D) == q.canonical(D)


class TestOverlaps:
    def test_disjoint(self):
        a = Partition((0, 0, 0), (2, 2, 2))
        b = Partition((2, 2, 2), (2, 2, 2))
        assert not a.overlaps(D, b)

    def test_wrapping_overlap(self):
        a = Partition((3, 0, 0), (2, 1, 1))  # covers x=3 and x=0
        b = Partition((0, 0, 0), (1, 1, 1))
        assert a.overlaps(D, b)
        assert b.overlaps(D, a)

    def test_full_span_always_overlaps_on_axis(self):
        a = Partition((0, 0, 0), (4, 1, 1))
        b = Partition((2, 0, 0), (1, 1, 1))
        assert a.overlaps(D, b)

    @given(partitions_for(D), partitions_for(D))
    def test_overlaps_agrees_with_node_sets(self, p, q):
        expected = bool(p.node_set(D) & q.node_set(D))
        assert p.overlaps(D, q) == expected
        assert q.overlaps(D, p) == expected

    @given(small_dims, st.data())
    def test_overlaps_on_random_dims(self, dims, data):
        p = data.draw(partitions_for(dims))
        q = data.draw(partitions_for(dims))
        expected = bool(p.node_set(dims) & q.node_set(dims))
        assert p.overlaps(dims, q) == expected
