"""Unit tests for torus dimension and coordinate arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims, manhattan_torus_distance

dims_strategy = st.builds(
    TorusDims,
    st.integers(1, 6),
    st.integers(1, 6),
    st.integers(1, 8),
)


class TestTorusDims:
    def test_bgl_view_is_4x4x8(self):
        assert BGL_SUPERNODE_DIMS.as_tuple() == (4, 4, 8)
        assert BGL_SUPERNODE_DIMS.volume == 128

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_nonpositive_dims(self, bad):
        with pytest.raises(GeometryError):
            TorusDims(*bad)

    def test_volume(self):
        assert TorusDims(2, 3, 5).volume == 30

    def test_iter_and_getitem(self):
        d = TorusDims(2, 3, 5)
        assert list(d) == [2, 3, 5]
        assert (d[0], d[1], d[2]) == (2, 3, 5)

    def test_wrap_negative_and_large(self):
        d = TorusDims(4, 4, 8)
        assert d.wrap((-1, 4, 9)) == (3, 0, 1)
        assert d.wrap((0, 0, 0)) == (0, 0, 0)

    def test_contains(self):
        d = TorusDims(4, 4, 8)
        assert d.contains((3, 3, 7))
        assert not d.contains((4, 0, 0))
        assert not d.contains((0, -1, 0))

    def test_index_roundtrip_exhaustive(self):
        d = TorusDims(3, 2, 4)
        seen = set()
        for c in d.iter_coords():
            i = d.index(c)
            assert d.coord(i) == c
            seen.add(i)
        assert seen == set(range(d.volume))

    def test_index_is_row_major(self):
        d = TorusDims(4, 4, 8)
        assert d.index((0, 0, 0)) == 0
        assert d.index((0, 0, 1)) == 1
        assert d.index((0, 1, 0)) == 8
        assert d.index((1, 0, 0)) == 32

    def test_coord_out_of_range(self):
        d = TorusDims(2, 2, 2)
        with pytest.raises(GeometryError):
            d.coord(8)
        with pytest.raises(GeometryError):
            d.coord(-1)

    def test_fits_shape(self):
        d = TorusDims(4, 4, 8)
        assert d.fits_shape((4, 4, 8))
        assert not d.fits_shape((5, 1, 1))
        assert not d.fits_shape((1, 1, 9))

    def test_axis_distance_wraps(self):
        d = TorusDims(8, 8, 8)
        assert d.axis_distance(0, 7, 0) == 1
        assert d.axis_distance(0, 4, 0) == 4
        assert d.axis_distance(3, 3, 0) == 0

    @given(dims_strategy, st.integers(-20, 20), st.integers(-20, 20), st.integers(-20, 20))
    def test_wrap_always_contained(self, d, x, y, z):
        assert d.contains(d.wrap((x, y, z)))

    @given(dims_strategy, st.data())
    def test_index_bijective(self, d, data):
        i = data.draw(st.integers(0, d.volume - 1))
        assert d.index(d.coord(i)) == i


class TestManhattanTorusDistance:
    def test_zero_for_same_node(self):
        d = TorusDims(4, 4, 8)
        assert manhattan_torus_distance(d, (1, 2, 3), (1, 2, 3)) == 0

    def test_wraparound_shorter(self):
        d = TorusDims(4, 4, 8)
        assert manhattan_torus_distance(d, (0, 0, 0), (3, 0, 7)) == 2

    @given(dims_strategy, st.data())
    def test_symmetry(self, d, data):
        coords = st.tuples(
            st.integers(0, d.x - 1), st.integers(0, d.y - 1), st.integers(0, d.z - 1)
        )
        a, b = data.draw(coords), data.draw(coords)
        assert manhattan_torus_distance(d, a, b) == manhattan_torus_distance(d, b, a)

    @given(dims_strategy, st.data())
    def test_triangle_inequality(self, d, data):
        coords = st.tuples(
            st.integers(0, d.x - 1), st.integers(0, d.y - 1), st.integers(0, d.z - 1)
        )
        a, b, c = data.draw(coords), data.draw(coords), data.draw(coords)
        assert manhattan_torus_distance(d, a, c) <= (
            manhattan_torus_distance(d, a, b) + manhattan_torus_distance(d, b, c)
        )
