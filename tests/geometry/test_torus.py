"""Unit and property tests for the torus occupancy grid."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError, PartitionOverlapError, UnknownJobError
from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims
from repro.geometry.partition import Partition
from repro.geometry.torus import FREE, Torus, circular_window_sum

D = BGL_SUPERNODE_DIMS


def make_torus() -> Torus:
    return Torus(D)


class TestCircularWindowSum:
    def test_unit_window_is_identity(self):
        rng = np.random.default_rng(0)
        g = rng.integers(0, 5, size=(4, 4, 8))
        assert np.array_equal(circular_window_sum(g, (1, 1, 1)), g)

    def test_full_window_is_total(self):
        rng = np.random.default_rng(1)
        g = rng.integers(0, 5, size=(3, 4, 5))
        out = circular_window_sum(g, (3, 4, 5))
        assert (out == g.sum()).all()

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(2)
        g = rng.integers(0, 3, size=(3, 4, 5))
        shape = (2, 3, 4)
        out = circular_window_sum(g, shape)
        for x in range(3):
            for y in range(4):
                for z in range(5):
                    expected = sum(
                        g[(x + i) % 3, (y + j) % 4, (z + k) % 5]
                        for i in range(shape[0])
                        for j in range(shape[1])
                        for k in range(shape[2])
                    )
                    assert out[x, y, z] == expected

    @given(st.integers(0, 10_000), st.tuples(st.integers(1, 3), st.integers(1, 4), st.integers(1, 5)))
    @settings(max_examples=25)
    def test_random_grids_match_bruteforce(self, seed, shape):
        rng = np.random.default_rng(seed)
        g = rng.integers(0, 2, size=(3, 4, 5))
        out = circular_window_sum(g, shape)
        x, y, z = rng.integers(0, 3), rng.integers(0, 4), rng.integers(0, 5)
        expected = sum(
            g[(x + i) % 3, (y + j) % 4, (z + k) % 5]
            for i in range(shape[0])
            for j in range(shape[1])
            for k in range(shape[2])
        )
        assert out[x, y, z] == expected


class TestAllocation:
    def test_fresh_torus_all_free(self):
        t = make_torus()
        assert t.free_count == 128
        assert t.busy_count == 0
        assert t.n_jobs == 0

    def test_allocate_and_release(self):
        t = make_torus()
        p = Partition((0, 0, 0), (2, 2, 2))
        t.allocate(7, p)
        assert t.free_count == 120
        assert t.allocation_of(7) == p
        assert t.owner((1, 1, 1)) == 7
        assert t.owner((2, 2, 2)) is None
        released = t.release(7)
        assert released == p
        assert t.free_count == 128

    def test_overlap_rejected(self):
        t = make_torus()
        t.allocate(1, Partition((0, 0, 0), (2, 2, 2)))
        with pytest.raises(PartitionOverlapError):
            t.allocate(2, Partition((1, 1, 1), (2, 2, 2)))
        # failed allocation must not corrupt state
        t.check_invariants()
        assert t.free_count == 120

    def test_double_allocation_rejected(self):
        t = make_torus()
        t.allocate(1, Partition((0, 0, 0), (1, 1, 1)))
        with pytest.raises(PartitionOverlapError):
            t.allocate(1, Partition((2, 2, 2), (1, 1, 1)))

    def test_negative_job_id_rejected(self):
        t = make_torus()
        with pytest.raises(GeometryError):
            t.allocate(-1, Partition((0, 0, 0), (1, 1, 1)))

    def test_release_unknown_job(self):
        t = make_torus()
        with pytest.raises(UnknownJobError):
            t.release(42)

    def test_wrapping_allocation(self):
        t = make_torus()
        p = Partition((3, 3, 7), (2, 2, 2))
        t.allocate(5, p)
        assert t.owner((0, 0, 0)) == 5
        assert t.owner((3, 3, 7)) == 5
        assert t.free_count == 120
        t.check_invariants()

    def test_is_free_and_free_nodes_in(self):
        t = make_torus()
        busy = Partition((0, 0, 0), (2, 2, 2))
        t.allocate(1, busy)
        assert not t.is_free(Partition((1, 1, 1), (2, 2, 2)))
        assert t.is_free(Partition((2, 2, 2), (2, 2, 2)))
        assert t.free_nodes_in(Partition((0, 0, 0), (4, 4, 8))) == 120
        assert t.free_nodes_in(busy) == 0

    def test_owner_by_index(self):
        t = make_torus()
        p = Partition((1, 2, 3), (1, 1, 1))
        t.allocate(9, p)
        idx = D.index((1, 2, 3))
        assert t.owner_by_index(idx) == 9
        assert t.owner_by_index(0) is None

    def test_clear(self):
        t = make_torus()
        t.allocate(1, Partition((0, 0, 0), (2, 2, 2)))
        t.clear()
        assert t.free_count == 128
        assert t.n_jobs == 0

    def test_version_bumps_on_mutation(self):
        t = make_torus()
        v0 = t.version
        t.allocate(1, Partition((0, 0, 0), (1, 1, 1)))
        v1 = t.version
        t.release(1)
        assert v1 > v0 and t.version > v1

    def test_snapshot_restore(self):
        t = make_torus()
        t.allocate(1, Partition((0, 0, 0), (2, 2, 2)))
        snap = t.snapshot()
        t.allocate(2, Partition((2, 2, 2), (2, 2, 2)))
        t.release(1)
        t.restore(snap)
        assert t.n_jobs == 1
        assert t.allocation_of(1) == Partition((0, 0, 0), (2, 2, 2))
        assert t.free_count == 120
        t.check_invariants()


@st.composite
def allocation_sequences(draw):
    """Random sequences of non-overlapping allocations on a small torus."""
    dims = TorusDims(3, 3, 4)
    n = draw(st.integers(0, 8))
    parts = []
    for _ in range(n):
        base = (
            draw(st.integers(0, dims.x - 1)),
            draw(st.integers(0, dims.y - 1)),
            draw(st.integers(0, dims.z - 1)),
        )
        shape = (
            draw(st.integers(1, dims.x)),
            draw(st.integers(1, dims.y)),
            draw(st.integers(1, dims.z)),
        )
        parts.append(Partition(base, shape))
    return dims, parts


class TestAllocationProperties:
    @given(allocation_sequences())
    @settings(max_examples=60)
    def test_free_count_conservation(self, seq):
        dims, parts = seq
        t = Torus(dims)
        placed = []
        for i, p in enumerate(parts):
            try:
                t.allocate(i, p)
                placed.append((i, p))
            except PartitionOverlapError:
                pass
        t.check_invariants()
        assert t.busy_count == sum(p.size for _, p in placed)
        for i, p in reversed(placed):
            t.release(i)
        assert t.free_count == dims.volume
        t.check_invariants()
