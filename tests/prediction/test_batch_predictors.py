"""Batch predictor APIs must be bitwise-equal to their scalar forms.

Every predictor now answers for many same-shape candidate bases in one
vectorised call (``partition_failure_probabilities`` /
``predict_failures``).  The policies' batch paths are only bitwise
compatible with the scalar oracles if these agree *exactly* — float
equality, not approx — so that is what this suite asserts, over random
failure logs, windows and candidate sets.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.failures.events import FailureEvent, FailureLog
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition
from repro.prediction import (
    BalancingPredictor,
    NullPredictor,
    PartitionFailureRule,
    PerfectPredictor,
    TieBreakPredictor,
)

D = TorusDims(4, 4, 5)


@st.composite
def failure_logs(draw) -> FailureLog:
    n = draw(st.integers(0, 12))
    events = [
        FailureEvent(
            draw(st.floats(0.0, 1000.0, allow_nan=False)),
            draw(st.integers(0, D.volume - 1)),
        )
        for _ in range(n)
    ]
    return FailureLog(D.volume, events)


@st.composite
def windows(draw) -> tuple[float, float]:
    t0 = draw(st.floats(0.0, 900.0, allow_nan=False))
    t1 = t0 + draw(st.floats(0.0, 500.0, allow_nan=False))
    return t0, t1


@st.composite
def candidate_sets(draw) -> tuple[tuple[int, int, int], np.ndarray]:
    shape = (
        draw(st.integers(1, D.x)),
        draw(st.integers(1, D.y)),
        draw(st.integers(1, D.z)),
    )
    n = draw(st.integers(1, 10))
    bases = np.stack(
        [
            draw(st.lists(st.integers(0, d - 1), min_size=n, max_size=n))
            for d in D.as_tuple()
        ],
        axis=1,
    ).astype(np.int64)
    return shape, bases


def scalar_probs(pred, bases, shape, t0, t1) -> list[float]:
    return [
        pred.partition_failure_probability(
            Partition((int(b[0]), int(b[1]), int(b[2])), shape), D, t0, t1
        )
        for b in bases
    ]


def scalar_predictions(pred, bases, shape, t0, t1) -> list[bool]:
    return [
        pred.predicts_failure(
            Partition((int(b[0]), int(b[1]), int(b[2])), shape), D, t0, t1
        )
        for b in bases
    ]


class TestBalancingBatch:
    @settings(max_examples=100, deadline=None)
    @given(
        failure_logs(),
        windows(),
        candidate_sets(),
        st.floats(0.0, 1.0, allow_nan=False),
        st.sampled_from(list(PartitionFailureRule)),
    )
    def test_bitwise_equal_to_scalar(self, log, window, cands, confidence, rule):
        t0, t1 = window
        shape, bases = cands
        pred = BalancingPredictor(log, confidence, rule)
        probs = pred.partition_failure_probabilities(bases, shape, D, t0, t1)
        assert probs.dtype == np.float64
        assert probs.tolist() == scalar_probs(pred, bases, shape, t0, t1)

    @settings(max_examples=25, deadline=None)
    @given(failure_logs(), windows(), candidate_sets())
    def test_perfect_predictor(self, log, window, cands):
        t0, t1 = window
        shape, bases = cands
        pred = PerfectPredictor(log)
        probs = pred.partition_failure_probabilities(bases, shape, D, t0, t1)
        assert probs.tolist() == scalar_probs(pred, bases, shape, t0, t1)
        assert set(probs.tolist()) <= {0.0, 1.0}


class TestTieBreakBatch:
    @settings(max_examples=100, deadline=None)
    @given(
        failure_logs(),
        windows(),
        candidate_sets(),
        st.floats(0.0, 1.0, allow_nan=False),
        st.integers(0, 2**31 - 1),
    )
    def test_bitwise_equal_to_scalar(self, log, window, cands, accuracy, seed):
        """Batch and scalar answers agree within one pass regardless of
        query order — responses are drawn once per (t0, t1) window."""
        t0, t1 = window
        shape, bases = cands
        pred = TieBreakPredictor(log, accuracy, seed=seed)
        pred.begin_pass(t0)
        batch_first = pred.predict_failures(bases, shape, D, t0, t1)
        assert batch_first.dtype == np.bool_
        assert batch_first.tolist() == scalar_predictions(pred, bases, shape, t0, t1)
        # And the reverse order, after a fresh pass with the same seed:
        # scalar queries must not perturb what the batch then sees.
        pred2 = TieBreakPredictor(log, accuracy, seed=seed)
        pred2.begin_pass(t0)
        scalar_first = scalar_predictions(pred2, bases, shape, t0, t1)
        assert pred2.predict_failures(bases, shape, D, t0, t1).tolist() == scalar_first
        assert batch_first.tolist() == scalar_first

    @settings(max_examples=25, deadline=None)
    @given(failure_logs(), windows(), candidate_sets())
    def test_probabilities_are_indicator_of_predictions(self, log, window, cands):
        t0, t1 = window
        shape, bases = cands
        pred = TieBreakPredictor(log, 1.0, seed=0)
        pred.begin_pass(t0)
        predicted = pred.predict_failures(bases, shape, D, t0, t1)
        probs = pred.partition_failure_probabilities(bases, shape, D, t0, t1)
        assert probs.tolist() == [1.0 if p else 0.0 for p in predicted]


class TestNullBatch:
    @settings(max_examples=10, deadline=None)
    @given(windows(), candidate_sets())
    def test_all_zero(self, window, cands):
        t0, t1 = window
        shape, bases = cands
        pred = NullPredictor()
        assert not pred.partition_failure_probabilities(bases, shape, D, t0, t1).any()
        assert not pred.predict_failures(bases, shape, D, t0, t1).any()
