"""Tests for the balancing and tie-breaking predictors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PredictionError
from repro.failures.events import FailureEvent, FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.geometry.partition import Partition
from repro.prediction import (
    BalancingPredictor,
    NullPredictor,
    PartitionFailureRule,
    PerfectPredictor,
    TieBreakPredictor,
)
from repro.prediction.base import combine_probabilities

D = BGL_SUPERNODE_DIMS


def log_with_failures(*node_time_pairs: tuple[int, float]) -> FailureLog:
    return FailureLog(D.volume, [FailureEvent(t, n) for n, t in node_time_pairs])


class TestCombineProbabilities:
    def test_zero_flagged(self):
        assert combine_probabilities(0.5, 0, PartitionFailureRule.MAX) == 0.0

    def test_max_rule(self):
        assert combine_probabilities(0.3, 5, PartitionFailureRule.MAX) == 0.3

    def test_complement_product(self):
        p = combine_probabilities(0.3, 2, PartitionFailureRule.COMPLEMENT_PRODUCT)
        assert p == pytest.approx(1 - 0.7 * 0.7)

    def test_rules_equal_for_single_node(self):
        for a in (0.1, 0.5, 0.9):
            assert combine_probabilities(
                a, 1, PartitionFailureRule.MAX
            ) == pytest.approx(
                combine_probabilities(a, 1, PartitionFailureRule.COMPLEMENT_PRODUCT)
            )

    def test_negative_count_rejected(self):
        with pytest.raises(PredictionError):
            combine_probabilities(0.5, -1, PartitionFailureRule.MAX)

    @given(st.floats(0.0, 1.0), st.integers(0, 128))
    def test_complement_at_least_max(self, a, k):
        cp = combine_probabilities(a, k, PartitionFailureRule.COMPLEMENT_PRODUCT)
        mx = combine_probabilities(a, k, PartitionFailureRule.MAX)
        assert cp >= mx - 1e-12
        assert 0.0 <= cp <= 1.0


class TestBalancingPredictor:
    def test_confidence_validation(self):
        log = log_with_failures()
        with pytest.raises(PredictionError):
            BalancingPredictor(log, 1.5)
        with pytest.raises(PredictionError):
            BalancingPredictor(log, -0.1)

    def test_flagged_node_gets_confidence(self):
        node = D.index((1, 2, 3))
        pred = BalancingPredictor(log_with_failures((node, 500.0)), 0.4)
        assert pred.node_failure_probability(node, 0.0, 1000.0) == 0.4
        assert pred.node_failure_probability(node, 600.0, 1000.0) == 0.0
        assert pred.node_failure_probability(0, 0.0, 1000.0) == 0.0

    def test_partition_probability_max_rule(self):
        node = D.index((0, 0, 0))
        pred = BalancingPredictor(
            log_with_failures((node, 10.0)), 0.25, PartitionFailureRule.MAX
        )
        inside = Partition((0, 0, 0), (2, 2, 2))
        outside = Partition((2, 2, 2), (2, 2, 2))
        assert pred.partition_failure_probability(inside, D, 0.0, 100.0) == 0.25
        assert pred.partition_failure_probability(outside, D, 0.0, 100.0) == 0.0

    def test_partition_probability_complement_rule(self):
        n1, n2 = D.index((0, 0, 0)), D.index((0, 0, 1))
        pred = BalancingPredictor(
            log_with_failures((n1, 10.0), (n2, 20.0)),
            0.5,
            PartitionFailureRule.COMPLEMENT_PRODUCT,
        )
        p = pred.partition_failure_probability(
            Partition((0, 0, 0), (1, 1, 2)), D, 0.0, 100.0
        )
        assert p == pytest.approx(0.75)

    def test_zero_confidence_is_null(self):
        node = D.index((0, 0, 0))
        pred = BalancingPredictor(log_with_failures((node, 10.0)), 0.0)
        part = Partition((0, 0, 0), (4, 4, 8))
        assert pred.partition_failure_probability(part, D, 0.0, 100.0) == 0.0
        assert not pred.predicts_failure(part, D, 0.0, 100.0)

    def test_window_is_half_open(self):
        node = D.index((0, 0, 0))
        pred = BalancingPredictor(log_with_failures((node, 100.0)), 1.0)
        part = Partition((0, 0, 0), (1, 1, 1))
        assert pred.partition_failure_probability(part, D, 0.0, 100.0) == 0.0
        assert pred.partition_failure_probability(part, D, 0.0, 100.1) == 1.0

    def test_wrapping_partition_counts_flags(self):
        node = D.index((0, 0, 0))
        pred = BalancingPredictor(log_with_failures((node, 10.0)), 0.9)
        wrapping = Partition((3, 3, 7), (2, 2, 2))  # includes (0,0,0)
        assert pred.partition_failure_probability(wrapping, D, 0.0, 100.0) > 0

    def test_integral_matches_mask_counting(self):
        rng = np.random.default_rng(0)
        events = [(int(rng.integers(128)), float(rng.uniform(0, 1000))) for _ in range(60)]
        pred = BalancingPredictor(log_with_failures(*events), 0.5)
        mask = pred._mask(0.0, 500.0)
        for _ in range(20):
            base = (int(rng.integers(4)), int(rng.integers(4)), int(rng.integers(8)))
            shape = (int(rng.integers(1, 5)), int(rng.integers(1, 5)), int(rng.integers(1, 9)))
            part = Partition(base, shape)
            expected = pred._flagged_in_partition(mask, part, D)
            got = pred.count_in_partition(pred._integral(D, 0.0, 500.0), part, D)
            assert got == expected


class TestTieBreakPredictor:
    def test_accuracy_validation(self):
        with pytest.raises(PredictionError):
            TieBreakPredictor(log_with_failures(), 1.1)

    def test_no_false_positives(self):
        """Nodes without logged failures are never reported, at any
        accuracy."""
        node = D.index((0, 0, 0))
        pred = TieBreakPredictor(log_with_failures((node, 10.0)), 1.0, seed=0)
        clean = Partition((2, 2, 2), (2, 2, 2))
        for _ in range(20):
            pred.begin_pass(0.0)
            assert not pred.predicts_failure(clean, D, 0.0, 100.0)

    def test_perfect_accuracy_always_reports(self):
        node = D.index((1, 1, 1))
        pred = TieBreakPredictor(log_with_failures((node, 10.0)), 1.0, seed=0)
        hit = Partition((1, 1, 1), (1, 1, 1))
        for _ in range(10):
            pred.begin_pass(0.0)
            assert pred.predicts_failure(hit, D, 0.0, 100.0)

    def test_zero_accuracy_never_reports(self):
        node = D.index((1, 1, 1))
        pred = TieBreakPredictor(log_with_failures((node, 10.0)), 0.0, seed=0)
        hit = Partition((1, 1, 1), (1, 1, 1))
        for _ in range(10):
            pred.begin_pass(0.0)
            assert not pred.predicts_failure(hit, D, 0.0, 100.0)

    def test_false_negative_rate_approximates_accuracy(self):
        node = D.index((2, 2, 2))
        pred = TieBreakPredictor(log_with_failures((node, 10.0)), 0.7, seed=42)
        hit = Partition((2, 2, 2), (1, 1, 1))
        reports = 0
        trials = 400
        for _ in range(trials):
            pred.begin_pass(0.0)
            if pred.predicts_failure(hit, D, 0.0, 100.0):
                reports += 1
        assert reports / trials == pytest.approx(0.7, abs=0.07)

    def test_consistent_within_pass(self):
        """The same node asked twice in one pass answers the same."""
        node = D.index((2, 2, 2))
        pred = TieBreakPredictor(log_with_failures((node, 10.0)), 0.5, seed=1)
        p1 = Partition((2, 2, 2), (1, 1, 1))
        p2 = Partition((2, 2, 2), (2, 2, 2))  # superset
        for _ in range(30):
            pred.begin_pass(0.0)
            assert pred.predicts_failure(p1, D, 0.0, 100.0) == pred.predicts_failure(
                p2, D, 0.0, 100.0
            )

    def test_probability_view_is_degenerate(self):
        node = D.index((0, 0, 0))
        pred = TieBreakPredictor(log_with_failures((node, 10.0)), 1.0, seed=0)
        hit = Partition((0, 0, 0), (1, 1, 1))
        assert pred.partition_failure_probability(hit, D, 0.0, 100.0) == 1.0
        miss = Partition((2, 2, 2), (1, 1, 1))
        assert pred.partition_failure_probability(miss, D, 0.0, 100.0) == 0.0


class TestDegeneratePredictors:
    def test_null_predicts_nothing(self):
        pred = NullPredictor()
        part = Partition((0, 0, 0), (4, 4, 8))
        assert pred.partition_failure_probability(part, D, 0.0, 1e9) == 0.0
        assert not pred.predicts_failure(part, D, 0.0, 1e9)

    def test_perfect_is_confidence_one(self):
        node = D.index((0, 0, 0))
        pred = PerfectPredictor(log_with_failures((node, 10.0)))
        assert pred.confidence == 1.0
        hit = Partition((0, 0, 0), (1, 1, 1))
        assert pred.partition_failure_probability(hit, D, 0.0, 100.0) == 1.0
