"""Tests for the perf-trajectory harness (``benchmarks/perf/bench_core.py``)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

import repro.experiments.sweep as sweep_mod

BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "perf" / "bench_core.py"
)

REQUIRED_KEYS = {"bench", "wall_s", "cells_per_s", "workers", "git_rev"}


@pytest.fixture()
def bench_core(monkeypatch):
    """Import the harness as a throwaway module and restore sweep state."""
    spec = importlib.util.spec_from_file_location("_bench_core_test", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    # Register before exec: the module defines dataclasses, whose string
    # annotations resolve through sys.modules under PEP 563.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    master = sweep_mod.MASTER_FAILURE_COUNT
    yield module
    sys.modules.pop(spec.name, None)
    # The harness rescales the master failure log and dirties the sweep
    # caches; undo both so other test modules see pristine state.
    sweep_mod.MASTER_FAILURE_COUNT = master
    sweep_mod._result_cache.clear()
    sweep_mod._workload_cache.clear()
    sweep_mod._master_log_cache.clear()


def test_smoke_scale_produces_trajectory_file(bench_core, tmp_path):
    out = tmp_path / "BENCH_core.json"
    records = bench_core.run_benchmarks("smoke", workers=2, out_path=out)
    assert out.exists()
    assert json.loads(out.read_text()) == records
    assert len(records) >= 6
    names = [r["bench"] for r in records]
    assert len(names) == len(set(names))
    # The before/after shadow-time pair must both be present.
    assert "shadow_time_engine" in names
    assert "shadow_time_naive" in names
    # Likewise the scalar/batch scoring pair the speedup gate consumes.
    assert "scored_candidates_scalar" in names
    assert "scored_candidates_batch" in names
    assert "sweep_serial" in names and "sweep_parallel" in names
    for r in records:
        assert REQUIRED_KEYS <= r.keys()
        assert r["wall_s"] >= 0.0
        assert r["workers"] >= 1
    by_name = {r["bench"]: r for r in records}
    # Sweep records must carry what actually ran, not the requested
    # configuration: the serial record is pinned to one worker, and the
    # parallel record reports the executor's workers_used and mode.
    assert by_name["sweep_serial"]["workers"] == 1
    assert by_name["sweep_serial"]["mode"] == "serial"
    from repro.experiments.parallel import fork_available

    if fork_available():
        assert by_name["sweep_parallel"]["workers"] >= 2
        assert by_name["sweep_parallel"]["mode"] == "warm"
    else:
        assert by_name["sweep_parallel"]["mode"] == "serial"


def test_repo_trajectory_file_is_current(bench_core):
    """The committed BENCH_core.json must match the harness schema."""
    committed = BENCH_PATH.parents[2] / "BENCH_core.json"
    assert committed.exists(), "run benchmarks/perf/bench_core.py to regenerate"
    records = json.loads(committed.read_text())
    assert len(records) >= 6
    for r in records:
        assert REQUIRED_KEYS <= r.keys()
