"""Warm-pool engine unit and integration tests.

Covers the three mechanisms :mod:`repro.experiments.pool` adds over the
cold path — pool persistence across ``run_sweep`` calls, shared-memory
arena shipping (both backends), adaptive chunk sizing fed by the
per-cell cost EMA — plus their cleanup contracts (arena unlink, broken
pool respawn, idempotent shutdown).
"""

from __future__ import annotations

import pickle

import pytest

import repro.experiments.pool as pool_mod
import repro.experiments.sweep as sweep_mod
from repro.experiments.parallel import SweepExecutor, fork_available
from repro.experiments.pool import (
    ArenaHandle,
    SharedArena,
    adaptive_chunk_size,
    get_warm_pool,
    shutdown_warm_pool,
)
from repro.experiments.sweep import SweepPoint, run_sweep

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


@pytest.fixture(autouse=True)
def pool_isolation(monkeypatch):
    """Small master logs, cold caches, fresh pool and EMA per test.

    The pool teardown before the patch guarantees every test's workers
    fork *after* ``MASTER_FAILURE_COUNT`` is shrunk (a persistent pool
    would otherwise carry workers from before the patch).
    """
    shutdown_warm_pool()
    pool_mod.reset_cell_cost_estimate()
    monkeypatch.setattr(sweep_mod, "MASTER_FAILURE_COUNT", 64)
    sweep_mod._result_cache.clear()
    sweep_mod._master_log_cache.clear()
    yield
    shutdown_warm_pool()
    pool_mod.reset_cell_cost_estimate()
    sweep_mod._result_cache.clear()
    sweep_mod._master_log_cache.clear()


def _grid() -> tuple[list[SweepPoint], tuple[int, ...]]:
    points = [
        SweepPoint("nasa", 20, 1.0, f, "balancing", 0.3) for f in (0, 2, 4)
    ]
    return points, (0, 1)


# ----------------------------------------------------------------------
# arenas
# ----------------------------------------------------------------------

class TestSharedArena:
    @pytest.mark.parametrize("backend", ["shm", "file"])
    def test_roundtrip(self, backend):
        payload = pickle.dumps({"k": list(range(100))})
        arena = SharedArena(payload, generation=1, backend=backend)
        try:
            assert arena.handle.size == len(payload)
            assert pool_mod._read_arena(arena.handle) == payload
        finally:
            arena.unlink()

    def test_unlink_is_idempotent_and_reaps_tracking(self):
        arena = SharedArena(b"x" * 16, generation=2)
        assert arena in pool_mod._live_arenas
        arena.unlink()
        assert arena not in pool_mod._live_arenas
        arena.unlink()  # second unlink is a no-op, not an error

    def test_file_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA_BACKEND", "file")
        arena = SharedArena(b"payload", generation=3)
        try:
            assert arena.handle.backend == "file"
            assert pool_mod._read_arena(arena.handle) == b"payload"
        finally:
            arena.unlink()

    def test_unknown_backend_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="arena backend"):
            SharedArena(b"x", generation=4, backend="carrier-pigeon")
        with pytest.raises(ExperimentError, match="arena backend"):
            pool_mod._read_arena(
                ArenaHandle(backend="bogus", name="x", size=1, generation=5)
            )


# ----------------------------------------------------------------------
# adaptive chunking + cost EMA
# ----------------------------------------------------------------------

class TestAdaptiveChunking:
    def test_no_estimate_uses_balance_bound(self):
        # 64 cells / (2 workers * 4 chunks each) = 8 cells per chunk.
        assert adaptive_chunk_size(64, 2, None) == 8
        assert adaptive_chunk_size(3, 2, None) == 1

    def test_expensive_cells_shrink_chunks(self):
        # 1s cells against a 0.25s target: one cell per chunk.
        assert adaptive_chunk_size(64, 2, 1.0) == 1

    def test_cheap_cells_capped_by_balance_bound(self):
        # 1ms cells would target 250-cell chunks; the balance bound wins
        # so no worker's queue hides behind one straggler chunk.
        assert adaptive_chunk_size(64, 2, 0.001) == 8

    def test_intermediate_cost_targets_wall_clock(self):
        # 50ms cells: 0.25 / 0.05 = 5 cells per chunk, under the bound.
        assert adaptive_chunk_size(640, 2, 0.05) == 5

    def test_ema_feedback(self):
        assert pool_mod.cell_cost_estimate_s() is None
        pool_mod.observe_cell_cost(0.1)
        assert pool_mod.cell_cost_estimate_s() == pytest.approx(0.1)
        pool_mod.observe_cell_cost(0.3)
        # alpha=0.5: 0.5*0.3 + 0.5*0.1
        assert pool_mod.cell_cost_estimate_s() == pytest.approx(0.2)

    def test_ema_rejects_degenerate_samples(self):
        pool_mod.observe_cell_cost(0.0)
        pool_mod.observe_cell_cost(-1.0)
        pool_mod.observe_cell_cost(float("nan"))
        pool_mod.observe_cell_cost(float("inf"))
        assert pool_mod.cell_cost_estimate_s() is None


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------

@needs_fork
class TestPoolLifecycle:
    def test_pool_persists_across_run_sweep_calls(self):
        points, seeds = _grid()
        warm = get_warm_pool()
        spawns_before = warm.spawns
        first = run_sweep(points, seeds, workers=2, min_cells_per_worker=0)
        sweep_mod._result_cache.clear()
        second = run_sweep(points, seeds, workers=2, min_cells_per_worker=0)
        assert warm.spawns == spawns_before + 1  # spawned exactly once
        assert warm.reuses >= 1
        assert warm.alive
        assert first == second

    def test_second_sweep_reports_pool_reused(self):
        points, seeds = _grid()
        executor = SweepExecutor(workers=2, min_cells_per_worker=0)
        outcome = executor.run_outcome(points, seeds)
        assert outcome.stats.mode == "warm"
        assert not outcome.stats.pool_reused  # first use spawned
        sweep_mod._result_cache.clear()
        outcome = executor.run_outcome(points, seeds)
        assert outcome.stats.pool_reused

    def test_size_change_respawns(self):
        warm = get_warm_pool()
        spawns_before = warm.spawns
        warm.ensure(2)
        assert warm.workers == 2
        warm.ensure(3)
        assert warm.workers == 3
        assert warm.spawns == spawns_before + 2

    def test_broken_pool_respawns_on_next_use(self):
        warm = get_warm_pool()
        spawns_before = warm.spawns
        warm.ensure(2)
        warm.mark_broken()
        assert not warm.alive
        executor = warm.ensure(2)
        assert warm.alive
        assert warm.spawns == spawns_before + 2
        assert executor.submit(max, 1, 2).result() == 2

    def test_shutdown_is_idempotent(self):
        warm = get_warm_pool()
        warm.ensure(2)
        shutdown_warm_pool()
        assert not warm.alive
        shutdown_warm_pool()  # never-used / already-down: no error

    def test_sweep_unlinks_every_arena(self):
        points, seeds = _grid()
        run_sweep(points, seeds, workers=2, min_cells_per_worker=0)
        assert not pool_mod._live_arenas

    def test_sweep_feeds_cost_ema_and_stats(self):
        points, seeds = _grid()
        outcome = SweepExecutor(
            workers=2, min_cells_per_worker=0
        ).run_outcome(points, seeds)
        assert outcome.stats.mode == "warm"
        assert outcome.stats.workers_used == 2
        assert outcome.stats.chunk_size >= 1
        assert outcome.stats.arena_bytes > 0
        assert pool_mod.cell_cost_estimate_s() > 0
        assert "workers=2" in outcome.stats.summary_line()


# ----------------------------------------------------------------------
# warm results equivalence (file backend + obs collector)
# ----------------------------------------------------------------------

@needs_fork
class TestWarmEquivalence:
    def test_file_backend_bitwise_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA_BACKEND", "file")
        points, seeds = _grid()
        warm_results = run_sweep(
            points, seeds, workers=2, min_cells_per_worker=0
        )
        sweep_mod._result_cache.clear()
        serial = run_sweep(points, seeds, workers=1)
        assert warm_results == serial
        assert not pool_mod._live_arenas  # file arenas reaped too

    def test_collector_parity_with_serial(self):
        from repro.obs.aggregate import SweepObsCollector

        points, seeds = _grid()
        warm_collector = SweepObsCollector()
        SweepExecutor(workers=2, min_cells_per_worker=0).run(
            points, seeds, collector=warm_collector
        )
        sweep_mod._result_cache.clear()
        serial_collector = SweepObsCollector()
        SweepExecutor(workers=1).run(points, seeds, collector=serial_collector)
        warm_collector.finalize()
        serial_collector.finalize()
        assert warm_collector.metrics_dict() == serial_collector.metrics_dict()
