"""Tests for figure shape validation."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import FigureResult
from repro.experiments.sweep import SweepPoint, SweepResult
from repro.experiments.validate import validate_figure


def sweep_result(slowdown=10.0, kills=1.0, utilized=0.5, unused=0.3, lost=0.2):
    point = SweepPoint("sdsc", 10, 1.0, 0, "balancing", 0.0)
    return SweepResult(
        point=point, n_seeds=1, avg_bounded_slowdown=slowdown,
        avg_response=100.0, avg_wait=10.0, utilized=utilized,
        unused=unused, lost=lost, job_kills=kills, failures_hit_jobs=kills,
    )


def failure_figure(rows):
    fig = FigureResult("fig3", "t", "paper failure count", "bounded_slowdown")
    fig.series["a=0.0"] = rows
    return fig


def prediction_figure(rows):
    fig = FigureResult("fig6", "t", "confidence", "bounded_slowdown")
    fig.series["sdsc c=1.0"] = rows
    return fig


class TestInvariants:
    def test_healthy_failure_figure(self):
        fig = failure_figure([
            (0.0, sweep_result(slowdown=10.0, kills=0.0)),
            (4000.0, sweep_result(slowdown=50.0, kills=5.0, lost=0.4, unused=0.1)),
        ])
        report = validate_figure(fig)
        assert report.invariants_ok
        assert report.expectations_met == report.expectations_total

    def test_conservation_violation_detected(self):
        fig = failure_figure([(0.0, sweep_result(utilized=0.9, unused=0.9, lost=0.9))])
        report = validate_figure(fig)
        assert not report.invariants_ok

    def test_kills_at_zero_failures_detected(self):
        fig = failure_figure([(0.0, sweep_result(kills=3.0))])
        report = validate_figure(fig)
        assert not report.invariants_ok

    def test_unsorted_axis_detected(self):
        fig = failure_figure([
            (4000.0, sweep_result()),
            (0.0, sweep_result(kills=0.0)),
        ])
        # rows stored out of order
        report = validate_figure(fig)
        assert not report.invariants_ok

    def test_unknown_axis_rejected(self):
        fig = FigureResult("figX", "t", "bananas", "bounded_slowdown")
        fig.series["s"] = [(0.0, sweep_result())]
        with pytest.raises(ExperimentError):
            validate_figure(fig)


class TestExpectations:
    def test_failures_that_do_not_degrade_flagged(self):
        fig = failure_figure([
            (0.0, sweep_result(slowdown=50.0, kills=0.0)),
            (4000.0, sweep_result(slowdown=10.0, kills=5.0)),
        ])
        report = validate_figure(fig)
        assert report.invariants_ok  # not a bug, just unexpected
        assert report.expectations_met < report.expectations_total

    def test_prediction_axis_front_loaded_gains_pass(self):
        # Most of the kill reduction arrives at a=0.1 (paper's pattern).
        kills = [6.0, 3.0, 2.8, 2.7, 2.6, 2.5, 2.4, 2.3, 2.2, 2.1, 2.0]
        rows = [(round(0.1 * i, 1), sweep_result(kills=k)) for i, k in enumerate(kills)]
        report = validate_figure(prediction_figure(rows))
        assert report.invariants_ok
        assert report.expectations_met == report.expectations_total

    def test_prediction_axis_linear_gains_flagged(self):
        # A linear decline is NOT the paper's front-loaded shape: the
        # diminishing-returns expectation must report a miss.
        rows = [(round(0.1 * i, 1), sweep_result(kills=10.0 - i)) for i in range(11)]
        report = validate_figure(prediction_figure(rows))
        assert report.invariants_ok
        assert report.expectations_met < report.expectations_total

    def test_summary_format(self):
        fig = failure_figure([(0.0, sweep_result(kills=0.0))])
        text = validate_figure(fig).summary()
        assert "validation[fig3]" in text
        assert "invariants OK" in text
