"""Tests for ``SweepResult`` aggregation and report-consistency guards."""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.api import quick_simulate
from repro.errors import ExperimentError
from repro.experiments.sweep import SweepPoint, SweepResult
from repro.metrics.report import Counters

POINT = SweepPoint("nasa", 10, 1.0, 0, "krevat", 0.0)


@pytest.fixture(scope="module")
def reports():
    """Two genuine single-run reports to aggregate."""
    return [
        quick_simulate(
            site="nasa", n_jobs=15, n_failures=2, policy="balancing", seed=seed
        )
        for seed in (0, 1)
    ]


class TestAggregation:
    def test_zero_reports_guarded(self):
        """Aggregating an empty report list must raise, never divide by
        zero or return a bogus n_seeds=0 result."""
        with pytest.raises(ExperimentError, match="zero reports"):
            SweepResult.from_reports(POINT, [])

    def test_means_are_fsum_exact(self, reports):
        result = SweepResult.from_reports(POINT, reports)
        assert result.n_seeds == 2
        assert result.avg_wait == math.fsum(
            r.timing.avg_wait for r in reports
        ) / 2
        assert result.utilized == math.fsum(
            r.capacity.utilized for r in reports
        ) / 2
        assert result.job_kills == math.fsum(
            r.counters.job_kills for r in reports
        ) / 2

    def test_single_report_identity(self, reports):
        result = SweepResult.from_reports(POINT, reports[:1])
        assert result.n_seeds == 1
        assert result.avg_bounded_slowdown == reports[0].timing.avg_bounded_slowdown
        assert result.lost == reports[0].capacity.lost


class TestConsistencyGuards:
    def test_kills_must_match_failures_hit(self, reports):
        bad = replace(
            reports[0],
            counters=Counters(job_kills=3, failures_hit_jobs=1),
        )
        with pytest.raises(ExperimentError, match="job_kills"):
            SweepResult.from_reports(POINT, [bad])

    def test_kills_require_failure_events(self, reports):
        bad = replace(
            reports[0],
            n_failures=0,
            counters=Counters(
                job_kills=2, failures_hit_jobs=2, failures_total=0
            ),
        )
        with pytest.raises(ExperimentError, match="empty failure log"):
            SweepResult.from_reports(POINT, [bad])

    def test_genuine_reports_pass(self, reports):
        assert SweepResult.from_reports(POINT, reports).n_seeds == 2
