"""Work-queue protocol and driver tests.

The protocol under test (:mod:`repro.experiments.queue`): claim by
atomic rename (exactly one racer wins), deterministic lease expiry with
unlink-as-arbiter reclaim, re-enqueue-then-dead-letter attempt
accounting, and a driver whose merged results are bitwise identical to
a serial sweep of the same grid — including across resumed runs.

Worker *processes* inherit the driver's ``MASTER_FAILURE_COUNT`` via the
``REPRO_MASTER_FAILURE_COUNT`` environment export, so the shrunken logs
the fixture installs apply on both sides of the queue directory.
"""

from __future__ import annotations

import json
import os
import time

import pytest

import repro.experiments.queue as queue_mod
import repro.experiments.sweep as sweep_mod
from repro.errors import ExperimentError
from repro.experiments.queue import (
    WorkQueue,
    run_queue_sweep,
    run_worker,
    spawn_worker_process,
)
from repro.experiments.sweep import SweepPoint, run_sweep
from repro.failures.synthetic import BurstFailureModel
from repro.resilience import cell_key
from repro.resilience.chaos import KILL_EXIT_CODE


@pytest.fixture(autouse=True)
def small_master_log(monkeypatch):
    """Shrink master failure logs and isolate every sweep-level cache."""
    monkeypatch.setattr(sweep_mod, "MASTER_FAILURE_COUNT", 64)
    sweep_mod._result_cache.clear()
    sweep_mod._master_log_cache.clear()
    yield
    sweep_mod._result_cache.clear()
    sweep_mod._master_log_cache.clear()


@pytest.fixture
def grid():
    points = [
        SweepPoint("nasa", 15, 1.0, 2, "krevat", 0.0),
        SweepPoint("nasa", 18, 1.0, 3, "balancing", 0.5),
    ]
    return points, (0, 1)


def _serial_reference(points, seeds):
    ref = run_sweep(points, seeds, workers=1)
    sweep_mod._result_cache.clear()
    return ref


# ----------------------------------------------------------------------
# protocol: enqueue / claim / lease / reclaim
# ----------------------------------------------------------------------

class TestQueueProtocol:
    def test_validation(self, tmp_path):
        with pytest.raises(ExperimentError, match="lease_s"):
            WorkQueue(tmp_path, lease_s=0.0)
        with pytest.raises(ExperimentError, match="max_attempts"):
            WorkQueue(tmp_path, max_attempts=0)

    def test_enqueue_idempotent(self, tmp_path, grid):
        points, seeds = grid
        model = BurstFailureModel()
        queue = WorkQueue(tmp_path)
        first = queue.enqueue(points, seeds, model)
        assert len(first) == len(points) * len(seeds)
        assert queue.enqueue(points, seeds, model) == []
        assert queue.counts()["tasks"] == len(first)

    def test_claim_then_drain(self, tmp_path, grid):
        points, seeds = grid
        queue = WorkQueue(tmp_path)
        queue.enqueue(points, seeds, BurstFailureModel())
        claimed = set()
        while (task := queue.claim()) is not None:
            claimed.add(task.key)
            assert task.attempt == 1
            # The rebuilt point runs the same cell as the original.
            assert task.point().site == points[task.point_index].site
        assert len(claimed) == len(points) * len(seeds)
        counts = queue.counts()
        assert counts["tasks"] == 0
        assert counts["claims"] == len(claimed)

    def test_lost_rename_race_moves_to_next_task(
        self, tmp_path, grid, monkeypatch
    ):
        """A racer whose rename loses (FileNotFoundError) must skip to
        the next candidate instead of failing the claim."""
        points, seeds = grid
        queue = WorkQueue(tmp_path)
        queue.enqueue(points, seeds, BurstFailureModel())
        real_rename = os.rename
        failed = []

        def racing_rename(src, dst, **kw):
            if not failed:
                failed.append(src)
                raise FileNotFoundError(src)  # rival renamed it first
            return real_rename(src, dst, **kw)

        monkeypatch.setattr(os, "rename", racing_rename)
        task = queue.claim()
        assert task is not None
        assert str(failed[0]) != str(queue.tasks_dir / f"{task.key}.json")

    def test_unexpired_claim_not_reclaimed(self, tmp_path, grid):
        points, seeds = grid
        queue = WorkQueue(tmp_path, lease_s=60.0)
        queue.enqueue(points, seeds, BurstFailureModel())
        queue.claim()
        assert queue.reclaim_expired() == 0
        assert queue.counts()["claims"] == 1

    def test_expired_claim_reenqueued_with_next_attempt(
        self, tmp_path, grid
    ):
        points, seeds = grid
        queue = WorkQueue(tmp_path, lease_s=5.0)
        queue.enqueue(points, seeds, BurstFailureModel())
        task = queue.claim()
        # Deterministic expiry: pass a clock already past the deadline.
        assert queue.reclaim_expired(now=time.time() + 10.0) == 1
        counts = queue.counts()
        assert counts["claims"] == 0
        record = json.loads(
            (queue.tasks_dir / f"{task.key}.json").read_text()
        )
        assert record["attempt"] == 2
        assert record["error_type"] == "LeaseExpired"

    def test_mtime_fallback_when_lease_never_written(self, tmp_path, grid):
        """A worker that died between rename and lease write leaves a
        claim with no lease; its expiry falls back to mtime + lease."""
        points, seeds = grid
        queue = WorkQueue(tmp_path, lease_s=5.0)
        queue.enqueue(points, seeds, BurstFailureModel())
        task = queue.claim()
        claim_path = queue.claims_dir / f"{task.key}.json"
        record = json.loads(claim_path.read_text())
        del record["lease"]
        claim_path.write_text(json.dumps(record))
        past = time.time() - 60.0
        os.utime(claim_path, (past, past))
        assert queue.reclaim_expired() == 1
        assert (queue.tasks_dir / f"{task.key}.json").exists()

    def test_reclaim_drops_orphan_completed_claim(self, tmp_path, grid):
        """Crash between checkpoint write and claim unlink: reclaim sees
        the finished cell and drops the claim without re-enqueueing."""
        points, seeds = grid
        queue = WorkQueue(tmp_path, lease_s=5.0)
        queue.enqueue(points, seeds, BurstFailureModel())
        task = queue.claim()
        report = queue_mod.simulate_cell(task.point(), task.seed, task.model())
        queue.store.put(
            task.key, report, point_index=task.point_index, seed=task.seed
        )
        assert queue.reclaim_expired(now=time.time() + 10.0) == 1
        counts = queue.counts()
        assert counts["claims"] == 0
        assert not (queue.tasks_dir / f"{task.key}.json").exists()

    def test_fail_reenqueues_then_dead_letters(self, tmp_path, grid):
        points, seeds = grid
        queue = WorkQueue(tmp_path, max_attempts=2)
        queue.enqueue(points[:1], seeds[:1], BurstFailureModel())
        task = queue.claim()
        queue.fail(task, ValueError("boom"))
        retry = queue.claim()
        assert retry.key == task.key
        assert retry.attempt == 2
        queue.fail(retry, ValueError("boom again"))
        assert queue.claim() is None
        dead = queue.dead_records()
        assert len(dead) == 1
        assert dead[0]["error_type"] == "ValueError"
        assert queue.counts() == {
            "tasks": 0, "claims": 0, "dead": 1, "cells": 0,
        }

    def test_garbled_task_dead_lettered(self, tmp_path):
        queue = WorkQueue(tmp_path)
        (queue.tasks_dir / "feedface.json").write_text("{not json")
        assert queue.claim() is None
        assert queue.counts()["dead"] == 1

    def test_reclaimed_expiry_respects_max_attempts(self, tmp_path, grid):
        points, seeds = grid
        queue = WorkQueue(tmp_path, lease_s=5.0, max_attempts=1)
        queue.enqueue(points[:1], seeds[:1], BurstFailureModel())
        queue.claim()
        assert queue.reclaim_expired(now=time.time() + 10.0) == 1
        assert queue.counts()["tasks"] == 0  # straight to dead-letter
        assert queue.dead_records()[0]["error_type"] == "LeaseExpired"


# ----------------------------------------------------------------------
# worker loop (in-process)
# ----------------------------------------------------------------------

class TestWorkerLoop:
    def test_run_worker_drains_and_driver_merge_matches_serial(
        self, tmp_path, grid
    ):
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        queue = WorkQueue(tmp_path)
        queue.enqueue(points, seeds, BurstFailureModel())
        completed = run_worker(tmp_path)
        assert completed == len(points) * len(seeds)
        assert queue.counts()["cells"] == completed
        outcome = run_queue_sweep(
            points, seeds, queue_dir=tmp_path, spawn_workers=False
        )
        assert outcome.results == ref
        assert outcome.complete
        assert outcome.stats.mode == "queue"

    def test_duplicate_task_released_not_recomputed(self, tmp_path, grid):
        points, seeds = grid
        queue = WorkQueue(tmp_path)
        model = BurstFailureModel()
        queue.enqueue(points[:1], seeds[:1], model)
        assert run_worker(tmp_path) == 1
        # A rival host re-enqueues the finished cell (e.g. raced the
        # checkpoint write); the worker must release, not recompute.
        key = cell_key(points[0], seeds[0], model)
        task_record = {
            "key": key, "point_index": 0, "seed_index": 0,
            "seed": seeds[0], "attempt": 1,
            "point": queue_mod.describe_point(points[0]),
            "model": queue_mod.describe_model(model),
        }
        queue_mod._write_record(queue.tasks_dir, key, task_record)
        assert run_worker(tmp_path) == 0
        assert queue.counts()["tasks"] == 0
        assert queue.counts()["claims"] == 0

    def test_poison_cell_dead_letters_and_quarantines(self, tmp_path, grid):
        points, seeds = grid
        queue = WorkQueue(tmp_path, max_attempts=2)
        queue.enqueue(points[:1], (seeds[0],), BurstFailureModel())
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(
                queue_mod,
                "simulate_cell",
                lambda *a: (_ for _ in ()).throw(ValueError("poison")),
            )
            assert run_worker(tmp_path, max_attempts=2) == 0
        assert queue.counts()["dead"] == 1
        outcome = run_queue_sweep(
            points[:1], (seeds[0],), queue_dir=tmp_path,
            spawn_workers=False, max_attempts=2,
        )
        assert not outcome.complete
        assert outcome.results == [None]
        assert len(outcome.quarantined) == 1
        assert outcome.quarantined[0].error_type == "ValueError"
        assert outcome.stats.quarantined == 1


# ----------------------------------------------------------------------
# driver with spawned worker subprocesses
# ----------------------------------------------------------------------

class TestQueueSweepDriver:
    def test_two_workers_bitwise_identical_and_resumable(
        self, tmp_path, grid
    ):
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        outcome = run_queue_sweep(
            points, seeds, queue_dir=tmp_path, workers=2, timeout_s=120.0
        )
        assert outcome.results == ref
        assert outcome.stats.mode == "queue"
        assert outcome.stats.workers_used == 2
        assert outcome.stats.cells_computed == len(points) * len(seeds)
        # Re-running against the drained directory restores everything
        # from checkpoints and computes nothing.
        sweep_mod._result_cache.clear()
        resumed = run_queue_sweep(
            points, seeds, queue_dir=tmp_path, workers=2, timeout_s=120.0
        )
        assert resumed.results == ref
        assert resumed.stats.cells_computed == 0
        assert resumed.stats.checkpoint_hits == len(points) * len(seeds)

    def test_killed_worker_claim_reclaimed_and_resumed_bitwise(
        self, tmp_path, grid
    ):
        """The acceptance scenario: a worker dies *holding a claim*; the
        claim's lease expires; a resumed driver reclaims it and the
        merged results equal serial exactly."""
        points, seeds = grid
        ref = _serial_reference(points, seeds)
        queue = WorkQueue(tmp_path, lease_s=1.0)
        enqueued = queue.enqueue(points, seeds, BurstFailureModel())
        assert len(enqueued) == 4
        proc = spawn_worker_process(
            tmp_path, lease_s=1.0, kill_after_claims=1
        )
        assert proc.wait(timeout=120) == KILL_EXIT_CODE
        counts = queue.counts()
        assert counts["cells"] == 1  # one completed before the kill
        assert counts["claims"] == 1  # died holding the second claim
        outcome = run_queue_sweep(
            points, seeds, queue_dir=tmp_path, workers=2,
            lease_s=1.0, timeout_s=120.0,
        )
        assert outcome.results == ref
        assert outcome.complete
        assert not outcome.quarantined
        final = queue.counts()
        assert final["tasks"] == 0
        assert final["claims"] == 0
        assert final["cells"] == len(points) * len(seeds)
