"""Tests for the sweep/figure experiment harness."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import (
    PAPER_FAILURE_AXIS,
    PAPER_PARAMETER_AXIS,
    figure_registry,
    paper_failures_to_sim,
    run_figure,
)
from repro.experiments.format import format_figure, format_series, format_table
from repro.experiments.sweep import SweepPoint, SweepResult, run_point


class TestFailureMapping:
    def test_zero_maps_to_zero(self):
        assert paper_failures_to_sim(0, 86_400.0) == 0

    def test_full_year_is_identity(self):
        assert paper_failures_to_sim(4000, 365 * 86_400.0) == 4000

    def test_proportional(self):
        # Half a year -> half the events (ceil).
        assert paper_failures_to_sim(4000, 182.5 * 86_400.0) == 2000

    def test_small_horizons_round_up(self):
        assert paper_failures_to_sim(500, 86_400.0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            paper_failures_to_sim(-1, 1000.0)


class TestAxes:
    def test_paper_axes_match_text(self):
        assert PAPER_FAILURE_AXIS[0] == 0
        assert PAPER_FAILURE_AXIS[-1] == 4000
        assert PAPER_FAILURE_AXIS[1] - PAPER_FAILURE_AXIS[0] == 500
        assert PAPER_PARAMETER_AXIS == (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

    def test_registry_covers_all_figures(self):
        assert set(figure_registry()) == {f"fig{i}" for i in range(3, 11)}

    def test_unknown_figure(self):
        with pytest.raises(ExperimentError, match="unknown figure"):
            run_figure("fig99")


class TestRunPoint:
    def test_seed_averaging(self):
        point = SweepPoint("nasa", 40, 1.0, 5, "balancing", 0.5)
        result = run_point(point, seeds=(0, 1))
        assert result.n_seeds == 2
        assert result.avg_bounded_slowdown >= 1.0
        assert 0.0 <= result.utilized <= 1.0

    def test_zero_failures_no_kills(self):
        point = SweepPoint("nasa", 30, 1.0, 0, "krevat", 0.0)
        result = run_point(point, seeds=(0,))
        assert result.job_kills == 0.0

    def test_deterministic(self):
        point = SweepPoint("nasa", 30, 1.0, 4, "tiebreak", 0.5)
        a = run_point(point, seeds=(0,))
        b = run_point(point, seeds=(0,))
        assert a.avg_bounded_slowdown == b.avg_bounded_slowdown
        assert a.utilized == b.utilized

    def test_aggregation_requires_reports(self):
        point = SweepPoint("nasa", 10, 1.0, 0, "krevat", 0.0)
        with pytest.raises(ExperimentError):
            SweepResult.from_reports(point, [])


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table([[1, 2.5], [30, 0.123]], ["a", "metric"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "0.123" in lines[3]

    def test_format_series_smoke(self):
        point = SweepPoint("nasa", 20, 1.0, 0, "krevat", 0.0)
        result = run_point(point, seeds=(0,))
        text = format_series("test", [(0.0, result)], "bounded_slowdown")
        assert "slowdown" in text and "test" in text


@pytest.mark.slow
class TestFigureSmoke:
    """Tiny end-to-end figure regeneration (scaled way down)."""

    def test_fig3_shape(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIG_JOBS", "30")
        monkeypatch.setenv("REPRO_FIG_SEEDS", "1")
        import repro.experiments.figures as figures

        monkeypatch.setattr(figures, "PAPER_FAILURE_AXIS", (0, 4000))
        result = figures.fig3()
        assert set(result.series) == {"a=0.0", "a=0.1", "a=0.9"}
        for label in result.series:
            xs = [x for x, _ in result.series[label]]
            assert xs == [0.0, 4000.0]
        assert format_figure(result)
