"""Serial/parallel sweep equivalence and worker-failure handling.

The contract under test: ``run_sweep(points, workers=N)`` returns a
result list *bitwise identical* to ``run_sweep(points, workers=1)`` —
same ordering, exact float equality — because each ``(point, seed)``
cell is a deterministic function of its inputs and aggregation happens
in the parent in serial seed order.

The CI ``bench-smoke`` job treats a skip of this module as a failure, so
keep the skip conditions honest (fork genuinely unavailable).
"""

from __future__ import annotations

import os

import pytest

import repro.experiments.parallel as parallel_mod
import repro.experiments.pool as pool_mod
import repro.experiments.sweep as sweep_mod
from repro.errors import ExperimentError, ReproError
from repro.experiments.parallel import SweepExecutor, default_workers, fork_available
from repro.experiments.pool import shutdown_warm_pool
from repro.experiments.sweep import SweepPoint, run_sweep

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


@pytest.fixture(autouse=True)
def small_master_log(monkeypatch):
    """Shrink master failure logs and isolate every sweep-level cache.

    The patched ``MASTER_FAILURE_COUNT`` changes what ``_failures_for``
    generates, and the master-log cache is not keyed on the count, so
    both caches must be emptied on entry *and* exit to keep other test
    modules honest.  The warm pool is torn down around every test so
    each test's workers fork *after* its monkeypatches — the persistent
    pool would otherwise keep workers from before the patch.
    """
    shutdown_warm_pool()
    monkeypatch.setattr(sweep_mod, "MASTER_FAILURE_COUNT", 64)
    sweep_mod._result_cache.clear()
    sweep_mod._master_log_cache.clear()
    yield
    shutdown_warm_pool()
    sweep_mod._result_cache.clear()
    sweep_mod._master_log_cache.clear()


def _failure_axis_grid() -> tuple[list[SweepPoint], tuple[int, ...]]:
    points = [
        SweepPoint("nasa", 25, 1.0, f, "balancing", 0.3) for f in (0, 2, 5)
    ]
    return points, (0, 1)


def _parameter_axis_grid() -> tuple[list[SweepPoint], tuple[int, ...]]:
    points = [
        SweepPoint("sdsc", 20, 1.0, 3, "tiebreak", a) for a in (0.0, 0.5, 1.0)
    ]
    return points, (0,)


def _mixed_grid() -> tuple[list[SweepPoint], tuple[int, ...]]:
    points = [
        SweepPoint("nasa", 20, 1.0, 2, "krevat", 0.0),
        SweepPoint("llnl", 20, 1.2, 4, "balancing", 0.7),
        SweepPoint("nasa", 25, 1.0, 0, "tiebreak", 0.2),
        SweepPoint("llnl", 20, 1.0, 2, "krevat", 0.0),
    ]
    return points, (0, 1)


GRIDS = {
    "failure-axis": _failure_axis_grid,
    "parameter-axis": _parameter_axis_grid,
    "mixed-sites-policies": _mixed_grid,
}


@needs_fork
class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("grid", sorted(GRIDS))
    def test_bitwise_identical_results(self, grid):
        points, seeds = GRIDS[grid]()
        # Parallel first, against cold caches, so it cannot piggyback on
        # serially computed results; the cutover is pinned off so the
        # small grid genuinely exercises the pool.
        parallel = run_sweep(points, seeds, workers=4, min_cells_per_worker=0)
        sweep_mod._result_cache.clear()
        serial = run_sweep(points, seeds, workers=1)
        assert len(parallel) == len(serial) == len(points)
        for i, (p, s) in enumerate(zip(parallel, serial)):
            assert p.point == points[i]  # ordering preserved
            # Frozen-dataclass equality covers every metric field with
            # exact float comparison (no tolerance).
            assert p == s

    def test_partial_cache_reuse_matches_serial(self):
        """A parallel sweep over a half-cached grid must slot cached and
        fresh results into the right positions."""
        points, seeds = _failure_axis_grid()
        serial = run_sweep(points, seeds, workers=1)
        # Keep only the middle point cached; the executor must compute
        # the other two and preserve order.
        model_key = (points[1], seeds, sweep_mod.BurstFailureModel())
        keep = sweep_mod._result_cache[model_key]
        sweep_mod._result_cache.clear()
        sweep_mod._result_cache[model_key] = keep
        parallel = run_sweep(points, seeds, workers=2, min_cells_per_worker=0)
        assert parallel == serial
        assert parallel[1] is keep


@needs_fork
class TestWorkerFailure:
    def test_warm_worker_crash_surfaces_as_experiment_error(self, monkeypatch):
        """A warm-pool worker that dies mid-cell must raise, not hang.

        Warm workers reach ``simulate_cell`` through the sweep module
        (via :func:`repro.experiments.pool._warm_run_chunk`), so that is
        the patch target; the autouse fixture's pool teardown guarantees
        the workers fork after the patch.  The breakage must also mark
        the pool so the *next* sweep respawns instead of reusing a dead
        executor.
        """
        monkeypatch.setattr(
            sweep_mod, "simulate_cell", lambda *a: os._exit(13)
        )
        points, seeds = _parameter_axis_grid()
        with pytest.raises(ExperimentError, match="worker process died"):
            SweepExecutor(workers=2, min_cells_per_worker=0).run(points, seeds)
        assert not pool_mod.get_warm_pool().alive

    def test_cold_worker_crash_surfaces_as_experiment_error(self, monkeypatch):
        """Same contract on the cold per-sweep pool (``warm=False``),
        whose workers reach ``simulate_cell`` through the parallel
        module's import."""
        monkeypatch.setattr(
            parallel_mod, "simulate_cell", lambda *a: os._exit(13)
        )
        points, seeds = _parameter_axis_grid()
        with pytest.raises(ExperimentError, match="worker process died"):
            SweepExecutor(
                workers=2, min_cells_per_worker=0, warm=False
            ).run(points, seeds)

    def test_worker_exception_propagates_type(self):
        """Ordinary worker exceptions keep their ReproError type.

        Two points and two seeds force the pooled path (a single cell
        would take the in-process shortcut).
        """
        bad = [
            SweepPoint("no-such-site", 10, 1.0, 0, "krevat", 0.0),
            SweepPoint("no-such-site", 12, 1.0, 0, "krevat", 0.0),
        ]
        with pytest.raises(ReproError):
            run_sweep(bad, (0, 1), workers=2, min_cells_per_worker=0)


class TestAutoSerialCutover:
    """Small sweeps skip the pool: spawn + per-worker warm-up costs more
    than parallelism buys (the committed BENCH_core.json had an 8-point
    sweep *slower* with 2 workers than serial)."""

    def test_small_sweep_runs_in_process(self):
        points, seeds = _parameter_axis_grid()  # 3 cells < 10 * 2
        outcome = SweepExecutor(workers=2).run_outcome(points, seeds)
        assert outcome.stats.mode == "serial"
        sweep_mod._result_cache.clear()
        assert outcome.results == run_sweep(points, seeds, workers=1)

    @needs_fork
    def test_cutover_zero_forces_pool(self):
        points, seeds = _parameter_axis_grid()
        outcome = SweepExecutor(
            workers=2, min_cells_per_worker=0
        ).run_outcome(points, seeds)
        assert outcome.stats.mode == "warm"
        assert outcome.stats.workers_used == 2
        assert outcome.stats.chunk_size >= 1

    @needs_fork
    def test_cold_pool_mode_is_parallel(self):
        points, seeds = _parameter_axis_grid()
        outcome = SweepExecutor(
            workers=2, min_cells_per_worker=0, warm=False
        ).run_outcome(points, seeds)
        assert outcome.stats.mode == "parallel"
        assert outcome.stats.workers_used == 2

    @needs_fork
    def test_sub_cutover_grid_never_touches_warm_pool(self):
        """The serial cutover must be decided before any pool exists —
        a small grid must not pay a warm-pool spawn."""
        points, seeds = _parameter_axis_grid()  # 3 cells < 10 * 2
        warm = pool_mod.get_warm_pool()
        spawns_before = warm.spawns
        outcome = SweepExecutor(workers=2).run_outcome(points, seeds)
        assert outcome.stats.mode == "serial"
        assert warm.spawns == spawns_before
        assert not warm.alive

    def test_fully_cached_sweep_reports_cached(self):
        points, seeds = _parameter_axis_grid()
        executor = SweepExecutor(workers=1)
        assert executor.run_outcome(points, seeds).stats.mode == "serial"
        assert executor.run_outcome(points, seeds).stats.mode == "cached"

    def test_mode_in_summary_line(self):
        points, seeds = _parameter_axis_grid()
        outcome = SweepExecutor(workers=2).run_outcome(points, seeds)
        assert "mode=serial" in outcome.stats.summary_line()


class TestFallbacksAndGuards:
    def test_no_fork_falls_back_in_process(self, monkeypatch):
        points, seeds = _parameter_axis_grid()
        serial = run_sweep(points, seeds, workers=1)
        sweep_mod._result_cache.clear()
        monkeypatch.setattr(parallel_mod, "fork_available", lambda: False)
        fallback = SweepExecutor(workers=4).run(points, seeds)
        assert fallback == serial

    def test_workers_none_and_one_are_serial(self):
        points, seeds = _parameter_axis_grid()
        a = run_sweep(points, seeds)
        b = run_sweep(points, seeds, workers=1)
        assert a == b

    def test_zero_seeds_rejected(self):
        points, _ = _parameter_axis_grid()
        with pytest.raises(ExperimentError):
            SweepExecutor(workers=2).run(points, ())

    def test_empty_point_list(self):
        assert run_sweep([], (0,), workers=4) == []

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIG_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_FIG_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_FIG_WORKERS", "many")
        with pytest.raises(ExperimentError):
            default_workers()

    def test_default_workers_leaves_a_core_free(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIG_WORKERS", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert default_workers() == 7
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert default_workers() == 1


@needs_fork
class TestFigureParallelism:
    def test_figure_workers_identical(self, monkeypatch):
        """A scaled-down figure regeneration matches serially."""
        monkeypatch.setenv("REPRO_FIG_JOBS", "20")
        monkeypatch.setenv("REPRO_FIG_SEEDS", "1")
        import repro.experiments.figures as figures

        monkeypatch.setattr(figures, "PAPER_FAILURE_AXIS", (0, 2000))
        parallel = figures.fig4(workers=2)
        sweep_mod._result_cache.clear()
        serial = figures.fig4(workers=1)
        assert parallel.series.keys() == serial.series.keys()
        for label in serial.series:
            assert parallel.series[label] == serial.series[label]
