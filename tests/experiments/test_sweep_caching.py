"""Tests for sweep-level caching and environment knobs."""

from __future__ import annotations

import pytest

from repro.experiments.figures import default_n_jobs, default_seeds, _horizon_s
from repro.experiments.sweep import SweepPoint, run_point, run_sweep


class TestResultCaching:
    def test_run_point_memoised(self):
        point = SweepPoint("nasa", 25, 1.0, 3, "balancing", 0.5)
        a = run_point(point, seeds=(0,))
        b = run_point(point, seeds=(0,))
        assert a is b  # cache hit, not a re-run

    def test_different_seeds_not_conflated(self):
        point = SweepPoint("nasa", 25, 1.0, 3, "balancing", 0.5)
        a = run_point(point, seeds=(0,))
        b = run_point(point, seeds=(1,))
        assert a is not b

    def test_run_sweep_returns_per_point(self):
        points = [
            SweepPoint("nasa", 25, 1.0, 0, "krevat", 0.0),
            SweepPoint("nasa", 25, 1.0, 3, "krevat", 0.0),
        ]
        results = run_sweep(points, seeds=(0,))
        assert len(results) == 2
        assert results[0].point.n_failures == 0
        assert results[1].point.n_failures == 3


class TestEnvKnobs:
    def test_default_n_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIG_JOBS", "77")
        assert default_n_jobs() == 77

    def test_default_seeds(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIG_SEEDS", "3")
        assert default_seeds() == (0, 1, 2)

    def test_horizon_positive_and_scales_with_jobs(self):
        small = _horizon_s("nasa", 30, 1.0)
        large = _horizon_s("nasa", 120, 1.0)
        assert 0 < small < large
