"""Figure 4: average bounded slowdown vs failure rate for load scales
c = 1.0 and c = 1.2 (SDSC, balancing, a = 0.1).

Paper shape: the 20% load increase amplifies the slowdown at every
failure rate.
"""

from __future__ import annotations

from repro.experiments.figures import fig4
from benchmarks.conftest import run_figure_once


def test_fig4(benchmark, save_figure):
    result = run_figure_once(benchmark, fig4)
    save_figure(result)

    low = dict(result.metric_values("c=1.0"))
    high = dict(result.metric_values("c=1.2"))
    assert set(low) == set(high)
    # Averaged across the axis, higher load must hurt.
    assert sum(high.values()) > sum(low.values())
