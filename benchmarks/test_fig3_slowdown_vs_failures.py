"""Figure 3: average bounded slowdown vs failure rate (SDSC),
with and without prediction (a = 0.0 / 0.1 / 0.9, balancing).

Paper shape: slowdown rises sharply as failures appear, then saturates;
prediction — even at 10% confidence — recovers a large share of the
degradation, and a=0.9 adds comparatively little over a=0.1.
"""

from __future__ import annotations

from repro.experiments.figures import fig3
from benchmarks.conftest import run_figure_once


def test_fig3(benchmark, save_figure):
    result = run_figure_once(benchmark, fig3)
    save_figure(result)

    for label in ("a=0.0", "a=0.1", "a=0.9"):
        series = dict(result.metric_values(label))
        # Robust invariants only: failure-free runs kill nothing, and
        # heavy failure injection must degrade the no-prediction curve.
        zero, worst = series[0.0], series[4000.0]
        assert zero > 0
        if label == "a=0.0":
            assert worst > zero, "failures must degrade the oblivious scheduler"
    kills0 = [r.job_kills for _, r in result.series["a=0.0"]]
    assert kills0[0] == 0.0
    assert kills0[-1] > 0
