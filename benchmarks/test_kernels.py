"""Microbenchmarks of the scheduler's hot kernels.

Not a paper figure — these guard the performance engineering that makes
the figure sweeps tractable (integral-image window sums, incremental
MFP queries, full scheduler passes).
"""

from __future__ import annotations

import numpy as np

from repro.allocation import PlacementIndex
from repro.core.config import SimulationConfig
from repro.core.policies import KrevatPolicy
from repro.core.simulator import Simulator
from repro.failures.events import FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.geometry.torus import Torus, circular_window_sum, wrap_pad_integral
from repro.workloads.models import SDSC_SP
from repro.workloads.scaling import fit_to_machine
from repro.workloads.synthetic import generate_workload

D = BGL_SUPERNODE_DIMS


def loaded_torus(fill: float = 0.5, seed: int = 0) -> Torus:
    t = Torus(D)
    rng = np.random.default_rng(seed)
    t.grid[rng.random(D.as_tuple()) < fill] = 999
    return t


def test_wrap_pad_integral(benchmark):
    grid = (loaded_torus().grid != -1).astype(np.int64)
    benchmark(wrap_pad_integral, grid)


def test_circular_window_sum(benchmark):
    grid = (loaded_torus().grid != -1).astype(np.int64)
    benchmark(circular_window_sum, grid, (2, 4, 8))


def test_placement_index_build(benchmark):
    torus = loaded_torus()
    benchmark(PlacementIndex, torus)


def test_mfp_size(benchmark):
    torus = loaded_torus()

    def run():
        return PlacementIndex(torus).mfp_size()

    assert benchmark(run) > 0


def test_mfp_excluding(benchmark):
    torus = loaded_torus(0.3)
    index = PlacementIndex(torus)
    candidates = index.candidates(8)
    index.mfp_size()

    def run():
        return [index.mfp_excluding(p) for p in candidates[:16]]

    benchmark(run)


def test_small_simulation_end_to_end(benchmark):
    """Whole-pipeline cost: 100 jobs, no failures, Krevat."""
    workload = fit_to_machine(generate_workload(SDSC_SP, 100, seed=0), D)
    log = FailureLog(D.volume)

    def run():
        return Simulator(workload, log, KrevatPolicy(), SimulationConfig()).run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.timing.n_jobs == 100
