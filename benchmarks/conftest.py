"""Shared fixtures for the figure-regeneration benchmark suite.

Each ``test_figN_*`` module regenerates one figure of the paper's
evaluation; the resulting series are written to
``benchmarks/results/<figure>.txt`` and echoed to the terminal so a
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` run
leaves both the timing table and the data behind.

Scale with ``REPRO_FIG_JOBS`` (jobs per simulation, default 400),
``REPRO_FIG_SEEDS`` (seeds averaged per point, default 2) and
``REPRO_FIG_WORKERS`` (parallel sweep workers, default: all cores but
one; parallel results are bitwise-identical to serial).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

# Modest default so the full suite finishes in tens of minutes; raise
# for higher-fidelity regenerations.
os.environ.setdefault("REPRO_FIG_JOBS", "400")
os.environ.setdefault("REPRO_FIG_SEEDS", "2")
os.environ.setdefault(
    "REPRO_FIG_WORKERS", str(max(1, (os.cpu_count() or 2) - 1))
)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_figure(results_dir, capsys):
    """Persist a FigureResult's text rendering and echo it."""

    def _save(result) -> str:
        from repro.experiments.format import format_figure
        from repro.experiments.validate import validate_figure

        validation = validate_figure(result)
        text = format_figure(result) + "\n\n" + validation.summary()
        (results_dir / f"{result.figure}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")
        assert validation.invariants_ok, f"shape invariants violated:\n{validation.summary()}"
        return text

    return _save


def run_figure_once(benchmark, fn):
    """Run a figure generator exactly once under pytest-benchmark.

    Figure regenerations take minutes; multiple rounds would be
    pointless — the benchmark clock records the single-pass cost.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
