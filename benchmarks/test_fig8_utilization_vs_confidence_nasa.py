"""Figure 8: utilization vs prediction confidence (NASA, balancing),
panels c = 1.0 and c = 1.2 — the NASA companion of Figure 7.
"""

from __future__ import annotations

from repro.experiments.figures import fig8
from benchmarks.conftest import run_figure_once


def test_fig8(benchmark, save_figure):
    result = run_figure_once(benchmark, fig8)
    save_figure(result)

    assert set(result.series) == {"nasa c=1.0", "nasa c=1.2"}
    for rows in result.series.values():
        for _, r in rows:
            assert abs(r.utilized + r.unused + r.lost - 1.0) < 1e-6
    # Higher load utilizes more of the machine.
    util_low = sum(r.utilized for _, r in result.series["nasa c=1.0"])
    util_high = sum(r.utilized for _, r in result.series["nasa c=1.2"])
    assert util_high > util_low
