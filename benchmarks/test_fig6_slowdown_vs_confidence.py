"""Figure 6: average bounded slowdown vs prediction confidence
(balancing; SDSC/NASA/LLNL panels; c = 1.0 and 1.2).

Paper shape: most of the improvement over the a=0 baseline arrives
within the first 10% of confidence; the curve is non-monotone in
between ("little correlation between the value of the confidence and
the overall performance"), but even small confidence beats none.
"""

from __future__ import annotations

from repro.experiments.figures import fig6
from benchmarks.conftest import run_figure_once


def test_fig6(benchmark, save_figure):
    result = run_figure_once(benchmark, fig6)
    save_figure(result)

    assert len(result.series) == 6  # 3 sites x 2 loads
    for label, rows in result.series.items():
        xs = [x for x, _ in rows]
        assert xs[0] == 0.0 and xs[-1] == 1.0 and len(xs) == 11
        # Prediction must not *systematically* hurt: either some
        # confidence level kills no more than a=0 (within one job of
        # seed noise — avoided kills reshuffle packing), or slowdown
        # improved outright.
        kills = [r.job_kills for _, r in rows]
        slowdowns = [r.avg_bounded_slowdown for _, r in rows]
        assert (
            min(kills[1:]) <= kills[0] + 1.0
            or min(slowdowns[1:]) <= slowdowns[0]
        ), label
