"""Ablation: the checkpointing extension (paper §8 future work).

Compares restart-from-scratch against periodic, prediction-driven and
combined checkpointing under one failure trace, quantifying how much of
the fault-aware-scheduling benefit checkpointing alone recovers.
"""

from __future__ import annotations

from repro.checkpoint.model import CheckpointConfig, CheckpointMode
from repro.core.config import SimulationConfig
from repro.core.policies import KrevatPolicy
from repro.core.simulator import simulate
from repro.failures.synthetic import generate_failures
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.workloads.models import SDSC_SP
from repro.workloads.scaling import fit_to_machine
from repro.workloads.synthetic import generate_workload

VARIANTS = {
    "none": CheckpointConfig(mode=CheckpointMode.NONE),
    "periodic": CheckpointConfig(
        mode=CheckpointMode.PERIODIC, interval_s=1800.0, overhead_s=60.0
    ),
    "predictive": CheckpointConfig(
        mode=CheckpointMode.PREDICTIVE, overhead_s=60.0, hit_probability=0.7
    ),
    "both": CheckpointConfig(
        mode=CheckpointMode.BOTH, interval_s=1800.0, overhead_s=60.0,
        hit_probability=0.7,
    ),
}


def _run(ckpt: CheckpointConfig):
    workload = fit_to_machine(generate_workload(SDSC_SP, 300, seed=1), BGL_SUPERNODE_DIMS)
    log = generate_failures(
        BGL_SUPERNODE_DIMS, 40, max(workload.span * 1.5, 3600.0), seed=2
    )
    return simulate(workload, log, KrevatPolicy(), SimulationConfig(checkpoint=ckpt, seed=5))


def test_checkpoint_ablation(benchmark, capsys):
    def sweep():
        return {name: _run(cfg) for name, cfg in VARIANTS.items()}

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[ablation: checkpointing]")
        for name, report in reports.items():
            print(
                f"  {name:<10} slowdown={report.timing.avg_bounded_slowdown:8.2f} "
                f"lost_work={report.timing.total_lost_work / 3600:8.1f} node-h "
                f"restores={report.counters.checkpoint_restores}"
            )
        print()
    # Checkpointing must reduce destroyed work relative to plain restarts.
    assert (
        reports["both"].timing.total_lost_work
        < reports["none"].timing.total_lost_work
    )
    assert reports["predictive"].counters.checkpoint_restores > 0
