"""Appendix 9: partition-finder running-time comparison.

The paper's contribution here is asymptotic: the divisor-driven finder
(``O(M^3 s^3 f(s)^3)``) beats Krevat's POP (``O(M^5)``) which beats the
naive exhaustive search (``O(M^9)``-class).  These benchmarks measure
all four implementations (the fast finder in both its paper-faithful
skip-scan and vectorised forms) on the BG/L-view torus at several job
sizes and occupancies — the timing table is the reproduced artifact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import FastFinder, NaiveFinder, POPFinder
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.geometry.torus import Torus

FINDERS = {
    "naive": NaiveFinder(),
    "pop": POPFinder(),
    "fast-scan": FastFinder(vectorized=False),
    "fast-vector": FastFinder(vectorized=True),
}


def torus_with_fill(fill: float, seed: int = 0) -> Torus:
    t = Torus(BGL_SUPERNODE_DIMS)
    rng = np.random.default_rng(seed)
    t.grid[rng.random(BGL_SUPERNODE_DIMS.as_tuple()) < fill] = 999
    return t


@pytest.mark.parametrize("finder_name", list(FINDERS))
@pytest.mark.parametrize("size", [8, 32, 128])
def test_finder_empty_torus(benchmark, finder_name, size):
    """Empty machine — the regime the appendix states its bounds for."""
    finder = FINDERS[finder_name]
    torus = Torus(BGL_SUPERNODE_DIMS)
    result = benchmark(finder.find_free, torus, size)
    assert result, "empty torus must offer placements"


@pytest.mark.parametrize("finder_name", list(FINDERS))
def test_finder_half_loaded(benchmark, finder_name):
    """Realistic mid-simulation occupancy."""
    finder = FINDERS[finder_name]
    torus = torus_with_fill(0.5)
    benchmark(finder.find_free, torus, 8)


def test_fast_beats_naive():
    """The headline asymptotic claim, as a direct timing assertion."""
    import time

    torus = Torus(BGL_SUPERNODE_DIMS)

    def clock(finder, repeats=5) -> float:
        t0 = time.perf_counter()
        for _ in range(repeats):
            finder.find_free(torus, 64)
        return time.perf_counter() - t0

    assert clock(FastFinder(vectorized=True)) < clock(NaiveFinder())
