"""Figure 5: utilization vs failure rate (SDSC, balancing, a = 0.1),
panels c = 1.0 and c = 1.2.

Paper shape: lost capacity grows with the failure rate; the higher load
converts unused capacity into utilized capacity.
"""

from __future__ import annotations

from repro.experiments.figures import fig5
from benchmarks.conftest import run_figure_once


def test_fig5(benchmark, save_figure):
    result = run_figure_once(benchmark, fig5)
    save_figure(result)

    for label in ("c=1.0", "c=1.2"):
        rows = result.series[label]
        for _, r in rows:
            assert 0.0 <= r.utilized <= 1.0
            assert abs(r.utilized + r.unused + r.lost - 1.0) < 1e-6
        # Lost capacity at the heaviest failure rate exceeds the
        # failure-free level.
        assert rows[-1][1].lost > rows[0][1].lost
    # Higher load leaves less unused capacity on average.
    unused_low = sum(r.unused for _, r in result.series["c=1.0"])
    unused_high = sum(r.unused for _, r in result.series["c=1.2"])
    assert unused_high < unused_low
