"""Ablation: bounded-slowdown denominator (DESIGN.md §5.1).

The paper prints ``t_b = max(t_r, Γ)/min(t_e, Γ)``; we default to the
standard ``max`` denominator and here quantify how far the two metrics
diverge on identical runs — the literal formula inflates every job
longer than Γ=10 s by ``t_e/Γ``.
"""

from __future__ import annotations

from repro.metrics.timing import BoundedSlowdownRule, summarize_timing
from repro.api import SimulationSetup


def _records():
    report = SimulationSetup(
        site="sdsc", n_jobs=250, n_failures=20, policy="balancing",
        parameter=0.1, seed=0,
    ).run()
    return report.records


def test_slowdown_rule_divergence(benchmark, capsys):
    records = benchmark.pedantic(_records, rounds=1, iterations=1)
    standard = summarize_timing(records, rule=BoundedSlowdownRule.STANDARD)
    literal = summarize_timing(records, rule=BoundedSlowdownRule.PAPER_LITERAL)
    with capsys.disabled():
        print(
            f"\n[ablation: slowdown rule] standard={standard.avg_bounded_slowdown:.2f} "
            f"paper-literal={literal.avg_bounded_slowdown:.2f} "
            f"(ratio {literal.avg_bounded_slowdown / standard.avg_bounded_slowdown:.1f}x)\n"
        )
    # The literal formula dominates and by a wide margin on real traces.
    assert literal.avg_bounded_slowdown >= standard.avg_bounded_slowdown
    assert literal.avg_bounded_slowdown > 2 * standard.avg_bounded_slowdown
