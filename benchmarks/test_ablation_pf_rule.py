"""Ablation: partition failure-probability rule (DESIGN.md §5.2).

The paper states ``P_f = max_n p_n^f`` in §4.1 but
``P_f = 1 - Π(1 - p_n^f)`` in §5.2.1.  The two coincide unless several
flagged nodes land in one candidate partition; this bench runs the same
sweep cell under both rules and reports the deltas.
"""

from __future__ import annotations

from repro.experiments.sweep import SweepPoint, run_point
from repro.prediction.base import PartitionFailureRule


def _run(rule: PartitionFailureRule):
    return run_point(
        SweepPoint(
            site="sdsc", n_jobs=300, load_scale=1.0, n_failures=24,
            policy="balancing", parameter=0.5, pf_rule=rule,
        ),
        seeds=(0, 1, 2),
    )


def test_pf_rule_ablation(benchmark, capsys):
    def both():
        return (
            _run(PartitionFailureRule.MAX),
            _run(PartitionFailureRule.COMPLEMENT_PRODUCT),
        )

    max_rule, product_rule = benchmark.pedantic(both, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[ablation: P_f rule] max: slowdown={max_rule.avg_bounded_slowdown:.1f} "
            f"kills={max_rule.job_kills:.1f} | complement-product: "
            f"slowdown={product_rule.avg_bounded_slowdown:.1f} "
            f"kills={product_rule.job_kills:.1f}\n"
        )
    # Both are fault-aware: neither may kill more jobs than the
    # fault-oblivious baseline on the same cells.
    baseline = run_point(
        SweepPoint("sdsc", 300, 1.0, 24, "balancing", 0.0), seeds=(0, 1, 2)
    )
    assert max_rule.job_kills <= baseline.job_kills + 1e-9
    assert product_rule.job_kills <= baseline.job_kills + 1e-9
