"""Figure 9: average bounded slowdown vs prediction accuracy
(tie-breaking; SDSC/NASA/LLNL panels; c = 1.0 and 1.2).

Paper shape: moderate gains — the tie-breaking algorithm only acts on
ties, so it helps less than balancing but never trades away free space;
at a=0 it is exactly the Krevat baseline.
"""

from __future__ import annotations

from repro.experiments.figures import fig9
from benchmarks.conftest import run_figure_once


def test_fig9(benchmark, save_figure):
    result = run_figure_once(benchmark, fig9)
    save_figure(result)

    assert len(result.series) == 6
    for label, rows in result.series.items():
        kills = [r.job_kills for _, r in rows]
        # Accuracy only changes choices on ties; it must not add a
        # systematic penalty (one job of seed noise tolerated — a
        # re-steered placement reshuffles later packing).
        assert min(kills) <= kills[0] + 1.0, label
