"""Figure 7: utilization vs prediction confidence (SDSC, balancing),
panels c = 1.0 and c = 1.2.

Paper shape: as confidence rises, wasted (lost) work converts to useful
work, more visibly at high load.
"""

from __future__ import annotations

from repro.experiments.figures import fig7
from benchmarks.conftest import run_figure_once


def test_fig7(benchmark, save_figure):
    result = run_figure_once(benchmark, fig7)
    save_figure(result)

    for label, rows in result.series.items():
        for _, r in rows:
            assert abs(r.utilized + r.unused + r.lost - 1.0) < 1e-6
        # Confident prediction should not lose more capacity than no
        # prediction (averaged over the upper half of the axis).
        lost_none = rows[0][1].lost
        lost_high = sum(r.lost for _, r in rows[6:]) / len(rows[6:])
        assert lost_high <= lost_none * 1.25
