"""Figure 10: utilization vs prediction accuracy (LLNL, tie-breaking),
panels c = 1.0 and c = 1.2.

Paper shape: like the balancing results, higher load shifts unused
capacity into useful work; the tie-breaking improvements in useful work
are smaller than balancing's.
"""

from __future__ import annotations

from repro.experiments.figures import fig10
from benchmarks.conftest import run_figure_once


def test_fig10(benchmark, save_figure):
    result = run_figure_once(benchmark, fig10)
    save_figure(result)

    assert set(result.series) == {"llnl c=1.0", "llnl c=1.2"}
    for rows in result.series.values():
        for _, r in rows:
            assert abs(r.utilized + r.unused + r.lost - 1.0) < 1e-6
    unused_low = sum(r.unused for _, r in result.series["llnl c=1.0"])
    unused_high = sum(r.unused for _, r in result.series["llnl c=1.2"])
    assert unused_high < unused_low
