"""Ablation: backfilling variant (DESIGN.md §5.3).

Krevat's scheduler backfills but the paper does not say how; this bench
compares strict FCFS, EASY (shadow-reservation) and aggressive
backfilling on a failure-free workload — isolating the queueing policy
from the fault machinery.
"""

from __future__ import annotations

from repro.core.config import BackfillMode, SimulationConfig
from repro.core.policies import KrevatPolicy
from repro.core.simulator import simulate
from repro.failures.events import FailureLog
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.workloads.models import SDSC_SP
from repro.workloads.scaling import fit_to_machine
from repro.workloads.synthetic import generate_workload


def _run(mode: BackfillMode):
    workload = fit_to_machine(generate_workload(SDSC_SP, 400, seed=0), BGL_SUPERNODE_DIMS)
    log = FailureLog(BGL_SUPERNODE_DIMS.volume)
    return simulate(workload, log, KrevatPolicy(), SimulationConfig(backfill=mode))


def test_backfill_ablation(benchmark, capsys):
    def sweep():
        return {mode: _run(mode) for mode in BackfillMode}

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[ablation: backfill]")
        for mode, report in reports.items():
            print(
                f"  {mode.value:<10} slowdown={report.timing.avg_bounded_slowdown:9.2f} "
                f"wait={report.timing.avg_wait:8.0f}s "
                f"backfills={report.counters.backfills}"
            )
        print()
    none = reports[BackfillMode.NONE]
    easy = reports[BackfillMode.EASY]
    aggressive = reports[BackfillMode.AGGRESSIVE]
    # Backfilling must never lose jobs and should cut waits sharply.
    for report in reports.values():
        assert report.timing.n_jobs == 400
    assert easy.timing.avg_wait < none.timing.avg_wait
    assert aggressive.counters.backfills >= easy.counters.backfills
