"""Gate the cost of disabled tracing against the recorded baseline.

The observability subsystem must be free when off: ``sim_trace_off``
exercises the full simulator with the null recorder and no metrics
registry, exactly as production sweeps run.  This script compares a
fresh ``bench_core`` result file against the committed
``BENCH_core.json`` and fails when the trace-off path regressed by more
than the tolerance (default 3%).

Raw wall-clock rates are not comparable across machines or harness
scales, so the comparison is *normalized*: within each result file the
``sim_trace_off`` rate is divided by the same file's
``placement_index_build`` rate.  Both benches do a fixed amount of work
per operation regardless of ``--scale`` (see ``TRACE_BENCH_JOBS`` in
``bench_core.py``), so the ratio cancels machine speed and harness
scale to first order.  Pass ``--absolute`` when both files come from
the same machine at the same scale.

Usage::

    python benchmarks/perf/check_trace_overhead.py \
        --fresh BENCH_ci.json [--baseline BENCH_core.json] [--tolerance 0.03]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Benchmark whose throughput is gated.
TARGET_BENCH = "sim_trace_off"
#: Within-file normalizer cancelling machine speed and harness scale
#: (fixed work per op at every scale, like the target bench).
REFERENCE_BENCH = "placement_index_build"


def load_rates(path: Path) -> dict[str, float]:
    """Map bench name -> cells_per_s from one bench_core result file."""
    try:
        records = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: bench result file not found: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")
    rates: dict[str, float] = {}
    for record in records:
        rate = record.get("cells_per_s")
        if isinstance(rate, (int, float)) and rate > 0:
            rates[record["bench"]] = float(rate)
    return rates


def score(rates: dict[str, float], path: Path, absolute: bool) -> float:
    """The gated quantity: raw or reference-normalized trace-off rate."""
    if TARGET_BENCH not in rates:
        sys.exit(
            f"error: {path} has no {TARGET_BENCH!r} benchmark — "
            f"regenerate it with a bench_core that measures tracing cost"
        )
    if absolute:
        return rates[TARGET_BENCH]
    if REFERENCE_BENCH not in rates:
        sys.exit(f"error: {path} has no {REFERENCE_BENCH!r} benchmark")
    return rates[TARGET_BENCH] / rates[REFERENCE_BENCH]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="bench_core output from the run under test",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_core.json",
        help="recorded baseline (default: committed BENCH_core.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.03,
        help="maximum allowed relative regression (default 0.03 = 3%%)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw rates (same machine, same scale only)",
    )
    args = parser.parse_args(argv)

    fresh = score(load_rates(args.fresh), args.fresh, args.absolute)
    base = score(load_rates(args.baseline), args.baseline, args.absolute)
    regression = (base - fresh) / base
    mode = "absolute" if args.absolute else f"normalized by {REFERENCE_BENCH}"
    print(f"trace-off throughput ({mode}):")
    print(f"  baseline {args.baseline}: {base:.6g}")
    print(f"  fresh    {args.fresh}: {fresh:.6g}")
    print(f"  regression: {regression * 100:+.2f}% (tolerance {args.tolerance * 100:.1f}%)")
    if regression > args.tolerance:
        print(
            f"FAIL: disabled-tracing path is {regression * 100:.2f}% slower "
            f"than the recorded baseline"
        )
        return 1
    print("OK: disabled-tracing overhead within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
