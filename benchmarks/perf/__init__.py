"""Perf-trajectory microbenchmarks (see ``bench_core.py``)."""
