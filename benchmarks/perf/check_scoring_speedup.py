"""Gate the batch scoring kernel's speedup over the scalar oracle.

Two checks against one fresh ``bench_core`` result file:

1. **Speedup** — within the fresh file,
   ``scored_candidates_batch / scored_candidates_scalar`` must be at
   least ``--min-ratio`` (default 2×).  Both benches run in the same
   process on the same fixture, so the ratio is machine- and
   scale-independent.
2. **Non-regression** — the batch rate, normalized by the same file's
   ``placement_index_build`` rate (the within-file normalizer
   ``check_trace_overhead.py`` established), must not fall more than
   ``--tolerance`` below the committed baseline's normalized batch rate.
   This keeps the speedup from silently eroding in later PRs.  The
   tolerance is deliberately loose (15%): the ratio check above is the
   real gate, and reduced-scale CI runs of these benches sit near the
   noise floor.

Usage::

    python benchmarks/perf/check_scoring_speedup.py \
        --fresh BENCH_ci.json [--baseline BENCH_core.json] \
        [--min-ratio 2.0] [--tolerance 0.15]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

BATCH_BENCH = "scored_candidates_batch"
SCALAR_BENCH = "scored_candidates_scalar"
#: Within-file normalizer cancelling machine speed and harness scale.
REFERENCE_BENCH = "placement_index_build"


def load_rates(path: Path) -> dict[str, float]:
    """Map bench name -> cells_per_s from one bench_core result file."""
    try:
        records = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: bench result file not found: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")
    rates: dict[str, float] = {}
    for record in records:
        rate = record.get("cells_per_s")
        if isinstance(rate, (int, float)) and rate > 0:
            rates[record["bench"]] = float(rate)
    return rates


def require(rates: dict[str, float], bench: str, path: Path) -> float:
    if bench not in rates:
        sys.exit(
            f"error: {path} has no {bench!r} benchmark — regenerate it "
            f"with a bench_core that measures candidate scoring"
        )
    return rates[bench]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="bench_core output from the run under test",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_core.json",
        help="recorded baseline (default: committed BENCH_core.json)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=2.0,
        help="required batch/scalar speedup within the fresh file (default 2.0)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="maximum allowed normalized batch-rate regression vs the "
        "baseline (default 0.15 = 15%%)",
    )
    args = parser.parse_args(argv)

    fresh = load_rates(args.fresh)
    ratio = require(fresh, BATCH_BENCH, args.fresh) / require(
        fresh, SCALAR_BENCH, args.fresh
    )
    print(f"batch/scalar scoring speedup ({args.fresh}): {ratio:.2f}x")
    if ratio < args.min_ratio:
        print(
            f"FAIL: batch kernel is only {ratio:.2f}x the scalar oracle "
            f"(required {args.min_ratio:.2f}x)"
        )
        return 1
    print(f"OK: speedup >= {args.min_ratio:.2f}x")

    baseline = load_rates(args.baseline)
    fresh_norm = fresh[BATCH_BENCH] / require(fresh, REFERENCE_BENCH, args.fresh)
    base_norm = require(baseline, BATCH_BENCH, args.baseline) / require(
        baseline, REFERENCE_BENCH, args.baseline
    )
    regression = (base_norm - fresh_norm) / base_norm
    print(f"normalized batch rate ({BATCH_BENCH} / {REFERENCE_BENCH}):")
    print(f"  baseline {args.baseline}: {base_norm:.6g}")
    print(f"  fresh    {args.fresh}: {fresh_norm:.6g}")
    print(
        f"  regression: {regression * 100:+.2f}% "
        f"(tolerance {args.tolerance * 100:.1f}%)"
    )
    if regression > args.tolerance:
        print(
            f"FAIL: normalized batch scoring rate is {regression * 100:.2f}% "
            f"below the recorded baseline"
        )
        return 1
    print("OK: batch scoring rate within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
