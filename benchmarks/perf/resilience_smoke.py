"""End-to-end resilience smoke: chaos, checkpoint, resume, verify.

The CI ``resilience-smoke`` job runs this script to rehearse the full
failure story on a small real sweep:

1. compute a clean **serial reference** (no resilience machinery);
2. run the same grid under **forced chaos** — one cell kills its pool
   worker on its first attempt, one poison cell raises on *every*
   attempt — with a checkpoint directory, so the run finishes partial
   (poison cell quarantined, everything else durably checkpointed);
3. **resume** with chaos off against the same directory, which restores
   every checkpointed cell and computes only what the quarantine cost;
4. assert the resumed results are **bitwise identical** (exact float
   equality) to the serial reference, that checkpoints were actually
   hit, and that the quarantine document named exactly the poison cell.

Exit code 0 means the whole chain held.  ``quarantine.json`` is left in
the checkpoint directory for CI to upload as an artifact.

Usage::

    python benchmarks/perf/resilience_smoke.py [--checkpoint-dir DIR]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import repro.experiments.sweep as sweep_mod
from repro.experiments.sweep import SweepPoint, run_sweep, run_sweep_outcome
from repro.resilience import ChaosConfig, RetryPolicy

#: Small enough for CI seconds, large enough for two policies x two
#: points x two seeds of real simulation.
POINTS = [
    SweepPoint("nasa", 40, 1.0, 4, "krevat", 0.0),
    SweepPoint("nasa", 40, 1.0, 4, "balancing", 0.3),
    SweepPoint("sdsc", 30, 1.0, 2, "tiebreak", 0.5),
]
SEEDS = (0, 1)

#: The cell that kills its worker once (transient crash) and the cell
#: that raises on every attempt (poison).
KILL_CELL = (0, 0)
POISON_CELL = (1, 1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="checkpoint directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)
    checkpoint_dir = Path(
        args.checkpoint_dir or tempfile.mkdtemp(prefix="resilience-smoke-")
    )
    policy = RetryPolicy(base_delay_s=0.01, jitter_fraction=0.0, max_attempts=3)

    print(f"[1/3] serial reference: {len(POINTS)} points x {len(SEEDS)} seeds")
    reference = run_sweep(POINTS, SEEDS, workers=1)
    sweep_mod._result_cache.clear()

    chaos = ChaosConfig(
        kill_cells=(KILL_CELL,),
        kill_attempts=1,
        raise_cells=(POISON_CELL,),
        raise_attempts=99,
    )
    print(
        f"[2/3] chaos run: kill {KILL_CELL} (transient), "
        f"poison {POISON_CELL}; checkpoints -> {checkpoint_dir}"
    )
    chaotic = run_sweep_outcome(
        POINTS,
        SEEDS,
        workers=2,
        checkpoint_dir=checkpoint_dir,
        retry=policy,
        chaos=chaos,
    )
    print(f"      {chaotic.stats.summary_line()}")
    quarantined = {(e.point_index, e.seed_index) for e in chaotic.quarantined}
    if quarantined != {POISON_CELL}:
        print(f"FAIL: expected quarantine {{{POISON_CELL}}}, got {quarantined}")
        return 1
    if chaotic.complete:
        print("FAIL: chaos run reported complete despite a poison cell")
        return 1
    if not (checkpoint_dir / "quarantine.json").is_file():
        print("FAIL: quarantine.json was not written")
        return 1

    sweep_mod._result_cache.clear()
    print("[3/3] resume with chaos off against the same checkpoint dir")
    resumed = run_sweep_outcome(
        POINTS,
        SEEDS,
        workers=2,
        checkpoint_dir=checkpoint_dir,
        retry=policy,
    )
    print(f"      {resumed.stats.summary_line()}")

    n_cells = len(POINTS) * len(SEEDS)
    failures = []
    if resumed.results != reference:
        failures.append(
            "resumed results are not bitwise-identical to the serial reference"
        )
    if not resumed.complete:
        failures.append("resumed run did not complete")
    if resumed.stats.checkpoint_hits != n_cells - 1:
        failures.append(
            f"expected {n_cells - 1} checkpoint hits, "
            f"got {resumed.stats.checkpoint_hits}"
        )
    if resumed.stats.cells_computed != 1:
        failures.append(
            f"expected exactly the quarantined cell recomputed, "
            f"got {resumed.stats.cells_computed}"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print(
        "OK: killed/poisoned sweep resumed bitwise-identical to serial "
        f"({n_cells} cells, {resumed.stats.checkpoint_hits} restored)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
