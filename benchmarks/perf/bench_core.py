"""Core perf-trajectory harness: microbenches + serial-vs-parallel sweep.

Times the scheduler's hot kernels (PlacementIndex build, incremental MFP
queries, shadow-time — both the production engine and the naive
reference, so the caching win stays visible), the three partition
finders, and one end-to-end sweep executed serially and in parallel.
Results land in ``BENCH_core.json`` at the repo root so subsequent PRs
have a machine-readable perf trajectory to regress against.

Record schema (one object per benchmark)::

    {"bench": str, "wall_s": float, "cells_per_s": float,
     "workers": int, "git_rev": str}

``cells_per_s`` is operations/second for microbenches and simulation
cells/second for the sweep benches; ``wall_s`` is the best-of-repeats
wall time of one measured batch.  Sweep records carry an extra
``mode`` key recording how the executor actually ran the cells
(``serial``/``parallel``/``warm``/``queue``), and their ``workers``
field is the executor's *actual* ``stats.workers_used`` — 1 whenever
the auto-serial cutover refused the pool — never the requested count.
``check_sweep_speedup.py`` gates on the sweep pair, and
``check_serve_throughput.py`` gates on ``serve_inproc_submit``.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_core.py [--scale smoke|default]
                                                        [--out PATH] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:  # direct-script convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.allocation.mfp import PlacementIndex
from repro.allocation.registry import get_finder
from repro.core.backfill import ShadowTimeEngine, shadow_time_naive
from repro.core.jobstate import JobState
from repro.experiments import parallel as parallel_mod
from repro.experiments import pool as pool_mod
from repro.experiments import sweep as sweep_mod
from repro.experiments.sweep import SweepPoint, run_sweep_outcome
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.geometry.torus import Torus
from repro.workloads.job import Job

D = BGL_SUPERNODE_DIMS

#: Head sizes the shadow benches query per pass (mixed cheap/expensive).
SHADOW_SIZES = (8, 16, 32, 64, 128)
#: Sizes the finder benches enumerate per pass.
FINDER_SIZES = (4, 8, 16, 32)
#: Sizes the candidate-scoring benches score per pass.
SCORING_SIZES = (4, 8, 16, 32)
#: Sizes the index-maintenance benches query after every mutation.
INDEX_UPDATE_SIZES = (4, 8, 16)


@dataclass(frozen=True)
class Scale:
    """Iteration counts for one harness scale."""

    micro_number: int       # ops per measured batch
    repeats: int            # batches; best wall time wins
    sweep_points: int       # points in the end-to-end sweep grid
    sweep_seeds: int
    sweep_jobs: int         # jobs per simulation cell
    master_failures: int    # master failure-log size for the sweep


SCALES = {
    "smoke": Scale(
        micro_number=30,
        repeats=2,
        sweep_points=4,
        # Two seeds keep even the smoke grid (8 cells) above the bench's
        # lowered cutover, so sweep_parallel really runs mode=warm.
        sweep_seeds=2,
        sweep_jobs=25,
        master_failures=64,
    ),
    "default": Scale(
        micro_number=200,
        repeats=3,
        sweep_points=8,
        sweep_seeds=2,
        sweep_jobs=120,
        master_failures=1024,
    ),
}


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def best_of(fn, repeats: int) -> float:
    """Best wall time of ``repeats`` runs of ``fn`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# fixtures shared by the microbenches
# ----------------------------------------------------------------------

def loaded_torus(fill: float = 0.5, seed: int = 0) -> Torus:
    torus = Torus(D)
    rng = np.random.default_rng(seed)
    job_id = 0
    # Allocate real partitions (shadow replay needs the allocation map).
    from repro.testing.random_state import random_partition

    while torus.free_count > (1.0 - fill) * D.volume:
        part = random_partition(D, rng)
        if torus.is_free(part):
            torus.allocate(job_id, part)
            job_id += 1
    return torus


def running_states(torus: Torus) -> list[JobState]:
    states = []
    for i, (job_id, partition) in enumerate(torus.allocations()):
        js = JobState(Job(job_id, 0.0, partition.size, 100.0, 100.0))
        js.dispatch(0.0, 100.0)
        js.est_finish = 50.0 + 25.0 * i
        states.append(js)
    return states


# ----------------------------------------------------------------------
# benchmark bodies
# ----------------------------------------------------------------------

def bench_placement_index_build(scale: Scale):
    torus = loaded_torus()
    n = scale.micro_number * 10

    def run():
        for _ in range(n):
            PlacementIndex(torus)

    return run, n


def bench_mfp_excluding(scale: Scale):
    torus = loaded_torus(0.3)
    index = PlacementIndex(torus)
    candidates = index.candidates(8)[:16]
    index.mfp_size()
    n = scale.micro_number * 10

    def run():
        for _ in range(n):
            for p in candidates:
                index.mfp_excluding(p)

    return run, n * len(candidates)


def _bench_scored_candidates(scale: Scale, batch: bool):
    """Full candidate scoring, scalar oracle vs batch kernel.

    A fresh index per pass: both paths cache their per-size results, so
    reusing one index would time the first iteration only.  The pair
    feeds ``check_scoring_speedup.py``, which gates on their ratio.
    The lightly loaded fixture maximises the candidate count — the
    post-drain machine states where scoring dominates a scheduler pass.
    """
    torus = loaded_torus(0.2, seed=3)
    n = scale.micro_number

    def run():
        for _ in range(n):
            index = PlacementIndex(torus)
            for size in SCORING_SIZES:
                if batch:
                    index.batch_mfp_losses(size)
                else:
                    index.scored_candidates(size)

    return run, n * len(SCORING_SIZES)


def bench_shadow_time_engine(scale: Scale):
    torus = loaded_torus()
    running = running_states(torus)
    n = scale.micro_number

    def run():
        # Fresh engine per pass: measures scratch-reuse + the per-pass
        # cache exactly as one scheduler pass would see them.
        for _ in range(n):
            engine = ShadowTimeEngine(torus)
            for size in SHADOW_SIZES:
                engine.shadow_time(running, size, 0.0)
                engine.shadow_time(running, size, 10.0)  # cache hit

    return run, n * 2 * len(SHADOW_SIZES)


def bench_shadow_time_naive(scale: Scale):
    torus = loaded_torus()
    running = running_states(torus)
    n = scale.micro_number

    def run():
        for _ in range(n):
            for size in SHADOW_SIZES:
                shadow_time_naive(torus, running, size, 0.0)
                shadow_time_naive(torus, running, size, 10.0)

    return run, n * 2 * len(SHADOW_SIZES)


def _bench_finder(name: str, scale: Scale):
    torus = loaded_torus(0.4, seed=2)
    finder = get_finder(name)
    n = scale.micro_number

    def run():
        for _ in range(n):
            for size in FINDER_SIZES:
                finder.find_free(torus, size)

    return run, n * len(FINDER_SIZES)


def _bench_index_update(scale: Scale, incremental: bool):
    """Index maintenance across a mutation churn, patch vs rebuild.

    Each step allocates or frees one box, brings the index up to date
    (journal replay for the incremental path, from-scratch build for the
    oracle), and then performs the queries one scheduler pass issues —
    ``mfp_size`` plus batch losses for a few sizes.  The query half is
    the point: a bare rebuild is cheap, but it discards every lazily
    derived grid and probe integral, and re-deriving those is what the
    incremental index's O(box) patch avoids.  The pair feeds
    ``check_sim_speedup.py``.
    """
    from repro.allocation.incremental import IncrementalPlacementIndex

    torus = loaded_torus(0.3, seed=5)
    part = PlacementIndex(torus).candidate_batch(8).partition(0)
    index = IncrementalPlacementIndex(torus) if incremental else None
    n = scale.micro_number
    job_id = 10**6

    def run():
        for _ in range(n):
            for mutate in (
                lambda: torus.allocate(job_id, part),
                lambda: torus.release(job_id),
            ):
                mutate()
                if index is not None:
                    index.apply(
                        torus.journal_since(index.torus_version), torus.version
                    )
                    idx = index
                else:
                    idx = PlacementIndex(torus)
                idx.mfp_size()
                for size in INDEX_UPDATE_SIZES:
                    idx.batch_mfp_losses(size)

    return run, 2 * n


#: Fixed workload for the tracing-cost benches — deliberately NOT scale
#: dependent, so ``sim_trace_off / placement_index_build`` is a
#: dimensionless ratio comparable across scales and (to first order)
#: machines; ``check_trace_overhead.py`` gates on it.
TRACE_BENCH_JOBS = 100
TRACE_BENCH_FAILURES = 24


def bench_sim_trace(scale: Scale, trace: bool):
    """End-to-end single simulation with tracing on or off.

    The off/on pair quantifies the observability subsystem's cost: the
    ``off`` variant is the production path (null recorder, no metrics)
    and must track the pre-instrumentation throughput;
    ``check_trace_overhead.py`` gates on it.  Workload/failures are
    pre-built so only the engine is timed.
    """
    from repro.api import SimulationSetup
    from repro.core.config import SimulationConfig
    from repro.core.policies.registry import make_policy
    from repro.core.simulator import Simulator

    config = SimulationConfig(trace=trace)
    setup = SimulationSetup(
        site="sdsc",
        n_jobs=TRACE_BENCH_JOBS,
        n_failures=TRACE_BENCH_FAILURES,
        policy="balancing",
        parameter=0.1,
        seed=0,
        config=config,
    )
    workload = setup.build_workload()
    failures = setup.build_failures(workload)

    def run():
        policy = make_policy(
            "balancing",
            failure_log=failures,
            parameter=0.1,
            pf_rule=setup.pf_rule,
            seed=setup.seed + 2,
        )
        Simulator(workload, failures, policy, config).run()

    return run, 1


def bench_sim_modes(scale: Scale, incremental: bool, batch: bool):
    """End-to-end simulation with the core's fast/oracle modes pinned.

    ``sim_event_batched`` (incremental index + same-timestamp event
    batching, the production defaults) against ``sim_event_unbatched``
    (from-scratch index rebuild after *every* event handler — the
    retained oracle semantics).  Same fixed workload as the tracing
    pair, so all four sim benches are mutually comparable;
    ``check_sim_speedup.py`` gates on the within-file ratio.
    """
    from repro.api import SimulationSetup
    from repro.core.config import SimulationConfig
    from repro.core.policies.registry import make_policy
    from repro.core.simulator import Simulator

    config = SimulationConfig(
        incremental_index=incremental, batch_events=batch
    )
    setup = SimulationSetup(
        site="sdsc",
        n_jobs=TRACE_BENCH_JOBS,
        n_failures=TRACE_BENCH_FAILURES,
        policy="balancing",
        parameter=0.1,
        seed=0,
        config=config,
    )
    workload = setup.build_workload()
    failures = setup.build_failures(workload)

    def run():
        policy = make_policy(
            "balancing",
            failure_log=failures,
            parameter=0.1,
            pf_rule=setup.pf_rule,
            seed=setup.seed + 2,
        )
        Simulator(workload, failures, policy, config).run()

    return run, 1


#: Serve-bench overload fixture: size-64 jobs against a 32-job engine
#: cap, logical clock.  Caps fill almost immediately, so the bench
#: measures the sustained submission path — admission bookkeeping plus
#: the bounded-queue reject fast path — which is exactly the regime the
#: >10k submissions/s bar (check_serve_throughput.py) is about.  Size-64
#: jobs keep the simulator passes cheap; a machine packed with tiny jobs
#: would time compaction planning instead of the service.
SERVE_BENCH_JOB_SIZE = 64
SERVE_BENCH_ENGINE_CAP = 32
SERVE_BENCH_TENANT_CAP = 64


def _serve_engine():
    from repro.api import SimulationSetup
    from repro.serve.engine import ServeEngine

    return ServeEngine.from_setup(
        SimulationSetup(site="sdsc", n_jobs=10, seed=0),
        clock="logical",
        tenant_cap=SERVE_BENCH_TENANT_CAP,
        engine_cap=SERVE_BENCH_ENGINE_CAP,
    )


def _serve_messages(n: int) -> list[dict]:
    return [
        {
            "op": "submit",
            "id": i,
            "size": SERVE_BENCH_JOB_SIZE,
            "runtime": 1e6,
        }
        for i in range(n)
    ]


def bench_serve_inproc(scale: Scale):
    """Submission throughput straight into the engine (no transport)."""
    from repro.serve.client import InprocClient

    n = scale.micro_number * 100
    messages = _serve_messages(n)

    def run():
        client = InprocClient(_serve_engine())
        client.request_many(messages)

    return run, n


def bench_serve_tcp(scale: Scale):
    """Submission throughput over the asyncio TCP server, pipelined.

    Each pass stands up a fresh service thread, replays the overload
    fixture with 64 requests in flight, and shuts the server down; the
    spin-up is inside the timed region but is amortised over thousands
    of submissions.
    """
    import tempfile
    import threading

    from repro.serve.client import SocketClient
    from repro.serve.service import run_service

    n = scale.micro_number * 50
    messages = _serve_messages(n)
    depth = 64

    def run():
        with tempfile.TemporaryDirectory() as tmp:
            ready = Path(tmp) / "ready"
            engine = _serve_engine()
            thread = threading.Thread(
                target=run_service,
                args=(engine,),
                kwargs={"ready_file": ready},
                daemon=True,
            )
            thread.start()
            while not ready.exists():
                time.sleep(0.005)
            with SocketClient.connect(ready.read_text().strip()) as client:
                for i in range(0, n, depth):
                    client.request_many(messages[i : i + depth])
                client.shutdown()
            thread.join(timeout=30.0)

    return run, n


def _sweep_grid(scale: Scale) -> tuple[list[SweepPoint], tuple[int, ...]]:
    points = [
        SweepPoint("sdsc", scale.sweep_jobs, 1.0, 2 * i, "balancing", 0.1)
        for i in range(scale.sweep_points)
    ]
    return points, tuple(range(scale.sweep_seeds))


def _clear_sweep_caches() -> None:
    sweep_mod._result_cache.clear()
    sweep_mod._workload_cache.clear()
    sweep_mod._master_log_cache.clear()


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------

def run_benchmarks(scale_name: str, workers: int, out_path: Path) -> list[dict]:
    scale = SCALES[scale_name]
    rev = git_rev()
    records: list[dict] = []

    def record(
        bench: str, wall_s: float, ops: int, n_workers: int = 1, **extra
    ) -> None:
        records.append(
            {
                "bench": bench,
                "wall_s": round(wall_s, 6),
                "cells_per_s": round(ops / wall_s, 3) if wall_s > 0 else None,
                "workers": n_workers,
                "git_rev": rev,
                **extra,
            }
        )
        suffix = "".join(f"  {k}={v}" for k, v in extra.items())
        print(
            f"  {bench:<24} wall={wall_s:9.4f}s  "
            f"rate={ops / wall_s if wall_s > 0 else float('inf'):12.1f}/s  "
            f"workers={n_workers}{suffix}"
        )

    print(f"bench_core [{scale_name}] rev={rev}")
    micro = [
        ("placement_index_build", bench_placement_index_build),
        ("mfp_excluding", bench_mfp_excluding),
        ("scored_candidates_scalar", lambda s: _bench_scored_candidates(s, False)),
        ("scored_candidates_batch", lambda s: _bench_scored_candidates(s, True)),
        ("shadow_time_engine", bench_shadow_time_engine),
        ("shadow_time_naive", bench_shadow_time_naive),
        ("finder_naive", lambda s: _bench_finder("naive", s)),
        ("finder_pop", lambda s: _bench_finder("pop", s)),
        ("finder_fast", lambda s: _bench_finder("fast", s)),
        ("index_incremental_update", lambda s: _bench_index_update(s, True)),
        ("index_rebuild_oracle", lambda s: _bench_index_update(s, False)),
    ]
    for name, factory in micro:
        run, ops = factory(scale)
        record(name, best_of(run, scale.repeats), ops)

    # Observability cost: one full simulation, tracing off vs on.
    for trace in (False, True):
        run, ops = bench_sim_trace(scale, trace)
        record(
            "sim_trace_on" if trace else "sim_trace_off",
            best_of(run, scale.repeats),
            ops,
        )

    # Simulator-core modes: incremental+batched vs per-event rebuild.
    for name, incremental, batch in (
        ("sim_event_batched", True, True),
        ("sim_event_unbatched", False, False),
    ):
        run, ops = bench_sim_modes(scale, incremental, batch)
        record(name, best_of(run, scale.repeats), ops)

    # Service submission path: in-process (the CI throughput bar) and
    # over the TCP transport, both on the overload fixture.
    for name, factory in (
        ("serve_inproc_submit", bench_serve_inproc),
        ("serve_tcp_submit", bench_serve_tcp),
    ):
        run, ops = factory(scale)
        record(name, best_of(run, scale.repeats), ops)

    # End-to-end sweep, serial then warm-pool parallel, equivalence-
    # checked.  ``workers`` in each record is the executor's actual
    # stats.workers_used (1 when the cutover refused the pool), and
    # ``mode`` is what really ran — never the requested configuration.
    points, seeds = _sweep_grid(scale)
    n_cells = len(points) * len(seeds)
    sweep_mod.MASTER_FAILURE_COUNT = scale.master_failures
    _clear_sweep_caches()
    start = time.perf_counter()
    serial_outcome = run_sweep_outcome(points, seeds, workers=1)
    record(
        "sweep_serial",
        time.perf_counter() - start,
        n_cells,
        n_workers=serial_outcome.stats.workers_used,
        mode=serial_outcome.stats.mode,
    )
    serial = serial_outcome.results

    # The parallel bench is the warm-pool large-grid fixture that
    # check_sweep_speedup.py gates on: the cutover is lowered so the
    # grid genuinely exercises the pool even at smoke scale, and the
    # pool is pre-spawned so the record measures the steady state a
    # figure regeneration (many sweeps, one pool) actually sees.
    parallel_workers = max(2, workers)
    pool_mod.get_warm_pool().ensure(parallel_workers)
    _clear_sweep_caches()
    start = time.perf_counter()
    parallel_outcome = run_sweep_outcome(
        points, seeds, workers=parallel_workers, min_cells_per_worker=2
    )
    record(
        "sweep_parallel",
        time.perf_counter() - start,
        n_cells,
        n_workers=parallel_outcome.stats.workers_used,
        mode=parallel_outcome.stats.mode,
        chunk_size=parallel_outcome.stats.chunk_size,
        pool_reused=parallel_outcome.stats.pool_reused,
    )
    parallel = parallel_outcome.results
    pool_mod.shutdown_warm_pool()
    if serial != parallel:
        raise AssertionError(
            "serial and parallel sweeps disagree — equivalence broken"
        )
    print("  serial/parallel results identical: ok")

    out_path.write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {out_path} ({len(records)} benchmarks)")
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="default")
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_core.json",
        help="output path (default: BENCH_core.json at the repo root)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for the parallel sweep bench (default: cores-1, min 2)",
    )
    args = parser.parse_args(argv)
    workers = (
        args.workers
        if args.workers is not None
        else parallel_mod.default_workers()
    )
    run_benchmarks(args.scale, workers, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
