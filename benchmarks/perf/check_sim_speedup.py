"""Gate the incremental/event-batched simulator core's speedup.

Three checks against one fresh ``bench_core`` result file:

1. **Speedup vs the pre-incremental baseline** — the fresh
   ``sim_trace_off`` rate, normalized by the same file's
   ``placement_index_build`` rate (the within-file normalizer the other
   perf gates use; it cancels machine speed and harness scale), must be
   at least ``--min-speedup`` (default 5×) the recorded
   *pre-optimization* normalized rate.  That reference is pinned below
   rather than read from ``BENCH_core.json``: the committed file is
   regenerated whenever the core gets faster, while this gate must keep
   measuring against the state of the tree before the incremental index
   and event batching landed.
2. **Mode ratio** — within the fresh file, ``sim_event_batched`` must
   be at least ``--min-ratio`` (default 3×) ``sim_event_unbatched``
   (the per-event rebuild oracle).  Deliberately looser than check 1:
   single-simulation benches at CI's reduced scale sit near the noise
   floor, and check 1 is the real gate.
3. **Non-regression** — the normalized ``sim_event_batched`` rate must
   not fall more than ``--tolerance`` below the committed baseline's,
   so the win cannot silently erode in later PRs.

Usage::

    python benchmarks/perf/check_sim_speedup.py \
        --fresh BENCH_ci.json [--baseline BENCH_core.json] \
        [--min-speedup 5.0] [--min-ratio 3.0] [--tolerance 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

BATCHED_BENCH = "sim_event_batched"
ORACLE_BENCH = "sim_event_unbatched"
TRACKED_BENCH = "sim_trace_off"
#: Within-file normalizer cancelling machine speed and harness scale.
REFERENCE_BENCH = "placement_index_build"

#: ``sim_trace_off / placement_index_build`` from the last committed
#: BENCH_core.json *before* the incremental index + event batching
#: (rev 1e68810: 3.703 sims/s against 41970.419 builds/s).  Check 1
#: requires the fresh normalized rate to beat this by --min-speedup.
PRE_INCREMENTAL_NORM = 3.703 / 41970.419


def load_rates(path: Path) -> dict[str, float]:
    """Map bench name -> cells_per_s from one bench_core result file."""
    try:
        records = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: bench result file not found: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")
    rates: dict[str, float] = {}
    for record in records:
        rate = record.get("cells_per_s")
        if isinstance(rate, (int, float)) and rate > 0:
            rates[record["bench"]] = float(rate)
    return rates


def require(rates: dict[str, float], bench: str, path: Path) -> float:
    if bench not in rates:
        sys.exit(
            f"error: {path} has no {bench!r} benchmark — regenerate it "
            f"with a bench_core that measures the simulator-core modes"
        )
    return rates[bench]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="bench_core output from the run under test",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_core.json",
        help="recorded baseline (default: committed BENCH_core.json)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required normalized sim_trace_off speedup over the pinned "
        "pre-incremental reference (default 5.0)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=3.0,
        help="required batched/unbatched ratio within the fresh file "
        "(default 3.0)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="maximum allowed normalized batched-rate regression vs the "
        "baseline (default 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)

    fresh = load_rates(args.fresh)
    reference = require(fresh, REFERENCE_BENCH, args.fresh)

    # 1. Normalized speedup over the pre-incremental tree.
    fresh_norm = require(fresh, TRACKED_BENCH, args.fresh) / reference
    speedup = fresh_norm / PRE_INCREMENTAL_NORM
    print(
        f"normalized {TRACKED_BENCH} ({args.fresh}): {fresh_norm:.6g} "
        f"= {speedup:.2f}x the pre-incremental baseline "
        f"({PRE_INCREMENTAL_NORM:.6g})"
    )
    if speedup < args.min_speedup:
        print(
            f"FAIL: simulator core is only {speedup:.2f}x the "
            f"pre-incremental baseline (required {args.min_speedup:.2f}x)"
        )
        return 1
    print(f"OK: speedup >= {args.min_speedup:.2f}x")

    # 2. Batched vs per-event-rebuild oracle, same process/fixture.
    ratio = require(fresh, BATCHED_BENCH, args.fresh) / require(
        fresh, ORACLE_BENCH, args.fresh
    )
    print(f"batched/unbatched sim ratio ({args.fresh}): {ratio:.2f}x")
    if ratio < args.min_ratio:
        print(
            f"FAIL: batched core is only {ratio:.2f}x the per-event "
            f"rebuild oracle (required {args.min_ratio:.2f}x)"
        )
        return 1
    print(f"OK: mode ratio >= {args.min_ratio:.2f}x")

    # 3. Non-regression of the batched path vs the committed baseline.
    baseline = load_rates(args.baseline)
    fresh_batched_norm = fresh[BATCHED_BENCH] / reference
    base_batched_norm = require(baseline, BATCHED_BENCH, args.baseline) / require(
        baseline, REFERENCE_BENCH, args.baseline
    )
    regression = (base_batched_norm - fresh_batched_norm) / base_batched_norm
    print(f"normalized batched rate ({BATCHED_BENCH} / {REFERENCE_BENCH}):")
    print(f"  baseline {args.baseline}: {base_batched_norm:.6g}")
    print(f"  fresh    {args.fresh}: {fresh_batched_norm:.6g}")
    print(
        f"  regression: {regression * 100:+.2f}% "
        f"(tolerance {args.tolerance * 100:.1f}%)"
    )
    if regression > args.tolerance:
        print(
            f"FAIL: normalized batched sim rate is {regression * 100:.2f}% "
            f"below the recorded baseline"
        )
        return 1
    print("OK: batched sim rate within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
