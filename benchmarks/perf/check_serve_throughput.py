"""Gate the scheduler service's in-process submission throughput.

Three checks, run against a live overload fixture plus the committed
``BENCH_core.json`` baseline:

1. **Throughput on the overload fixture** — the ``serve_inproc_submit``
   fixture (size-64 jobs against a capped engine under 2x tenant-queue
   overload, logical clock) is replayed through a fresh engine and the
   measured submissions/s must reach the *machine-aware bar*::

       bar = min(--target, --efficiency x baseline_rate x machine_factor)

   ``machine_factor`` is a freshly measured ``placement_index_build``
   rate divided by the committed baseline's — the same within-run
   normalizer ``check_sweep_speedup.py`` uses — so a slow CI container
   is held to what *this* machine can plausibly do, while fast machines
   are held to the full ``--target`` (default 10,000/s).
2. **Backpressure honesty** — under the 2x overload the fixture must
   actually reject: every response accounted for, zero errors, and
   more rejects than accepts.  A "fast" service that silently admits
   past its caps (or drops responses) fails outright.
3. **Baseline-record presence** — the committed baseline must carry a
   ``serve_inproc_submit`` record, so the trajectory stays machine
   readable for later PRs.

Usage::

    python benchmarks/perf/check_serve_throughput.py \
        [--baseline BENCH_core.json] [--target 10000] [--efficiency 0.5]
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

_spec = importlib.util.spec_from_file_location(
    "bench_core", Path(__file__).with_name("bench_core.py")
)
bench_core = importlib.util.module_from_spec(_spec)
sys.modules["bench_core"] = bench_core
_spec.loader.exec_module(bench_core)

REFERENCE_BENCH = "placement_index_build"
SERVE_BENCH = "serve_inproc_submit"

#: Fixture size: enough submissions to dwarf engine construction and
#: interpreter warm-up, small enough to keep the gate under a second.
FIXTURE_SUBMISSIONS = 20_000


def run_fixture() -> tuple[float, dict]:
    """Measured submissions/s plus the engine's final stats.

    The tenant queues hold ``SERVE_BENCH_TENANT_CAP`` jobs and the
    engine ``SERVE_BENCH_ENGINE_CAP`` more; 20k size-64 submissions
    with effectively infinite runtimes are far past 2x overload, so
    the run exercises the reject fast path almost exclusively —
    the regime the bar is about.
    """
    from repro.serve.client import InprocClient

    messages = bench_core._serve_messages(FIXTURE_SUBMISSIONS)
    best = float("inf")
    stats: dict = {}
    for _ in range(3):
        client = InprocClient(bench_core._serve_engine())
        start = time.perf_counter()
        replies = client.request_many(messages)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            accepted = sum(1 for r in replies if r.get("ok"))
            rejected = sum(1 for r in replies if r.get("rejected"))
            errors = len(replies) - accepted - rejected
            stats = {
                "responses": len(replies),
                "accepted": accepted,
                "rejected": rejected,
                "errors": errors,
            }
    return FIXTURE_SUBMISSIONS / best, stats


def measure_reference_rate() -> float:
    """Fresh ``placement_index_build`` rate (builds/s) on this machine."""
    scale = bench_core.SCALES["default"]
    run, ops = bench_core.bench_placement_index_build(scale)
    return ops / bench_core.best_of(run, scale.repeats)


def load_records(path: Path) -> list[dict]:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: bench result file not found: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")


def find_record(records: list[dict], bench: str, path: Path) -> dict:
    for record in records:
        if record.get("bench") == bench:
            return record
    sys.exit(
        f"error: {path} has no {bench!r} benchmark — regenerate it with "
        f"a bench_core that measures the serve pair"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_core.json",
        help="recorded baseline (default: committed BENCH_core.json)",
    )
    parser.add_argument(
        "--target",
        type=float,
        default=10_000.0,
        help="required in-process submissions/s where the hardware "
        "allows it (default 10000)",
    )
    parser.add_argument(
        "--efficiency",
        type=float,
        default=0.5,
        help="fraction of the machine-scaled baseline rate the fixture "
        "must reach when that is below --target (default 0.5)",
    )
    args = parser.parse_args(argv)

    baseline_records = load_records(args.baseline)
    base_serve = find_record(baseline_records, SERVE_BENCH, args.baseline)
    base_reference = find_record(baseline_records, REFERENCE_BENCH, args.baseline)

    # 1. Throughput against the machine-aware bar.
    rate, stats = run_fixture()
    reference = measure_reference_rate()
    machine_factor = reference / base_reference["cells_per_s"]
    scaled_baseline = base_serve["cells_per_s"] * machine_factor
    bar = min(args.target, args.efficiency * scaled_baseline)
    print(
        f"fixture: {FIXTURE_SUBMISSIONS} submissions at {rate:.0f}/s "
        f"({stats['accepted']} accepted, {stats['rejected']} rejected, "
        f"{stats['errors']} errors)"
    )
    print(
        f"machine factor ({REFERENCE_BENCH}): {machine_factor:.2f}x "
        f"baseline | bar: min({args.target:.0f}, {args.efficiency:.2f} x "
        f"{scaled_baseline:.0f}) = {bar:.0f}/s"
    )
    if rate < bar:
        print(
            f"FAIL: in-process submission rate {rate:.0f}/s is below the "
            f"bar {bar:.0f}/s"
        )
        return 1
    print(f"OK: submission throughput >= {bar:.0f}/s")

    # 2. Backpressure honesty under 2x overload.
    if stats["responses"] != FIXTURE_SUBMISSIONS:
        print(
            f"FAIL: {FIXTURE_SUBMISSIONS - stats['responses']} submissions "
            f"got no response"
        )
        return 1
    if stats["errors"]:
        print(f"FAIL: {stats['errors']} submissions errored (expected none)")
        return 1
    if stats["rejected"] <= stats["accepted"]:
        print(
            f"FAIL: overload fixture accepted {stats['accepted']} vs "
            f"{stats['rejected']} rejects — backpressure never engaged"
        )
        return 1
    print(
        f"OK: backpressure engaged ({stats['rejected']} rejects, "
        f"zero dropped, zero errors)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
