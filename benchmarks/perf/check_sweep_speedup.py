"""Gate the warm-pool sweep engine's parallel speedup.

Four checks, run against a live large-grid fixture plus one fresh
``bench_core`` result file:

1. **Warm speedup on the large-grid fixture** — the default-scale sweep
   grid (the same fixture the committed ``BENCH_core.json`` records) is
   run serial and then on the warm pool, bitwise-equivalence-checked,
   and the wall-clock ratio must reach the *machine-aware bar*::

       bar = min(--min-speedup, --efficiency x raw_pool_ceiling)

   ``raw_pool_ceiling`` is measured here, in-process, as the speedup of
   a pure-CPU fan-out over a plain fork pool with the same worker
   count.  On genuinely parallel hardware (CI runners) the ceiling
   clears ``--min-speedup / --efficiency`` and the full ``--min-speedup``
   (default 2x) applies; on cgroup-throttled containers that advertise
   cores they cannot schedule, the bar honestly tracks what *any*
   process pool could achieve there — the warm pool must still deliver
   ``--efficiency`` (default 0.7) of it.
2. **Mode honesty** — the fixture's parallel run must report
   ``mode=warm`` with the requested worker count; a silent auto-serial
   cutover or cold-pool fallback fails the gate outright.
3. **Fresh-record honesty** — the ``--fresh`` bench file's
   ``sweep_parallel`` record must carry ``mode`` and an actual
   ``workers`` count >= 2 (regression guard: these used to record the
   *requested* configuration, making serial runs look parallel).
4. **Normalized serial non-regression** — the fixture's serial rate,
   normalized by a freshly measured ``placement_index_build`` rate (the
   within-run normalizer cancelling machine speed), must stay within
   ``--tolerance`` of the committed baseline's
   ``sweep_serial / placement_index_build``.  This pins the ratio's
   denominator: a serial path that quietly slowed down would flatter
   check 1.

Usage::

    python benchmarks/perf/check_sweep_speedup.py \
        --fresh BENCH_ci.json [--baseline BENCH_core.json] \
        [--workers N] [--min-speedup 2.0] [--efficiency 0.75] \
        [--tolerance 0.35]
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import multiprocessing
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

_spec = importlib.util.spec_from_file_location(
    "bench_core", Path(__file__).with_name("bench_core.py")
)
bench_core = importlib.util.module_from_spec(_spec)
sys.modules["bench_core"] = bench_core  # dataclasses resolve the module
_spec.loader.exec_module(bench_core)

REFERENCE_BENCH = "placement_index_build"
SERIAL_BENCH = "sweep_serial"
PARALLEL_BENCH = "sweep_parallel"

#: Loop length of one calibration task (~0.1-0.4s of pure integer work;
#: long enough to dwarf task dispatch, short enough to keep the gate
#: quick).
_BURN_N = 3_000_000


def _burn(n: int) -> int:
    total = 0
    for i in range(n):
        total += i * i
    return total


def raw_pool_ceiling(workers: int) -> float:
    """Measured speedup of a plain fork pool on pure-CPU work.

    This is the best *any* process pool can do on this machine with
    this worker count — cgroup CPU quotas, shared runners and core
    counts all land in this number, so the warm-pool bar tracks real
    hardware instead of ``os.cpu_count`` fiction.
    """
    n_tasks = 4 * workers
    start = time.perf_counter()
    for _ in range(n_tasks):
        _burn(_BURN_N)
    serial_s = time.perf_counter() - start
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        list(pool.map(_burn, [_BURN_N] * workers))  # spawn + warm, untimed
        start = time.perf_counter()
        list(pool.map(_burn, [_BURN_N] * n_tasks))
        pool_s = time.perf_counter() - start
    return serial_s / pool_s if pool_s > 0 else float("inf")


def run_fixture(workers: int):
    """Serial vs warm-pool run of the default-scale sweep grid.

    Returns ``(serial_s, warm_s, n_cells, warm_stats)``; raises if the
    two runs disagree anywhere (the bitwise contract is a precondition
    of benchmarking them against each other).
    """
    import repro.experiments.pool as pool_mod
    import repro.experiments.sweep as sweep_mod
    from repro.experiments.sweep import run_sweep_outcome

    scale = bench_core.SCALES["default"]
    points, seeds = bench_core._sweep_grid(scale)
    n_cells = len(points) * len(seeds)
    sweep_mod.MASTER_FAILURE_COUNT = scale.master_failures

    bench_core._clear_sweep_caches()
    start = time.perf_counter()
    serial = run_sweep_outcome(points, seeds, workers=1)
    serial_s = time.perf_counter() - start

    # Pre-spawned pool: the gate measures the steady state a figure
    # regeneration (many sweeps, one persistent pool) actually sees.
    pool_mod.get_warm_pool().ensure(workers)
    bench_core._clear_sweep_caches()
    start = time.perf_counter()
    warm = run_sweep_outcome(
        points, seeds, workers=workers, min_cells_per_worker=2
    )
    warm_s = time.perf_counter() - start
    pool_mod.shutdown_warm_pool()

    if serial.results != warm.results:
        sys.exit(
            "error: warm-pool results differ from serial on the gate "
            "fixture — bitwise equivalence broken"
        )
    return serial_s, warm_s, n_cells, warm.stats


def measure_reference_rate() -> float:
    """Fresh ``placement_index_build`` rate (builds/s) on this machine."""
    scale = bench_core.SCALES["default"]
    run, ops = bench_core.bench_placement_index_build(scale)
    return ops / bench_core.best_of(run, scale.repeats)


def load_records(path: Path) -> list[dict]:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: bench result file not found: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")


def find_record(records: list[dict], bench: str, path: Path) -> dict:
    for record in records:
        if record.get("bench") == bench:
            return record
    sys.exit(
        f"error: {path} has no {bench!r} benchmark — regenerate it with "
        f"a bench_core that measures the sweep pair"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="bench_core output from the run under test (record-honesty "
        "check)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_core.json",
        help="recorded baseline (default: committed BENCH_core.json)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="warm-pool size for the fixture (default: cores-1, min 2)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required warm/serial speedup where the hardware allows it "
        "(default 2.0)",
    )
    parser.add_argument(
        "--efficiency",
        type=float,
        default=0.7,
        help="fraction of the measured raw-pool ceiling the warm pool "
        "must reach when the ceiling is below min-speedup/efficiency "
        "(default 0.7)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="maximum allowed normalized serial-rate drift vs the "
        "baseline (default 0.35 = 35%%)",
    )
    args = parser.parse_args(argv)

    from repro.experiments.parallel import default_workers, fork_available

    if not fork_available():
        sys.exit("error: platform lacks fork; the warm-pool gate needs it")
    workers = (
        args.workers if args.workers is not None else max(2, default_workers())
    )

    # 1+2. Large-grid fixture speedup against the machine-aware bar.
    serial_s, warm_s, n_cells, stats = run_fixture(workers)
    speedup = serial_s / warm_s if warm_s > 0 else float("inf")
    ceiling = raw_pool_ceiling(workers)
    bar = min(args.min_speedup, args.efficiency * ceiling)
    print(
        f"fixture: {n_cells} cells, serial {serial_s:.2f}s "
        f"({n_cells / serial_s:.1f} cells/s), warm {warm_s:.2f}s "
        f"({n_cells / warm_s:.1f} cells/s) with {workers} workers"
    )
    print(
        f"warm speedup: {speedup:.2f}x | raw pool ceiling "
        f"({workers} workers): {ceiling:.2f}x | bar: "
        f"min({args.min_speedup:.2f}, {args.efficiency:.2f} x "
        f"{ceiling:.2f}) = {bar:.2f}x"
    )
    if stats.mode != "warm":
        print(
            f"FAIL: fixture parallel run reported mode={stats.mode!r}, "
            f"not 'warm' — the gate did not exercise the warm pool"
        )
        return 1
    if stats.workers_used != workers:
        print(
            f"FAIL: fixture used {stats.workers_used} workers, "
            f"requested {workers}"
        )
        return 1
    if speedup < bar:
        print(
            f"FAIL: warm-pool sweep is only {speedup:.2f}x serial "
            f"(required {bar:.2f}x)"
        )
        return 1
    print(f"OK: warm speedup >= {bar:.2f}x (mode=warm, workers={workers})")

    # 3. Fresh-record honesty: actual mode/workers in the bench file.
    fresh_parallel = find_record(
        load_records(args.fresh), PARALLEL_BENCH, args.fresh
    )
    mode = fresh_parallel.get("mode")
    rec_workers = fresh_parallel.get("workers")
    print(
        f"fresh {PARALLEL_BENCH} record ({args.fresh}): "
        f"mode={mode!r} workers={rec_workers!r}"
    )
    if mode not in ("warm", "parallel", "queue"):
        print(
            f"FAIL: fresh {PARALLEL_BENCH} record has mode={mode!r} — the "
            f"bench grid never left serial (or the mode key is missing)"
        )
        return 1
    if not isinstance(rec_workers, int) or rec_workers < 2:
        print(
            f"FAIL: fresh {PARALLEL_BENCH} record has workers="
            f"{rec_workers!r}; the record must carry the executor's "
            f"actual stats.workers_used (>= 2 for a pooled run)"
        )
        return 1
    print("OK: fresh sweep record carries actual mode and worker count")

    # 4. Normalized serial non-regression vs the committed baseline.
    reference = measure_reference_rate()
    fresh_norm = (n_cells / serial_s) / reference
    baseline_records = load_records(args.baseline)
    base_serial = find_record(baseline_records, SERIAL_BENCH, args.baseline)
    base_reference = find_record(
        baseline_records, REFERENCE_BENCH, args.baseline
    )
    base_norm = base_serial["cells_per_s"] / base_reference["cells_per_s"]
    drift = abs(fresh_norm - base_norm) / base_norm
    print(f"normalized serial rate ({SERIAL_BENCH} / {REFERENCE_BENCH}):")
    print(f"  baseline {args.baseline}: {base_norm:.6g}")
    print(f"  fixture (this run): {fresh_norm:.6g}")
    print(f"  drift: {drift * 100:.2f}% (tolerance {args.tolerance * 100:.1f}%)")
    if drift > args.tolerance:
        print(
            f"FAIL: normalized serial sweep rate drifted "
            f"{drift * 100:.2f}% from the baseline — the speedup ratio's "
            f"denominator moved; regenerate BENCH_core.json or "
            f"investigate the serial path"
        )
        return 1
    print("OK: serial reference within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
