"""Nightly invariant-oracle sweep for the incremental simulator core.

Runs one real sweep three ways, every cell with ``check_invariants`` on
(per-event conservation checks against the torus's independent
occupancy oracles) and decision tracing enabled:

1. **fast / serial** — incremental placement index + event batching,
   in-process;
2. **fast / workers=2** — same configuration through the process pool
   (cutover pinned off so the pool genuinely runs);
3. **oracle / serial** — from-scratch index rebuilds and per-event
   index refresh, the retained reference semantics.

All three must agree: identical ``SweepResult`` rows, byte-identical
per-cell NDJSON traces between the serial and pooled fast runs, and no
decision divergence between fast and oracle.  On any disagreement the
first divergent decision (cell, stream index, differing fields, both
records) is written to ``first_divergence.json`` in the output
directory — CI uploads it as the failure artifact — and the run exits
non-zero.

Usage::

    PYTHONPATH=src python benchmarks/perf/nightly_invariants.py \
        [--out-dir nightly-invariants] [--jobs 80] [--seeds 2]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:  # direct-script convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import SimulationConfig
from repro.experiments import sweep as sweep_mod
from repro.experiments.sweep import SweepPoint, run_sweep
from repro.obs.aggregate import SweepObsCollector
from repro.obs.tools import diff_traces
from repro.obs.trace import read_trace


def _config(incremental: bool) -> SimulationConfig:
    return SimulationConfig(
        check_invariants=True,
        trace=True,
        incremental_index=incremental,
        batch_events=incremental,
    )


def build_grid(jobs: int, incremental: bool) -> list[SweepPoint]:
    config = _config(incremental)
    return [
        SweepPoint("sdsc", jobs, 1.0, 8, "balancing", 0.1, config=config),
        SweepPoint("nasa", jobs, 1.0, 16, "balancing", 0.5, config=config),
        SweepPoint("llnl", jobs, 1.2, 4, "tiebreak", 0.3, config=config),
        SweepPoint("sdsc", jobs, 1.0, 0, "krevat", 0.0, config=config),
    ]


def run_leg(points, seeds, workers, trace_dir, **kwargs):
    collector = SweepObsCollector(trace_dir=trace_dir)
    results = run_sweep(
        points, seeds, workers=workers, collector=collector, **kwargs
    )
    sweep_mod._result_cache.clear()  # every leg recomputes from scratch
    return results, sorted(Path(trace_dir).iterdir())


def fail(out_dir: Path, payload: dict) -> int:
    artifact = out_dir / "first_divergence.json"
    artifact.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"FAIL: {payload['what']} — details in {artifact}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", type=Path, default=Path("nightly-invariants"))
    parser.add_argument("--jobs", type=int, default=80)
    parser.add_argument("--seeds", type=int, default=2)
    args = parser.parse_args(argv)
    out_dir = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    seeds = tuple(range(args.seeds))

    fast_points = build_grid(args.jobs, incremental=True)
    oracle_points = build_grid(args.jobs, incremental=False)
    n_cells = len(fast_points) * len(seeds)
    print(f"nightly invariant-oracle sweep: {n_cells} cells x 3 legs")

    serial, serial_files = run_leg(
        fast_points, seeds, 1, out_dir / "serial"
    )
    pooled, pooled_files = run_leg(
        fast_points, seeds, 2, out_dir / "workers2", min_cells_per_worker=0
    )
    oracle, oracle_files = run_leg(
        oracle_points, seeds, 1, out_dir / "oracle"
    )

    # 1. Pooled execution is bitwise the serial run.
    if serial != pooled:
        return fail(out_dir, {
            "what": "serial vs workers=2 sweep results differ",
            "serial": [dataclasses.asdict(r) for r in serial],
            "workers2": [dataclasses.asdict(r) for r in pooled],
        })
    for a, b in zip(serial_files, pooled_files):
        if a.name != b.name or a.read_bytes() != b.read_bytes():
            divergence = diff_traces(read_trace(a), read_trace(b))
            return fail(out_dir, {
                "what": f"serial vs workers=2 trace differs: {a.name}",
                "divergence": dataclasses.asdict(divergence) if divergence else None,
                "describe": divergence.describe() if divergence else
                    "decision streams identical; header/metadata differ",
            })
    print(f"OK: workers=2 identical to serial ({len(serial_files)} traces)")

    # 2. The incremental/batched core matches the rebuild oracle
    #    decision for decision.
    for i, (fast_res, oracle_res) in enumerate(zip(serial, oracle)):
        fast_cmp = dataclasses.replace(fast_res, point=oracle_points[i])
        if fast_cmp != oracle_res:
            return fail(out_dir, {
                "what": f"point {i}: fast vs oracle sweep metrics differ",
                "fast": dataclasses.asdict(fast_res),
                "oracle": dataclasses.asdict(oracle_res),
            })
    for a, b in zip(serial_files, oracle_files):
        divergence = diff_traces(read_trace(a), read_trace(b))
        if divergence is not None:
            return fail(out_dir, {
                "what": f"fast vs oracle decision divergence: {a.name}",
                "divergence": dataclasses.asdict(divergence),
                "describe": divergence.describe(),
            })
    print(f"OK: incremental core matches rebuild oracle ({len(oracle_files)} traces)")
    print("nightly invariant-oracle sweep: all green")
    return 0


if __name__ == "__main__":
    sys.exit(main())
