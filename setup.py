"""Legacy setup shim.

The offline environments this reproduction targets may lack the ``wheel``
package, which PEP-660 editable installs require.  ``python setup.py
develop`` (or ``pip install -e . --no-build-isolation``) keeps working
through this shim; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
