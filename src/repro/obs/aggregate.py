"""Cross-process aggregation of sweep observability.

A parallel sweep runs its ``(point, seed)`` cells in worker processes;
each worker serialises the cell's metrics registry and (when tracing is
enabled) its in-memory trace records into a picklable :class:`CellObs`
payload that rides back to the parent next to the cell's report.

The parent buffers payloads in a :class:`SweepObsCollector` as they
arrive — in whatever order chunks complete — and merges them in
:meth:`~SweepObsCollector.finalize` in sorted ``(point, seed)`` order,
so ``workers=N`` produces the same aggregated metrics and the same
per-cell trace files as ``workers=1`` (wall-clock timers excepted; they
are segregated by :meth:`MetricsRegistry.to_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import write_trace


@dataclass(frozen=True)
class CellObs:
    """Observability payload of one simulation cell (picklable)."""

    #: :meth:`MetricsRegistry.to_dict` snapshot, or None when the cell
    #: ran without profiling.
    metrics: dict[str, Any] | None
    #: Buffered trace records, or None when the cell ran untraced.
    trace_records: list[dict[str, Any]] | None


def trace_filename(point_index: int, seed_index: int) -> str:
    """Canonical per-cell trace filename inside a sweep trace dir."""
    return f"trace_p{point_index:04d}_s{seed_index:04d}.ndjson"


class SweepObsCollector:
    """Parent-side deterministic merge of per-cell observability.

    Parameters
    ----------
    trace_dir:
        Directory to write per-cell NDJSON trace files into (created on
        demand); None discards trace records and keeps only metrics.
    """

    def __init__(self, trace_dir: str | Path | None = None) -> None:
        self.metrics = MetricsRegistry()
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.trace_paths: list[Path] = []
        self.n_cells = 0
        self._pending: dict[tuple[int, int], CellObs] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    def add_cell(self, point_index: int, seed_index: int, obs: CellObs) -> None:
        """Buffer one cell's payload (any arrival order)."""
        if self._finalized:
            raise ExperimentError("collector already finalized")
        key = (point_index, seed_index)
        if key in self._pending:
            raise ExperimentError(f"duplicate observability payload for cell {key}")
        self._pending[key] = obs

    def finalize(self) -> None:
        """Merge buffered cells in sorted cell order; idempotent."""
        if self._finalized:
            return
        self._finalized = True
        if self.trace_dir is not None and any(
            obs.trace_records is not None for obs in self._pending.values()
        ):
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        for key in sorted(self._pending):
            obs = self._pending[key]
            self.n_cells += 1
            if obs.metrics is not None:
                self.metrics.merge_dict(obs.metrics)
            if obs.trace_records is not None and self.trace_dir is not None:
                path = self.trace_dir / trace_filename(*key)
                write_trace(obs.trace_records, path)
                self.trace_paths.append(path)
        self._pending.clear()

    # ------------------------------------------------------------------
    def metrics_dict(self, include_timings: bool = False) -> dict[str, Any]:
        """Merged metrics snapshot (deterministic subset by default)."""
        if not self._finalized:
            raise ExperimentError("finalize() the collector before reading it")
        return self.metrics.to_dict(include_timings=include_timings)
