"""Metrics registry: counters, gauges, histograms and timers.

One :class:`MetricsRegistry` holds every metric of one simulation (or
one merged sweep).  Counters, gauges and histograms record *simulation
quantities* — decision counts, candidate-set sizes, cache hits — which
are deterministic functions of the run, so merged registries from a
parallel sweep equal the serial ones.  Timers record *wall-clock*
profile data and are therefore segregated: :meth:`MetricsRegistry.to_dict`
can exclude them (``include_timings=False``) when comparing registries
for determinism.

Hot paths that have no simulator reference (the shadow-time engine, the
placement index, the finders) report through the module-level *active
registry*: :func:`activate` installs one for the duration of a run, and
instrumentation sites read the :data:`ACTIVE` attribute and skip all
work when it is ``None`` — one attribute load and branch on the
disabled path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.errors import SimulationError

#: Serialisation version for registry snapshots; bump on breaking change.
METRICS_SCHEMA_VERSION = 1

#: Geometric bucket upper bounds for histograms (plus an overflow
#: bucket); fixed so merged histograms are deterministic.
HISTOGRAM_BOUNDS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 2048.0, 4096.0,
)


class Counter:
    """Monotonic float counter."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """Last-written value; merges take the max (deterministic)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with exact count/total/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        # One slot per bound plus overflow.
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class TimerStat:
    """Accumulated wall-clock timings of one named scope."""

    __slots__ = ("count", "total_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds


class MetricsRegistry:
    """Named metrics for one run; get-or-create accessors."""

    __slots__ = ("counters", "gauges", "histograms", "timers")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.timers: dict[str, TimerStat] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram()
        return metric

    @contextmanager
    def timer(self, name: str) -> Iterator[TimerStat]:
        """Scoped wall-clock timer: ``with registry.timer("shadow"): ...``"""
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        start = time.perf_counter()
        try:
            yield stat
        finally:
            stat.observe(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # serialisation / aggregation
    # ------------------------------------------------------------------
    def to_dict(self, include_timings: bool = True) -> dict[str, Any]:
        """Snapshot as JSON-serialisable primitives.

        ``include_timings=False`` drops the wall-clock timers, leaving
        only the deterministic simulation metrics — the form used when
        asserting serial/parallel aggregation equality.
        """
        out: dict[str, Any] = {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "buckets": list(h.buckets),
                }
                for k, h in sorted(self.histograms.items())
            },
        }
        if include_timings:
            out["timers"] = {
                k: {"count": t.count, "total_s": t.total_s, "max_s": t.max_s}
                for k, t in sorted(self.timers.items())
            }
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict`."""
        schema = data.get("schema")
        if schema != METRICS_SCHEMA_VERSION:
            raise SimulationError(
                f"unsupported metrics schema {schema!r} "
                f"(expected {METRICS_SCHEMA_VERSION})"
            )
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).value = value
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).value = value
        for name, payload in data.get("histograms", {}).items():
            hist = registry.histogram(name)
            hist.count = payload["count"]
            hist.total = payload["total"]
            hist.min = payload["min"]
            hist.max = payload["max"]
            buckets = list(payload["buckets"])
            if len(buckets) != len(hist.buckets):
                raise SimulationError(
                    f"histogram {name!r} has {len(buckets)} buckets, "
                    f"expected {len(hist.buckets)}"
                )
            hist.buckets = buckets
        for name, payload in data.get("timers", {}).items():
            stat = registry.timers.setdefault(name, TimerStat())
            stat.count = payload["count"]
            stat.total_s = payload["total_s"]
            stat.max_s = payload["max_s"]
        return registry

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry in place.

        Counters, histogram contents and timers add; gauges keep the
        max, which is the only order-independent (hence deterministic)
        combination for a last-written value.
        """
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            mine = self.gauge(name)
            if gauge.value > mine.value:
                mine.value = gauge.value
        for name, hist in other.histograms.items():
            mine_h = self.histogram(name)
            mine_h.count += hist.count
            mine_h.total += hist.total
            if hist.min is not None and (mine_h.min is None or hist.min < mine_h.min):
                mine_h.min = hist.min
            if hist.max is not None and (mine_h.max is None or hist.max > mine_h.max):
                mine_h.max = hist.max
            for i, n in enumerate(hist.buckets):
                mine_h.buckets[i] += n
        for name, stat in other.timers.items():
            mine_t = self.timers.setdefault(name, TimerStat())
            mine_t.count += stat.count
            mine_t.total_s += stat.total_s
            mine_t.max_s = max(mine_t.max_s, stat.max_s)

    def merge_dict(self, data: dict[str, Any]) -> None:
        """Merge a :meth:`to_dict` snapshot into this registry."""
        self.merge(MetricsRegistry.from_dict(data))

    # ------------------------------------------------------------------
    def summary_lines(self) -> list[str]:
        """Human-readable digest, derived rates included when possible."""
        lines: list[str] = []
        for name, counter in sorted(self.counters.items()):
            lines.append(f"counter   {name:<32} {counter.value:g}")
        for name, gauge in sorted(self.gauges.items()):
            lines.append(f"gauge     {name:<32} {gauge.value:g}")
        for name, hist in sorted(self.histograms.items()):
            lines.append(
                f"histogram {name:<32} n={hist.count} mean={hist.mean:.2f} "
                f"min={hist.min if hist.min is not None else '-'} "
                f"max={hist.max if hist.max is not None else '-'}"
            )
        for name, stat in sorted(self.timers.items()):
            per_call = stat.total_s / stat.count if stat.count else 0.0
            lines.append(
                f"timer     {name:<32} n={stat.count} total={stat.total_s:.4f}s "
                f"mean={per_call * 1e6:.1f}us max={stat.max_s * 1e6:.1f}us"
            )
        run = self.timers.get("sim.run")
        dispatches = self.counters.get("sim.dispatches")
        if run is not None and dispatches is not None and run.total_s > 0:
            lines.append(
                f"derived   {'sim.decisions_per_s':<32} "
                f"{dispatches.value / run.total_s:.1f}"
            )
        return lines


# ----------------------------------------------------------------------
# the active registry (module-level profiling hook)
# ----------------------------------------------------------------------

#: Registry currently collecting hot-path metrics, or None (disabled).
#: Instrumentation sites read this attribute directly: the disabled cost
#: is one module-attribute load and an ``is None`` branch.
ACTIVE: MetricsRegistry | None = None


def count_active(name: str, n: float = 1.0) -> None:
    """Increment a counter on the active registry, if one is installed.

    The one-liner instrumentation sites outside the simulator (the
    resilience layer, the sweep executor) use: a no-op when profiling is
    off, so callers never need their own ``is None`` branch.
    """
    registry = ACTIVE
    if registry is not None:
        registry.counter(name).inc(n)


@contextmanager
def activate(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the active hot-path registry.

    Nests: the previous registry (possibly None) is restored on exit.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = registry
    try:
        yield registry
    finally:
        ACTIVE = previous
