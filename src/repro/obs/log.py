"""Shared logging for the repro package.

Every module logs through a child of the single ``repro`` root logger so
one CLI flag (``bgl-sim -v``) or one :func:`configure_logging` call
controls the whole tree.  Library code never installs handlers — it only
emits; configuration is the application's (CLI's, test's) job, per the
stdlib logging contract.
"""

from __future__ import annotations

import logging

#: Name of the root logger every repro module logs under.
ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the shared ``repro`` root.

    Module names already inside the package (``repro.experiments.sweep``)
    are used verbatim; anything else (scripts, benchmarks) is prefixed so
    it still rides the shared hierarchy.
    """
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` root logger for CLI / script use.

    ``verbosity`` counts ``-v`` flags: 0 = WARNING, 1 = INFO, 2+ = DEBUG.
    Idempotent — repeated calls adjust the level but never stack a second
    stream handler.
    """
    if verbosity <= 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    if not any(
        isinstance(handler, logging.StreamHandler) for handler in root.handlers
    ):
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    return root
