"""Decision-trace recorders and NDJSON I/O.

:class:`TraceRecorder` buffers records in memory (the sweep engine ships
them between processes) or streams them straight to a text sink; either
way the on-disk form is newline-delimited JSON with compact separators
and sorted keys, so identical runs produce byte-identical files.

:class:`NullRecorder` is the default wired into the simulator: a
singleton whose :meth:`~NullRecorder.emit` is a no-op ``pass``.  Callers
that build nontrivial record payloads guard on ``recorder.enabled`` so
the untraced path pays one attribute read per decision site, nothing
more.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterator

from repro.errors import SimulationError
from repro.obs.schema import TRACE_SCHEMA_VERSION


def _encode(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class TraceRecorder:
    """Collects schema-versioned decision records for one simulation.

    Parameters
    ----------
    sink:
        Optional text stream; when given, records are written through as
        NDJSON lines instead of being buffered (``records`` is then
        unavailable).
    """

    __slots__ = ("_records", "_sink", "_seq")

    enabled = True

    def __init__(self, sink: IO[str] | None = None) -> None:
        self._records: list[dict[str, Any]] | None = [] if sink is None else None
        self._sink = sink
        self._seq = 0

    # ------------------------------------------------------------------
    def emit(self, kind: str, t: float, **fields: Any) -> None:
        """Record one decision at simulation time ``t``."""
        record = {"kind": kind, "t": float(t), "seq": self._seq, **fields}
        self._seq += 1
        if self._sink is not None:
            self._sink.write(_encode(record) + "\n")
        else:
            self._records.append(record)

    def header(self, **fields: Any) -> None:
        """Emit the stream header (must be the first record)."""
        if self._seq != 0:
            raise SimulationError("trace header must be the first record")
        self.emit("header", 0.0, schema=TRACE_SCHEMA_VERSION, **fields)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._seq

    @property
    def records(self) -> list[dict[str, Any]]:
        """The buffered records (in-memory recorders only)."""
        if self._records is None:
            raise SimulationError(
                "recorder streams to a sink; records are not buffered"
            )
        return self._records

    def write(self, path: str | Path) -> Path:
        """Write the buffered records to ``path`` as NDJSON."""
        path = Path(path)
        write_trace(self.records, path)
        return path


class NullRecorder:
    """Disabled recorder: every operation is a no-op.

    ``enabled`` is False so decision sites skip building record payloads
    entirely; the shared :data:`NULL_RECORDER` singleton keeps the
    untraced simulator allocation-free.
    """

    __slots__ = ()

    enabled = False

    def emit(self, kind: str, t: float, **fields: Any) -> None:
        pass

    def header(self, **fields: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Shared no-op recorder instance (stateless, safe to share globally).
NULL_RECORDER = NullRecorder()


# ----------------------------------------------------------------------
# NDJSON I/O
# ----------------------------------------------------------------------

def write_trace(records: list[dict[str, Any]], path: str | Path) -> None:
    """Write ``records`` to ``path`` as newline-delimited JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(_encode(record) + "\n")


def iter_trace(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield records from an NDJSON trace file, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise SimulationError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Read a whole NDJSON trace file into memory."""
    return list(iter_trace(path))
