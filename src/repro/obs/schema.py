"""Decision-trace record schema.

A trace is newline-delimited JSON: one header record followed by one
record per scheduler decision, in simulation order.  Every record
carries the common envelope

``kind``
    Record type (see :data:`KIND_FIELDS`).
``t``
    Simulation time of the decision (seconds).  *Never* wall-clock time:
    identical-seed runs must produce byte-identical traces so
    ``repro trace diff`` can localise divergence.
``seq``
    0-based position in the stream, dense and strictly increasing.

plus the kind-specific required fields below.  Extra fields are allowed
(the schema is open for forward compatibility); missing required fields,
unknown kinds, broken sequencing or a wrong header version are not.
"""

from __future__ import annotations

from typing import Any, Iterable

#: Version embedded in every trace header; bump on breaking change.
TRACE_SCHEMA_VERSION = 1

#: Common envelope present on every record.
COMMON_FIELDS = frozenset({"kind", "t", "seq"})

#: Required kind-specific fields per record kind.
KIND_FIELDS: dict[str, frozenset[str]] = {
    # Stream header: run identity and machine geometry.
    "header": frozenset({"schema", "policy", "workload", "dims", "seed"}),
    # A job joined the wait queue.
    "arrival": frozenset({"job", "size"}),
    # One placement decision's candidate enumeration, with the scoring
    # inputs (L_MFP, and for fault-aware policies P_f / L_PF / E_loss)
    # of every considered partition.
    "candidates": frozenset({"job", "size", "policy", "n_candidates", "considered"}),
    # A job started on a partition.
    "dispatch": frozenset({"job", "size", "base", "shape", "via", "wall"}),
    # A waiting job was promoted past the queue head, with the
    # shadow-time inputs that justified it.
    "backfill": frozenset({"job", "head_job", "shadow", "est_wall"}),
    # A committed compaction episode.
    "migration": frozenset({"head_job", "moved_jobs", "n_placements"}),
    # A node failure; ``killed_job`` is null when the node was idle.
    "failure": frozenset({"node", "killed_job"}),
    # A killed job resumed from checkpointed progress.
    "checkpoint": frozenset({"job", "saved_before", "saved_after"}),
    # A job completed.
    "finish": frozenset({"job"}),
}

#: Kinds that represent scheduler *decisions* (what ``trace diff``
#: compares); the header is run metadata, not a decision.
DECISION_KINDS = frozenset(KIND_FIELDS) - {"header"}


def validate_record(record: Any, seq: int | None = None) -> list[str]:
    """Validate one trace record; returns a list of problems (empty = ok)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    kind = record.get("kind")
    if kind not in KIND_FIELDS:
        return [f"unknown record kind {kind!r}"]
    missing = (COMMON_FIELDS | KIND_FIELDS[kind]) - record.keys()
    if missing:
        errors.append(f"{kind} record missing fields: {sorted(missing)}")
    t = record.get("t")
    if "t" in record and not isinstance(t, (int, float)):
        errors.append(f"{kind} record has non-numeric t: {t!r}")
    if "seq" in record:
        if not isinstance(record["seq"], int):
            errors.append(f"{kind} record has non-integer seq: {record['seq']!r}")
        elif seq is not None and record["seq"] != seq:
            errors.append(
                f"{kind} record has seq {record['seq']}, expected {seq}"
            )
    if kind == "header" and record.get("schema") != TRACE_SCHEMA_VERSION:
        errors.append(
            f"unsupported trace schema {record.get('schema')!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    return errors


def validate_stream(records: Iterable[Any]) -> list[str]:
    """Validate a whole trace stream.

    Checks every record individually, plus stream-level invariants: the
    stream opens with exactly one header, ``seq`` is dense from 0, and
    simulation time never runs backwards across decision records.
    """
    errors: list[str] = []
    last_t: float | None = None
    n = 0
    for i, record in enumerate(records):
        n += 1
        for problem in validate_record(record, seq=i):
            errors.append(f"record {i}: {problem}")
        if not isinstance(record, dict):
            continue
        kind = record.get("kind")
        if i == 0 and kind != "header":
            errors.append(f"record 0: stream must open with a header, got {kind!r}")
        if i > 0 and kind == "header":
            errors.append(f"record {i}: duplicate header mid-stream")
        if kind in DECISION_KINDS and isinstance(record.get("t"), (int, float)):
            t = float(record["t"])
            if last_t is not None and t < last_t:
                errors.append(
                    f"record {i}: simulation time ran backwards "
                    f"({t} after {last_t})"
                )
            last_t = t
    if n == 0:
        errors.append("empty trace: no records at all")
    return errors
