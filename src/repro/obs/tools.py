"""Trace toolchain: summarize, diff and validate decision traces.

Backs the ``repro trace`` CLI subcommands.  ``diff`` is the debugging
workhorse: identical-seed runs emit byte-identical traces, so the first
record at which two traces disagree *is* the first divergent scheduler
decision — it turns a failed golden-trace comparison from "something
drifted" into "decision #1234, a dispatch at t=5061.2, chose a different
partition".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.schema import validate_stream


# ----------------------------------------------------------------------
# summarize
# ----------------------------------------------------------------------

def summarize_trace(records: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate one trace into a compact summary dict."""
    kinds: dict[str, int] = {}
    jobs: set[int] = set()
    t_min: float | None = None
    t_max: float | None = None
    kills = 0
    candidate_total = 0
    candidate_decisions = 0
    header: dict[str, Any] | None = None
    for record in records:
        kind = record.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "header":
            header = record
            continue
        t = record.get("t")
        if isinstance(t, (int, float)):
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
        job = record.get("job")
        if isinstance(job, int):
            jobs.add(job)
        if kind == "failure" and record.get("killed_job") is not None:
            kills += 1
        if kind == "candidates":
            candidate_decisions += 1
            candidate_total += int(record.get("n_candidates", 0))
    return {
        "header": header,
        "n_records": len(records),
        "kinds": dict(sorted(kinds.items())),
        "n_jobs_seen": len(jobs),
        "t_span": (t_min, t_max),
        "job_kills": kills,
        "avg_candidates": (
            candidate_total / candidate_decisions if candidate_decisions else 0.0
        ),
    }


def format_summary(summary: dict[str, Any]) -> str:
    """Render :func:`summarize_trace` output for the terminal."""
    lines = []
    header = summary.get("header")
    if header:
        lines.append(
            f"trace: policy={header.get('policy')} "
            f"workload={header.get('workload')} seed={header.get('seed')} "
            f"schema={header.get('schema')}"
        )
    t_min, t_max = summary["t_span"]
    span = f"{t_min:.1f}..{t_max:.1f}s" if t_min is not None else "(empty)"
    lines.append(
        f"{summary['n_records']} records, {summary['n_jobs_seen']} jobs, "
        f"sim time {span}"
    )
    lines.append(
        f"kills={summary['job_kills']} "
        f"avg_candidate_set={summary['avg_candidates']:.1f}"
    )
    lines.append("records by kind:")
    for kind, count in summary["kinds"].items():
        lines.append(f"  {kind:<12} {count}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TraceDivergence:
    """First point at which two decision streams disagree."""

    #: Index into the decision stream (headers excluded).
    index: int
    record_a: dict[str, Any] | None
    record_b: dict[str, Any] | None
    #: Field names whose values differ (empty when one stream ended).
    fields: tuple[str, ...]

    def describe(self) -> str:
        if self.record_a is None:
            rec = self.record_b or {}
            return (
                f"decision #{self.index}: first trace ended; second "
                f"continues with {rec.get('kind')} at t={rec.get('t')}"
            )
        if self.record_b is None:
            rec = self.record_a
            return (
                f"decision #{self.index}: second trace ended; first "
                f"continues with {rec.get('kind')} at t={rec.get('t')}"
            )
        a, b = self.record_a, self.record_b
        lines = [
            f"decision #{self.index}: {a.get('kind')} at t={a.get('t')} "
            f"vs {b.get('kind')} at t={b.get('t')}"
        ]
        for field in self.fields:
            lines.append(
                f"  {field}: {a.get(field)!r} != {b.get(field)!r}"
            )
        return "\n".join(lines)


def _decisions(records: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    return [r for r in records if r.get("kind") != "header"]


def diff_traces(
    a: Sequence[dict[str, Any]], b: Sequence[dict[str, Any]]
) -> TraceDivergence | None:
    """Locate the first divergent decision between two traces.

    Headers are excluded (two runs that differ only in metadata — e.g.
    the label of the workload — still count as behaviourally identical);
    compare them with :func:`headers_differ`.  Returns None when the
    decision streams are identical.
    """
    da, db = _decisions(a), _decisions(b)
    for i, (ra, rb) in enumerate(zip(da, db)):
        if ra != rb:
            fields = tuple(
                sorted(
                    key
                    for key in (ra.keys() | rb.keys())
                    if ra.get(key) != rb.get(key)
                )
            )
            return TraceDivergence(i, ra, rb, fields)
    if len(da) != len(db):
        i = min(len(da), len(db))
        return TraceDivergence(
            i,
            da[i] if i < len(da) else None,
            db[i] if i < len(db) else None,
            (),
        )
    return None


def headers_differ(
    a: Sequence[dict[str, Any]], b: Sequence[dict[str, Any]]
) -> tuple[str, ...]:
    """Field names on which the two stream headers disagree."""
    ha = next((r for r in a if r.get("kind") == "header"), {})
    hb = next((r for r in b if r.get("kind") == "header"), {})
    return tuple(
        sorted(k for k in (ha.keys() | hb.keys()) if ha.get(k) != hb.get(k))
    )


# ----------------------------------------------------------------------
# validate
# ----------------------------------------------------------------------

def validate_trace(records: Sequence[dict[str, Any]]) -> list[str]:
    """Validate a trace against the schema; returns problems (empty = ok)."""
    return validate_stream(records)
