"""Observability: decision tracing, metrics and profiling.

The simulator and the sweep engine are deterministic, but their headline
numbers are aggregates over millions of individual scheduler decisions.
This package makes those decisions observable without perturbing them:

:mod:`repro.obs.trace`
    :class:`TraceRecorder` emits one schema-versioned JSON record per
    scheduler decision (arrival, candidate enumeration, dispatch,
    backfill promotion, migration, failure, checkpoint).  Tracing is off
    by default and routed through a no-op recorder, so the untraced hot
    path pays nothing.
:mod:`repro.obs.metrics`
    :class:`MetricsRegistry` of counters, gauges, histograms and wall
    -clock timers, plus a module-level *active registry* that hot paths
    (shadow-time engine, placement index, finders) feed when profiling
    is enabled.
:mod:`repro.obs.aggregate`
    Deterministic cross-process merge of per-cell registries and trace
    streams for parallel sweeps.
:mod:`repro.obs.tools`
    The ``repro trace summarize|diff|validate`` toolchain.
:mod:`repro.obs.log`
    The shared ``repro`` logger hierarchy.

Every record and metric is *observational*: reports are bit-for-bit
identical with tracing on or off, which the test suite asserts.
"""

from __future__ import annotations

from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry, activate
from repro.obs.schema import TRACE_SCHEMA_VERSION, validate_record
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    read_trace,
    write_trace,
)

__all__ = [
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "activate",
    "configure_logging",
    "get_logger",
    "read_trace",
    "validate_record",
    "write_trace",
]
