"""repro — reproduction of *Fault-Aware Job Scheduling for BlueGene/L Systems*.

This package implements, from scratch, the complete simulation system of
Oliner, Sahoo, Moreira, Gupta and Sivasubramaniam (IPPS 2004):

* a 3-D torus machine model (the scheduler's 4x4x8 view of BlueGene/L in
  512-node *supernodes*) — :mod:`repro.geometry`;
* three free-partition finders (naive exhaustive, Krevat-style POP dynamic
  programming, and the paper's divisor-driven fast finder) plus maximal
  free partition (MFP) computation — :mod:`repro.allocation`;
* workload models: a Standard Workload Format (SWF) reader/writer and
  synthetic generators for the NASA iPSC/860, SDSC SP and LLNL Cray T3D
  logs used by the paper — :mod:`repro.workloads`;
* failure models: failure logs, a bursty spatially-correlated synthetic
  failure generator, and count rescaling — :mod:`repro.failures`;
* the paper's two fault predictors (balancing/confidence and
  tie-breaking/accuracy) — :mod:`repro.prediction`;
* an event-driven space-sharing scheduler simulator with FCFS queueing,
  backfilling, migration and transient-failure restart semantics, and the
  three scheduling policies (Krevat baseline, balancing, tie-breaking) —
  :mod:`repro.core`;
* timing and capacity metrics (bounded slowdown, utilization integrals) —
  :mod:`repro.metrics`;
* checkpointing (the paper's future-work extension) —
  :mod:`repro.checkpoint`;
* the experiment harness regenerating every figure of the evaluation —
  :mod:`repro.experiments`.

Quickstart
----------
>>> from repro import quick_simulate
>>> report = quick_simulate(site="sdsc", n_jobs=200, n_failures=50,
...                         policy="balancing", confidence=0.1, seed=0)
>>> 0.0 <= report.capacity.utilized <= 1.0
True
"""

from __future__ import annotations

from typing import Any

from repro._version import __version__

__all__ = [
    "__version__",
    "quick_simulate",
    "run_simulation",
    "SimulationSetup",
]


def __getattr__(name: str) -> Any:
    # Lazy re-exports: keep `import repro.geometry` cheap and cycle-free
    # while still offering the one-line entry points at package top level.
    if name in ("quick_simulate", "run_simulation", "SimulationSetup"):
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
