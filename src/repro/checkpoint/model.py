"""Analytic checkpointing model.

Checkpoints are modelled analytically rather than as discrete simulator
events: with a fixed interval ``I`` and per-checkpoint overhead ``κ``, a
run alternates ``I`` seconds of work with ``κ`` seconds of saving, so
after ``τ`` seconds of wall time exactly ``floor(τ / (I + κ)) · I``
seconds of work are banked.  This is exact for the quantities the
simulator needs (wall duration of a run, progress recoverable at an
arbitrary kill time) while keeping the event loop free of per-checkpoint
traffic — the same reduction the paper applies by not simulating
checkpoint events in its baseline runs.

Two mechanisms, combinable:

* **periodic** — checkpoint every ``interval_s`` seconds of work;
* **predictive** — when a failure actually strikes, the prediction
  subsystem had flagged it with probability ``hit_probability`` (the
  paper's ``a``); on a hit the job checkpointed ``overhead_s`` seconds
  before the failure, losing (almost) nothing.  This realises the
  paper's "checkpoint close to the time when one of its nodes is likely
  to fail".
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


class CheckpointMode(enum.Enum):
    """Which checkpointing mechanisms are active."""

    NONE = "none"
    PERIODIC = "periodic"
    PREDICTIVE = "predictive"
    BOTH = "both"


@dataclass(frozen=True, slots=True)
class CheckpointConfig:
    """Checkpointing parameters.

    ``interval_s`` is work seconds between periodic checkpoints;
    ``overhead_s`` the wall cost of writing one checkpoint;
    ``hit_probability`` the chance a failure was predicted in time for a
    just-in-time checkpoint (predictive modes only).
    """

    mode: CheckpointMode = CheckpointMode.NONE
    interval_s: float = 3600.0
    overhead_s: float = 60.0
    hit_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise SimulationError("checkpoint interval must be positive")
        if self.overhead_s < 0:
            raise SimulationError("checkpoint overhead must be >= 0")
        if not 0.0 <= self.hit_probability <= 1.0:
            raise SimulationError("hit_probability must be in [0, 1]")

    @property
    def periodic(self) -> bool:
        return self.mode in (CheckpointMode.PERIODIC, CheckpointMode.BOTH)

    @property
    def predictive(self) -> bool:
        return self.mode in (CheckpointMode.PREDICTIVE, CheckpointMode.BOTH)


class CheckpointModel:
    """Pure functions mapping work time to wall time under a config."""

    __slots__ = ("config",)

    def __init__(self, config: CheckpointConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def wall_duration(self, work_s: float) -> float:
        """Wall time a run of ``work_s`` seconds of work occupies.

        Periodic checkpointing inserts one overhead per *completed*
        interval; a checkpoint that would land exactly at job completion
        is skipped (nothing left to protect).
        """
        if work_s < 0:
            raise SimulationError(f"work must be >= 0, got {work_s}")
        cfg = self.config
        if not cfg.periodic or cfg.overhead_s == 0.0:
            return work_s
        n_checkpoints = math.ceil(work_s / cfg.interval_s) - 1 if work_s > 0 else 0
        return work_s + max(0, n_checkpoints) * cfg.overhead_s

    def periodic_progress(self, wall_elapsed_s: float) -> float:
        """Work banked by periodic checkpoints after ``wall_elapsed_s``
        seconds of wall time in the current run."""
        cfg = self.config
        if not cfg.periodic or wall_elapsed_s <= 0:
            return 0.0
        cycle = cfg.interval_s + cfg.overhead_s
        return math.floor(wall_elapsed_s / cycle) * cfg.interval_s

    def work_done(self, wall_elapsed_s: float) -> float:
        """Work executed (banked or not) after ``wall_elapsed_s`` wall
        seconds of the current run."""
        cfg = self.config
        if wall_elapsed_s <= 0:
            return 0.0
        if not cfg.periodic or cfg.overhead_s == 0.0:
            return wall_elapsed_s
        cycle = cfg.interval_s + cfg.overhead_s
        full, rem = divmod(wall_elapsed_s, cycle)
        return full * cfg.interval_s + min(rem, cfg.interval_s)

    # ------------------------------------------------------------------
    def progress_at_kill(
        self,
        base_progress: float,
        wall_elapsed_s: float,
        total_work_s: float,
        rng: np.random.Generator,
    ) -> float:
        """Total banked work after a failure ``wall_elapsed_s`` into a run.

        ``base_progress`` is the banked work the run resumed from.  The
        result is capped at ``total_work_s`` and never regresses below
        ``base_progress``.
        """
        cfg = self.config
        banked = base_progress
        if cfg.periodic:
            banked = max(banked, base_progress + self.periodic_progress(wall_elapsed_s))
        if cfg.predictive and cfg.hit_probability > 0.0:
            if rng.random() < cfg.hit_probability:
                # Just-in-time checkpoint: everything executed up to
                # ``overhead_s`` before the failure is saved.
                executed = self.work_done(wall_elapsed_s)
                banked = max(banked, base_progress + max(0.0, executed - cfg.overhead_s))
        return min(banked, total_work_s)
