"""Checkpointing — the paper's future-work extension (§8).

The base paper evaluates *no-checkpoint* runs (every failure restarts a
job from scratch).  Its conclusions sketch the next step: adapt
checkpointing intervals and overheads to the prediction confidence.
This subpackage implements that extension so the ablation benchmarks can
quantify how much of the fault-aware scheduling benefit checkpointing
recovers on its own.
"""

from __future__ import annotations

from repro.checkpoint.model import CheckpointConfig, CheckpointMode, CheckpointModel

__all__ = ["CheckpointConfig", "CheckpointMode", "CheckpointModel"]
