"""Synthetic bursty, spatially-correlated failure traces.

The cluster trace the paper replays has two structural properties its
results depend on (§7.1):

* **temporal clustering** — "many instances of multiple failure events,
  simultaneously reported from different nodes"; this is why slowdown
  saturates as the failure count grows (extra failures pile onto
  already-doomed partitions);
* **spatial locality** — burst members concentrate near each other
  (shared racks, power, network), so a burst tends to hit one region of
  the torus.

:class:`BurstFailureModel` generates exactly that: burst *epochs* arrive
as a Poisson process, each burst draws a heavy-tailed member count, a
random epicentre and a Manhattan-ball neighbourhood, and member event
times jitter within a short window around the epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FailureModelError
from repro.failures.events import FailureLog
from repro.geometry.coords import TorusDims, manhattan_torus_distance


@dataclass(frozen=True)
class BurstFailureModel:
    """Parameters of the burst failure generator.

    Parameters
    ----------
    mean_burst_interarrival_s:
        Mean time between burst epochs (exponential).
    burst_size_p:
        Geometric parameter for the number of events per burst; mean
        burst size is ``1/p``.  ``p=1`` gives isolated failures.
    locality_radius:
        Manhattan-ball radius around the burst epicentre from which
        member nodes are drawn (0 = same node only).
    burst_window_s:
        Member event times are uniform within this window after the
        epoch ("simultaneously reported" in the trace means within
        seconds to minutes).
    """

    mean_burst_interarrival_s: float = 6 * 3600.0
    burst_size_p: float = 0.45
    locality_radius: int = 2
    burst_window_s: float = 300.0

    def __post_init__(self) -> None:
        if self.mean_burst_interarrival_s <= 0:
            raise FailureModelError("mean_burst_interarrival_s must be positive")
        if not 0 < self.burst_size_p <= 1:
            raise FailureModelError("burst_size_p must be in (0, 1]")
        if self.locality_radius < 0:
            raise FailureModelError("locality_radius must be >= 0")
        if self.burst_window_s < 0:
            raise FailureModelError("burst_window_s must be >= 0")


def _neighbourhood(dims: TorusDims, centre_id: int, radius: int) -> np.ndarray:
    """Linear ids of all nodes within Manhattan torus distance ``radius``."""
    centre = dims.coord(centre_id)
    ids = [
        dims.index(c)
        for c in dims.iter_coords()
        if manhattan_torus_distance(dims, centre, c) <= radius
    ]
    return np.array(ids, dtype=np.int64)


def generate_failures(
    dims: TorusDims,
    n_events: int,
    horizon_s: float,
    model: BurstFailureModel | None = None,
    seed: int | None = 0,
) -> FailureLog:
    """Generate a failure log with exactly ``n_events`` events in
    ``[0, horizon_s)``.

    Bursts are generated until ``n_events`` events exist; event times are
    then rescaled into the horizon (preserving burst structure), matching
    the paper's procedure of rescaling a fixed trace to a target count
    over the workload span.
    """
    if n_events < 0:
        raise FailureModelError(f"n_events must be >= 0, got {n_events}")
    if horizon_s <= 0:
        raise FailureModelError(f"horizon_s must be positive, got {horizon_s}")
    model = model or BurstFailureModel()
    rng = np.random.default_rng(seed)
    if n_events == 0:
        return FailureLog(dims.volume)

    times: list[float] = []
    nodes: list[int] = []
    t = 0.0
    while len(times) < n_events:
        t += rng.exponential(model.mean_burst_interarrival_s)
        burst_size = rng.geometric(model.burst_size_p)
        centre = int(rng.integers(dims.volume))
        pool = _neighbourhood(dims, centre, model.locality_radius)
        members = rng.choice(pool, size=min(burst_size, pool.size), replace=False)
        for node in members:
            times.append(t + float(rng.uniform(0.0, model.burst_window_s)))
            nodes.append(int(node))
    times_arr = np.array(times[:n_events])
    nodes_arr = np.array(nodes[:n_events])
    # Rescale into [0, horizon): affine map keeps the burst structure.
    t_max = float(times_arr.max())
    if t_max > 0:
        times_arr = times_arr * ((horizon_s * (1.0 - 1e-9)) / t_max)
    return FailureLog.from_arrays(dims.volume, times_arr, nodes_arr)
