"""Failure models: logs, synthetic generation and rescaling.

The paper replays a one-year failure trace from a 350-node cluster
(Sahoo et al., KDD'03), rescaled so every workload sees the same average
failures per node per day: 4000 events for the NASA and SDSC runs, 1000
for LLNL.  Offline we regenerate a statistically similar trace: failures
arrive in temporally-clustered bursts with spatial locality — the
property responsible for the paper's observed slowdown saturation at
high failure counts.
"""

from __future__ import annotations

from repro.failures.events import FailureEvent, FailureLog
from repro.failures.synthetic import BurstFailureModel, generate_failures
from repro.failures.scaling import rescale_failures, failures_for_rate
from repro.failures.mapping import map_node_ids

__all__ = [
    "FailureEvent",
    "FailureLog",
    "BurstFailureModel",
    "generate_failures",
    "rescale_failures",
    "failures_for_rate",
    "map_node_ids",
]
