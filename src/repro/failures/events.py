"""Failure events and the failure log.

A :class:`FailureLog` is an immutable, time-sorted sequence of
``(time, node)`` events over the torus's linear node ids.  Both the
simulator (which injects the events) and the predictors (which peek at
the same log with degraded confidence — §4 of the paper) read from one
shared instance, so prediction "hits" always refer to failures that will
actually occur.

Window queries are the predictor hot path; the log keeps parallel NumPy
arrays sorted by time so a window resolves with two ``searchsorted``
calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import FailureModelError


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One transient node failure at ``time`` on linear node id ``node``."""

    time: float
    node: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FailureModelError(f"failure time must be >= 0, got {self.time}")
        if self.node < 0:
            raise FailureModelError(f"node id must be >= 0, got {self.node}")


class FailureLog:
    """Immutable time-sorted failure trace over ``n_nodes`` linear ids."""

    __slots__ = ("n_nodes", "times", "nodes")

    def __init__(self, n_nodes: int, events: Sequence[FailureEvent] = ()) -> None:
        if n_nodes < 1:
            raise FailureModelError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = n_nodes
        order = sorted(range(len(events)), key=lambda i: (events[i].time, events[i].node))
        times = np.array([events[i].time for i in order], dtype=np.float64)
        nodes = np.array([events[i].node for i in order], dtype=np.int64)
        if nodes.size and int(nodes.max()) >= n_nodes:
            raise FailureModelError(
                f"node id {int(nodes.max())} out of range for {n_nodes} nodes"
            )
        times.setflags(write=False)
        nodes.setflags(write=False)
        self.times = times
        self.nodes = nodes

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, n_nodes: int, times: np.ndarray, nodes: np.ndarray) -> "FailureLog":
        """Build a log from parallel arrays (no per-event objects)."""
        if times.shape != nodes.shape:
            raise FailureModelError("times and nodes must have equal shapes")
        log = cls.__new__(cls)
        if n_nodes < 1:
            raise FailureModelError(f"n_nodes must be positive, got {n_nodes}")
        order = np.lexsort((nodes, times))
        t = np.asarray(times, dtype=np.float64)[order]
        n = np.asarray(nodes, dtype=np.int64)[order]
        if t.size and float(t.min()) < 0:
            raise FailureModelError("failure times must be >= 0")
        if n.size and (int(n.min()) < 0 or int(n.max()) >= n_nodes):
            raise FailureModelError("node ids out of range")
        t.setflags(write=False)
        n.setflags(write=False)
        log.n_nodes = n_nodes
        log.times = t
        log.nodes = n
        return log

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.times.size)

    def __iter__(self) -> Iterator[FailureEvent]:
        for t, n in zip(self.times, self.nodes):
            yield FailureEvent(float(t), int(n))

    @property
    def span(self) -> float:
        """Time between first and last event (0 if < 2 events)."""
        if len(self) < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    def window_slice(self, t0: float, t1: float) -> tuple[int, int]:
        """Index range ``[lo, hi)`` of events with ``t0 <= time < t1``."""
        lo = int(np.searchsorted(self.times, t0, side="left"))
        hi = int(np.searchsorted(self.times, t1, side="left"))
        return lo, hi

    def nodes_failing_in(self, t0: float, t1: float) -> np.ndarray:
        """Unique node ids with at least one failure in ``[t0, t1)``."""
        lo, hi = self.window_slice(t0, t1)
        return np.unique(self.nodes[lo:hi])

    def failure_mask(self, t0: float, t1: float) -> np.ndarray:
        """Boolean array over node ids: True where a failure falls in
        ``[t0, t1)``.  This is the balancing predictor's raw signal."""
        mask = np.zeros(self.n_nodes, dtype=bool)
        mask[self.nodes_failing_in(t0, t1)] = True
        return mask

    def count_in(self, t0: float, t1: float) -> int:
        """Number of failure events in ``[t0, t1)``."""
        lo, hi = self.window_slice(t0, t1)
        return hi - lo

    def events_in(self, t0: float, t1: float) -> Iterator[FailureEvent]:
        """Iterate events with ``t0 <= time < t1`` in time order."""
        lo, hi = self.window_slice(t0, t1)
        for i in range(lo, hi):
            yield FailureEvent(float(self.times[i]), int(self.nodes[i]))

    def per_node_counts(self) -> np.ndarray:
        """Failure count per node id (length ``n_nodes``)."""
        return np.bincount(self.nodes, minlength=self.n_nodes)

    def mean_failures_per_node_day(self) -> float:
        """Average failures per node per day over the log span."""
        if self.span <= 0:
            return 0.0
        days = self.span / 86_400.0
        return len(self) / (self.n_nodes * days)
