"""Mapping external node ids onto the torus.

Real failure traces identify nodes of a *different* machine (the paper's
trace covers 350 cluster nodes; the simulated torus has 128 supernodes).
The paper links the two by reusing the trace's failure *timings* on the
simulated machine.  :func:`map_node_ids` performs the id translation:
a deterministic hash-like permutation spreads external ids across torus
nodes so spatially-adjacent external ids do not all collapse onto one
torus region, while identical external ids always map to the same torus
node (a flaky machine stays flaky).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FailureModelError
from repro.failures.events import FailureLog
from repro.geometry.coords import TorusDims


def map_node_ids(
    log: FailureLog, dims: TorusDims, seed: int | None = 0
) -> FailureLog:
    """Re-home a failure log onto ``dims``' linear node ids.

    External ids are assigned to torus nodes round-robin over a seeded
    random permutation of the torus: stable (same external id → same
    torus node), balanced (at most ``ceil(n_ext / volume)`` external ids
    per torus node), and seed-reproducible.
    """
    if len(log) == 0:
        return FailureLog(dims.volume)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(dims.volume)
    n_ext = log.n_nodes
    if n_ext < 1:
        raise FailureModelError("source log has no nodes")
    table = perm[np.arange(n_ext) % dims.volume]
    return FailureLog.from_arrays(dims.volume, log.times.copy(), table[log.nodes])
