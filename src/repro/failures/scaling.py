"""Rescaling failure logs to target counts and rates.

The paper normalises its 350-node, one-year failure trace so every
simulated system sees the same average failures per node per day (4000
events for the NASA/SDSC studies, 1000 for LLNL), and separately sweeps
the SDSC study over failure counts 0..4000 in steps of 500.  These
helpers perform both operations on any :class:`FailureLog`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FailureModelError
from repro.failures.events import FailureLog


def rescale_failures(log: FailureLog, n_events: int, seed: int | None = 0) -> FailureLog:
    """Thin or repeat a log to exactly ``n_events`` events.

    Thinning samples events uniformly without replacement, preserving
    burst structure in expectation; growing repeats the log with jittered
    times.  ``n_events == len(log)`` returns the log unchanged.
    """
    if n_events < 0:
        raise FailureModelError(f"n_events must be >= 0, got {n_events}")
    if n_events == len(log):
        return log
    rng = np.random.default_rng(seed)
    if n_events == 0:
        return FailureLog(log.n_nodes)
    if len(log) == 0:
        raise FailureModelError("cannot grow an empty failure log")
    if n_events < len(log):
        keep = np.sort(rng.choice(len(log), size=n_events, replace=False))
        return FailureLog.from_arrays(log.n_nodes, log.times[keep], log.nodes[keep])
    # Growing: tile the log and jitter duplicate event times slightly so
    # replica bursts do not coincide exactly.
    reps = -(-n_events // len(log))
    times = np.tile(log.times, reps)[:n_events].copy()
    nodes = np.tile(log.nodes, reps)[:n_events].copy()
    span = max(log.span, 1.0)
    dup = np.arange(times.size) >= len(log)
    times[dup] += rng.uniform(0, 0.01 * span, size=int(dup.sum()))
    return FailureLog.from_arrays(log.n_nodes, times, nodes)


def failures_for_rate(
    failures_per_node_day: float, n_nodes: int, horizon_s: float
) -> int:
    """Event count corresponding to a per-node-per-day failure rate.

    The paper quotes rates like "1 failure per four days" (machine-wide)
    for its 1000-failure point; this converts between the two views.
    """
    if failures_per_node_day < 0:
        raise FailureModelError("rate must be >= 0")
    if n_nodes < 1 or horizon_s <= 0:
        raise FailureModelError("n_nodes must be >= 1 and horizon_s > 0")
    days = horizon_s / 86_400.0
    return int(round(failures_per_node_day * n_nodes * days))
