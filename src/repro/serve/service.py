"""Asyncio NDJSON server wrapping a :class:`~repro.serve.engine.ServeEngine`.

One server owns one engine (one simulated machine, one session).  Any
number of clients may connect over TCP or a unix socket; each
connection is a line-oriented request/response stream, and clients may
pipeline requests.  Engine calls are synchronous and run on the event
loop — they are microsecond-scale per request, and single-threaded
dispatch is what keeps the session deterministic (requests are applied
in exactly the order lines arrive).

Graceful shutdown (``shutdown`` op, :meth:`SchedulerService.stop`, or
SIGINT in :func:`run_service`) stops accepting connections, drains the
engine — every admitted job runs to completion and the final report is
computed — then closes remaining connections.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any

from repro.errors import ProtocolError, ServeError
from repro.obs.log import get_logger
from repro.serve.engine import ServeEngine
from repro.serve.protocol import MAX_LINE_BYTES, decode_line, encode, error_response

logger = get_logger(__name__)


class SchedulerService:
    """Serves one engine over TCP (``host``/``port``) or a unix socket."""

    def __init__(
        self,
        engine: ServeEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: str | Path | None = None,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.unix_path = Path(unix_path) if unix_path is not None else None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._connections = 0

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """The bound address, ``host:port`` or the socket path."""
        if self.unix_path is not None:
            return str(self.unix_path)
        if self._server is None or not self._server.sockets:
            raise ServeError("service is not listening")
        bound = self._server.sockets[0].getsockname()
        return f"{bound[0]}:{bound[1]}"

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ServeError("service already started")
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=str(self.unix_path),
                limit=MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=MAX_LINE_BYTES,
            )
        logger.info("serving on %s", self.address)

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`) lands."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain the engine, close up."""
        if self._server is None:
            return
        self._server.close()
        if drain:
            self.engine.handle({"op": "drain"})
        await self._server.wait_closed()
        self._server = None
        if self.unix_path is not None:
            self.unix_path.unlink(missing_ok=True)
        self._shutdown.set()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode(
                            error_response(
                                ProtocolError(
                                    f"request line exceeds {MAX_LINE_BYTES} bytes"
                                ),
                                protocol_error=True,
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line)
                except ProtocolError as exc:
                    writer.write(encode(error_response(exc, protocol_error=True)))
                    await writer.drain()
                    continue
                response = self.engine.handle(message)
                writer.write(encode(response))
                await writer.drain()
                if response.get("shutdown"):
                    self._shutdown.set()
                    break
        except ConnectionResetError:
            pass
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def run_service(
    engine: ServeEngine,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_path: str | Path | None = None,
    ready_file: str | Path | None = None,
    metrics_file: str | Path | None = None,
) -> dict[str, Any]:
    """Run a service until shutdown; returns the final metrics snapshot.

    ``ready_file`` (written once listening, containing the bound
    address) lets a supervisor — the CI smoke job, a test fixture —
    discover the ephemeral port without racing the bind.
    """

    async def _main() -> None:
        service = SchedulerService(
            engine, host=host, port=port, unix_path=unix_path
        )
        await service.start()
        if ready_file is not None:
            Path(ready_file).write_text(service.address + "\n", encoding="utf-8")
        await service.serve_until_shutdown()

    asyncio.run(_main())
    snapshot = engine.metrics_snapshot()
    if metrics_file is not None:
        Path(metrics_file).write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return snapshot
