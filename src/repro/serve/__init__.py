"""Online scheduler-as-a-service front-end.

The batch pipeline answers "what would this trace have done"; this
package serves the same engine to live clients.  Jobs stream in over a
newline-delimited-JSON protocol (:mod:`repro.serve.protocol`), pass
weighted fair-share admission control with bounded queues
(:mod:`repro.serve.admission`), and drive the steppable simulator
through its arrival watermark (:mod:`repro.serve.engine`).  An asyncio
TCP/unix-socket server (:mod:`repro.serve.service`), blocking clients
(:mod:`repro.serve.client`) and a deterministic replay/load harness
(:mod:`repro.serve.load`) complete the loop.

A trace replayed through the service produces a final report
byte-identical to the batch simulator run of the same workload — the
equivalence the acceptance suite in ``tests/serve`` pins.
"""

from __future__ import annotations

from repro.serve.admission import FairShareAdmission, TenantQueue
from repro.serve.client import InprocClient, SocketClient, connect
from repro.serve.engine import ServeEngine
from repro.serve.load import LoadReport, run_load
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode,
    error_response,
    validate_request,
)
from repro.serve.service import SchedulerService

__all__ = [
    "FairShareAdmission",
    "TenantQueue",
    "InprocClient",
    "SocketClient",
    "connect",
    "ServeEngine",
    "LoadReport",
    "run_load",
    "MAX_LINE_BYTES",
    "decode_line",
    "encode",
    "error_response",
    "validate_request",
    "SchedulerService",
]
