"""Transport-independent service core: admission + steppable simulator.

:class:`ServeEngine` owns one open-ended :class:`~repro.core.Simulator`,
one :class:`~repro.core.arrivals.OnlineArrivalStream` and one
:class:`~repro.serve.admission.FairShareAdmission` controller, and maps
protocol requests onto them through a synchronous
:meth:`~ServeEngine.handle`.  The asyncio server and the in-process
client are both thin shells around this method — which is what lets the
load harness measure the engine's real submission throughput without
a transport in the way.

Pumping discipline: the event loop only advances through batches that
fall strictly inside the arrival watermark (see
:mod:`repro.core.arrivals`), and does so lazily — every
``pump_interval`` submissions rather than on each one — so a burst of
submits isn't serialised against simulation work.  ``drain`` closes the
stream and runs the engine dry; for a trace replay the resulting report
is byte-identical to the batch simulator's.

Backpressure: per-tenant queues are hard-capped in both clock modes
(reject + ``retry_after``).  Engine backlog (released but uncompleted
jobs) is hard-capped under the ``logical`` clock — queued jobs simply
wait their turn — but only soft-capped under the ``trace`` clock: a
replayed arrival cannot be deferred without rewriting history, so the
engine pumps to free room and otherwise admits anyway, counting a
``serve.soft_overflows`` metric.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any

from repro.errors import ProtocolError, ReproError, ServeError
from repro.failures.events import FailureLog
from repro.geometry.shapes import shapes_for_size
from repro.metrics.serialize import report_to_dict
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.serve.admission import FairShareAdmission
from repro.serve.protocol import PROTOCOL_VERSION, error_response, validate_request
from repro.core.arrivals import OnlineArrivalStream
from repro.core.config import SimulationConfig
from repro.core.policies.base import SchedulingPolicy
from repro.core.simulator import Simulator
from repro.workloads.job import Job, Workload

#: Default cap on released-but-uncompleted jobs inside the engine.
DEFAULT_ENGINE_CAP = 512

#: Default submissions between lazy pump passes.
DEFAULT_PUMP_INTERVAL = 32


class ServeEngine:
    """One service instance: session state, admission and the simulator."""

    def __init__(
        self,
        workload_name: str,
        machine_nodes: int,
        failure_log: FailureLog,
        policy: SchedulingPolicy,
        config: SimulationConfig | None = None,
        *,
        clock: str = "trace",
        weights: dict[str, float] | None = None,
        tenant_cap: int = 256,
        engine_cap: int = DEFAULT_ENGINE_CAP,
        pump_interval: int = DEFAULT_PUMP_INTERVAL,
        recorder: TraceRecorder | NullRecorder | None = None,
    ) -> None:
        if engine_cap < 1:
            raise ServeError(f"engine_cap must be >= 1, got {engine_cap}")
        if pump_interval < 1:
            raise ServeError(f"pump_interval must be >= 1, got {pump_interval}")
        empty = Workload(workload_name, machine_nodes, ())
        self.sim = Simulator(
            empty, failure_log, policy, config, recorder=recorder, open_ended=True
        )
        self.stream = OnlineArrivalStream()
        self.stream.bind(self.sim)
        self.admission = FairShareAdmission(
            weights, tenant_cap=tenant_cap, clock=clock
        )
        self.clock = clock
        self.engine_cap = engine_cap
        self.pump_interval = pump_interval
        self.metrics = MetricsRegistry()
        self._tick = 0.0
        self._since_pump = 0
        self._drained: dict[str, Any] | None = None
        self._submitted = 0
        if self.sim.recorder.enabled:
            dims = self.sim.config.dims
            self.sim.recorder.header(
                policy=policy.name,
                workload=workload_name,
                dims=[dims.x, dims.y, dims.z],
                seed=self.sim.config.seed,
                serve_clock=clock,
                backfill=self.sim.config.backfill.value,
                migration=self.sim.config.migration,
            )

    @classmethod
    def from_setup(cls, setup: Any, **kwargs: Any) -> "ServeEngine":
        """Build from an :class:`~repro.api.SimulationSetup`.

        The full workload is synthesized and *discarded* — only its name
        and the failure log derived from its span are kept — so a client
        replaying that same workload reproduces the batch run exactly
        (same failures, same policy seeding).
        """
        from repro.core.policies.registry import make_policy

        workload = setup.build_workload()
        failures = setup.build_failures(workload)
        policy = make_policy(
            setup.policy,
            failure_log=failures,
            parameter=setup.parameter,
            pf_rule=setup.pf_rule,
            seed=setup.seed + 2,
        )
        return cls(
            workload.name,
            workload.machine_nodes,
            failures,
            policy,
            setup.config,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def handle(self, message: dict[str, Any]) -> dict[str, Any]:
        """Process one request dict and return the response dict."""
        start = time.perf_counter()
        try:
            op = validate_request(message)
        except ProtocolError as exc:
            return error_response(exc, protocol_error=True)
        try:
            if op == "submit":
                response = self._submit(message)
            elif op == "cancel":
                response = self._cancel(message)
            elif op == "status":
                response = self._status(message)
            elif op == "stats":
                response = self._stats()
            elif op == "ping":
                response = {"ok": True, "pong": True, "version": PROTOCOL_VERSION}
            elif op == "drain":
                response = self._drain()
            else:  # shutdown: drain now, transport stops afterwards
                response = self._drain()
                response["shutdown"] = True
        except ReproError as exc:
            response = error_response(exc)
        elapsed_us = (time.perf_counter() - start) * 1e6
        self.metrics.histogram(f"serve.{op}_latency_us").observe(elapsed_us)
        if "id" in message and "id" not in response:
            response["id"] = message["id"]
        return response

    # ------------------------------------------------------------------
    def _submit(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._drained is not None:
            raise ServeError("service is drained; no further submissions")
        self.metrics.counter("serve.submitted").inc()
        self._submitted += 1
        job_id = message["id"]
        size = message["size"]
        dims = self.sim.config.dims
        if size > dims.volume or not shapes_for_size(size, dims):
            raise ServeError(
                f"job {job_id} size {size} has no rectangular partition "
                f"on {dims.as_tuple()}"
            )
        if self.clock == "trace":
            if "arrival" not in message:
                raise ProtocolError(
                    "trace clock requires an 'arrival' time on submit"
                )
            arrival = float(message["arrival"])
            if arrival < self.stream.watermark:
                raise ServeError(
                    f"job {job_id} arrival {arrival} is in the simulated "
                    f"past (watermark {self.stream.watermark}); trace-mode "
                    f"submissions must be nondecreasing in arrival"
                )
        else:
            arrival = float(message.get("arrival", 0.0))
        job = Job(
            job_id=job_id,
            arrival=max(arrival, 0.0),
            size=size,
            runtime=float(message["runtime"]),
            estimate=float(message.get("estimate", -1.0)),
        )
        existing = self.sim.job_status(job_id)
        if existing not in ("unknown", "cancelled") or (
            self.admission.find(job_id) is not None
        ):
            raise ServeError(f"job {job_id} already submitted ({existing})")
        tenant = message.get("tenant", "default")
        retry_after = self.admission.offer(tenant, job)
        if retry_after is not None:
            self.metrics.counter("serve.rejected").inc()
            return {
                "ok": False,
                "rejected": True,
                "retry_after": round(retry_after, 6),
                "error": f"tenant {tenant!r} queue is full",
            }
        self.metrics.counter("serve.admitted").inc()
        self._release()
        self._since_pump += 1
        if self._since_pump >= self.pump_interval:
            self._since_pump = 0
            self.sim.pump(horizon=self.stream.watermark)
        self.metrics.gauge("serve.queue_depth").set(self.admission.backlog)
        self.metrics.gauge("serve.outstanding").set(self.sim.outstanding)
        return {"ok": True, "queued": self.admission.backlog}

    def _release(self) -> None:
        """Move admitted jobs from tenant queues into the simulator."""
        while self.admission.backlog:
            if self.sim.outstanding >= self.engine_cap:
                if self.clock == "logical":
                    return  # hard cap: jobs wait in their tenant queues
                # Trace clock: history cannot wait.  Pump up to the next
                # release's arrival to free room, then admit regardless.
                head = self.admission.head_arrival()
                progressed = self.sim.pump(horizon=head if head is not None else 0.0)
                if not progressed and self.sim.outstanding >= self.engine_cap:
                    self.metrics.counter("serve.soft_overflows").inc()
            job = self.admission.release_next()
            if job is None:
                return
            if self.clock == "logical":
                job = replace(job, arrival=self._tick)
                self._tick += 1.0
            self.stream.submit(job)

    def _cancel(self, message: dict[str, Any]) -> dict[str, Any]:
        job_id = message["id"]
        if self.admission.withdraw(job_id):
            self.metrics.counter("serve.cancelled").inc()
            return {"ok": True, "caught": "admission"}
        outcome = self.sim.cancel_job(job_id)
        if outcome == "unknown":
            raise ServeError(f"job {job_id} is not known to this session")
        if outcome == "completed":
            return {"ok": False, "error": f"job {job_id} already completed"}
        if outcome != "cancelled":  # "cancelled" = repeat cancel, idempotent
            self.metrics.counter("serve.cancelled").inc()
        return {"ok": True, "caught": outcome}

    def _status(self, message: dict[str, Any]) -> dict[str, Any]:
        job_id = message["id"]
        if self.admission.find(job_id) is not None:
            return {"ok": True, "state": "admitted"}
        state = self.sim.job_status(job_id)
        if state == "unknown":
            raise ServeError(f"job {job_id} is not known to this session")
        return {"ok": True, "state": state}

    def _stats(self) -> dict[str, Any]:
        return {
            "ok": True,
            "version": PROTOCOL_VERSION,
            "clock": self.clock,
            "submitted": self._submitted,
            "admitted": self.admission.total_admitted,
            "rejected": self.admission.total_rejected,
            "queue_depth": self.admission.backlog,
            "outstanding": self.sim.outstanding,
            "completed": self.sim.completed_count,
            "watermark": self.stream.watermark,
            "drained": self._drained is not None,
            "tenants": self.admission.shares(),
        }

    def _drain(self) -> dict[str, Any]:
        if self._drained is None:
            self._release_all()
            self.stream.close()
            report = self.sim.drain()
            self._drained = {
                "ok": True,
                "report": report_to_dict(report),
                "stats": self._stats(),
            }
            # _stats() above ran before "drained" flipped observable.
            self._drained["stats"]["drained"] = True
        return self._drained

    def _release_all(self) -> None:
        """Flush every tenant queue into the engine, caps waived — a
        drain honours all admitted work."""
        while self.admission.backlog:
            job = self.admission.release_next()
            if job is None:
                return
            if self.clock == "logical":
                job = replace(job, arrival=self._tick)
                self._tick += 1.0
            self.stream.submit(job)

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict[str, Any]:
        """Service-layer metrics plus the simulator's own registry."""
        snapshot = self.metrics.to_dict()
        if self.sim.metrics is not None:
            snapshot["sim"] = self.sim.metrics.to_dict()
        return snapshot
