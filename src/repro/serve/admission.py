"""Weighted fair-share admission control with bounded tenant queues.

Submissions land in a per-tenant FIFO whose depth is capped — a full
queue yields an explicit reject with a ``retry_after`` hint rather than
unbounded growth.  A stride scheduler (pass/stride, the classic
deterministic analogue of lottery scheduling) then releases queued jobs
to the engine: each release advances the tenant's pass by
``STRIDE_SCALE / weight``, and the tenant with the smallest pass goes
next, so long-run release rates are proportional to weights.

Two clock disciplines, chosen at engine construction:

``trace``
    Clients state simulated arrival times (an SWF replay).  Simulated
    time is authoritative, so releases follow global arrival order and
    the stride pass only breaks same-instant ties — fairness cannot be
    allowed to reorder history, or the replay would diverge from the
    batch run it must reproduce.
``logical``
    The service assigns arrivals from a monotonic logical tick at
    release time, so stride order *is* arrival order and weights
    genuinely shape the schedule.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.workloads.job import Job

#: Pass-value scale; weights divide it, so larger weight = smaller stride.
STRIDE_SCALE = 1 << 20

#: Per-job backoff hint (seconds) multiplied by queue depth on reject.
_RETRY_PER_QUEUED = 0.001


@dataclass
class TenantQueue:
    """One tenant's bounded FIFO plus its stride-scheduler state."""

    name: str
    weight: float = 1.0
    cap: int = 256
    queue: deque[Job] = field(default_factory=deque)
    pass_value: float = 0.0
    admitted: int = 0
    rejected: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ServeError(
                f"tenant {self.name!r}: weight must be positive, got {self.weight}"
            )
        if self.cap < 1:
            raise ServeError(
                f"tenant {self.name!r}: queue cap must be >= 1, got {self.cap}"
            )
        self.stride = STRIDE_SCALE / self.weight

    @property
    def depth(self) -> int:
        return len(self.queue)


class FairShareAdmission:
    """Bounded per-tenant queues drained in weighted stride order."""

    def __init__(
        self,
        weights: dict[str, float] | None = None,
        *,
        tenant_cap: int = 256,
        clock: str = "trace",
    ) -> None:
        if clock not in ("trace", "logical"):
            raise ServeError(f"clock must be 'trace' or 'logical', got {clock!r}")
        self.clock = clock
        self.tenant_cap = tenant_cap
        self._tenants: dict[str, TenantQueue] = {}
        self._weights = dict(weights or {})
        self.total_admitted = 0
        self.total_rejected = 0
        for name in self._weights:
            self.tenant(name)

    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantQueue:
        """Get-or-create a tenant queue (unknown tenants get weight 1).

        A newcomer starts at the current maximum pass value, not zero —
        otherwise it would monopolise releases until it "caught up" on
        share it was never owed.
        """
        tq = self._tenants.get(name)
        if tq is None:
            start_pass = max(
                (t.pass_value for t in self._tenants.values()), default=0.0
            )
            tq = TenantQueue(
                name,
                weight=self._weights.get(name, 1.0),
                cap=self.tenant_cap,
            )
            tq.pass_value = start_pass
            self._tenants[name] = tq
        return tq

    def offer(self, tenant_name: str, job: Job) -> float | None:
        """Queue a submission; ``None`` on success, else a retry-after
        hint in seconds (the queue is full)."""
        tq = self.tenant(tenant_name)
        if tq.depth >= tq.cap:
            tq.rejected += 1
            self.total_rejected += 1
            return tq.depth * _RETRY_PER_QUEUED
        tq.queue.append(job)
        tq.admitted += 1
        self.total_admitted += 1
        return None

    def withdraw(self, job_id: int) -> bool:
        """Remove a still-queued submission (the cancel fast path)."""
        for tq in self._tenants.values():
            for job in tq.queue:
                if job.job_id == job_id:
                    tq.queue.remove(job)
                    return True
        return False

    def find(self, job_id: int) -> Job | None:
        """The queued job with this id, or None."""
        for tq in self._tenants.values():
            for job in tq.queue:
                if job.job_id == job_id:
                    return job
        return None

    # ------------------------------------------------------------------
    def release_next(self) -> Job | None:
        """Pop the next job to hand to the engine, or None when idle.

        ``trace`` clock: global arrival order, stride pass as the
        same-instant tie-break.  ``logical`` clock: pure stride order.
        """
        best: TenantQueue | None = None
        best_key: tuple[float, float, str] | None = None
        for tq in self._tenants.values():
            if not tq.queue:
                continue
            head = tq.queue[0]
            if self.clock == "trace":
                key = (head.arrival, tq.pass_value, tq.name)
            else:
                key = (tq.pass_value, 0.0, tq.name)
            if best_key is None or key < best_key:
                best, best_key = tq, key
        if best is None:
            return None
        job = best.queue.popleft()
        best.pass_value += best.stride
        return job

    def head_arrival(self) -> float | None:
        """Earliest queued arrival across tenants (trace-clock pumping)."""
        heads = [tq.queue[0].arrival for tq in self._tenants.values() if tq.queue]
        return min(heads) if heads else None

    @property
    def backlog(self) -> int:
        """Jobs queued across all tenants, awaiting release."""
        return sum(tq.depth for tq in self._tenants.values())

    def depths(self) -> dict[str, int]:
        """Per-tenant queue depths (stats endpoint)."""
        return {name: tq.depth for name, tq in sorted(self._tenants.items())}

    def shares(self) -> dict[str, dict[str, float]]:
        """Per-tenant admission accounting (stats endpoint)."""
        return {
            name: {
                "weight": tq.weight,
                "admitted": tq.admitted,
                "rejected": tq.rejected,
                "depth": tq.depth,
            }
            for name, tq in sorted(self._tenants.items())
        }
