"""Deterministic replay / load-test harness (`bgl-sim load`).

Replays a workload's jobs through a service client in arrival order —
at full speed, at an accelerated multiple of trace time, or at a fixed
open-loop rate — validating every response and reporting submit-latency
percentiles and sustained throughput.  Open-loop means rejects are
counted and *not* retried: under overload the interesting number is how
backpressure engages, not how politely a client backs off.

Pipelining batches ``pipeline_depth`` requests per transport round trip
so TCP throughput measures the service, not the RTT; per-request
latency is then the batch round trip amortised over its members.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ServeError
from repro.workloads.job import Workload


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load run."""

    submitted: int
    accepted: int
    rejected: int
    errors: int
    #: Responses actually received; a dropped response is a harness
    #: failure even when the submission itself was rejected.
    responses: int
    elapsed_s: float
    throughput: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    error_samples: tuple[str, ...] = ()
    #: Final schedule report from ``drain``, when requested.
    final_report: dict[str, Any] | None = field(default=None, repr=False)

    @property
    def dropped(self) -> int:
        return self.submitted - self.responses

    def to_dict(self) -> dict[str, Any]:
        out = {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "errors": self.errors,
            "responses": self.responses,
            "dropped": self.dropped,
            "elapsed_s": self.elapsed_s,
            "throughput": self.throughput,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }
        if self.error_samples:
            out["error_samples"] = list(self.error_samples)
        if self.final_report is not None:
            out["final_report"] = self.final_report
        return out

    def summary_lines(self) -> list[str]:
        lines = [
            f"submitted   {self.submitted}",
            f"accepted    {self.accepted}",
            f"rejected    {self.rejected}",
            f"errors      {self.errors}",
            f"dropped     {self.dropped}",
            f"elapsed     {self.elapsed_s:.3f}s",
            f"throughput  {self.throughput:.0f} submissions/s",
            f"latency     p50={self.p50_ms:.3f}ms p99={self.p99_ms:.3f}ms "
            f"max={self.max_ms:.3f}ms",
        ]
        if self.final_report is not None:
            jobs = len(self.final_report.get("records", []))
            lines.append(f"drained     {jobs} jobs completed")
        return lines


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * (len(sorted_values) - 1) + 0.5), len(sorted_values) - 1)
    return sorted_values[index]


def workload_messages(
    workload: Workload, tenants: Sequence[str] = ("default",)
) -> list[dict[str, Any]]:
    """Submit requests for every job, tenants assigned round-robin."""
    if not tenants:
        raise ServeError("at least one tenant name is required")
    messages = []
    for i, job in enumerate(workload.jobs):
        messages.append(
            {
                "op": "submit",
                "id": job.job_id,
                "arrival": job.arrival,
                "size": job.size,
                "runtime": job.runtime,
                "estimate": job.estimate,
                "tenant": tenants[i % len(tenants)],
            }
        )
    return messages


def run_load(
    client: Any,
    workload: Workload,
    *,
    acceleration: float | None = None,
    rate: float | None = None,
    tenants: Sequence[str] = ("default",),
    pipeline_depth: int = 1,
    drain: bool = True,
    max_error_samples: int = 5,
) -> LoadReport:
    """Replay ``workload`` through ``client`` and measure the service.

    ``acceleration`` paces submissions at trace time divided by the
    factor; ``rate`` paces at a fixed submissions/s regardless of trace
    spacing; neither means full speed.  They are mutually exclusive.
    """
    if acceleration is not None and rate is not None:
        raise ServeError("acceleration and rate are mutually exclusive")
    if acceleration is not None and acceleration <= 0:
        raise ServeError(f"acceleration must be positive, got {acceleration}")
    if rate is not None and rate <= 0:
        raise ServeError(f"rate must be positive, got {rate}")
    if pipeline_depth < 1:
        raise ServeError(f"pipeline_depth must be >= 1, got {pipeline_depth}")

    messages = workload_messages(workload, tenants)
    origin = messages[0]["arrival"] if messages else 0.0
    accepted = rejected = errors = responses = 0
    error_samples: list[str] = []
    latencies_ms: list[float] = []
    request_many = getattr(client, "request_many", None)

    start = time.perf_counter()
    for chunk_start in range(0, len(messages), pipeline_depth):
        chunk = messages[chunk_start : chunk_start + pipeline_depth]
        if rate is not None:
            target = chunk_start / rate
        elif acceleration is not None:
            target = (chunk[0]["arrival"] - origin) / acceleration
        else:
            target = None
        if target is not None:
            delay = target - (time.perf_counter() - start)
            if delay > 0:
                time.sleep(delay)
        sent = time.perf_counter()
        if request_many is not None:
            replies = request_many(chunk)
        else:
            replies = [client.request(m) for m in chunk]
        round_trip_ms = (time.perf_counter() - sent) * 1e3
        latencies_ms.extend([round_trip_ms / len(chunk)] * len(replies))
        for reply in replies:
            responses += 1
            if reply.get("ok"):
                accepted += 1
            elif reply.get("rejected"):
                rejected += 1
            else:
                errors += 1
                if len(error_samples) < max_error_samples:
                    error_samples.append(str(reply.get("error", reply)))
    elapsed = time.perf_counter() - start

    final_report = None
    if drain:
        drained = client.drain()
        if not drained.get("ok"):
            raise ServeError(f"drain failed: {drained.get('error', drained)}")
        final_report = drained.get("report")

    latencies_ms.sort()
    return LoadReport(
        submitted=len(messages),
        accepted=accepted,
        rejected=rejected,
        errors=errors,
        responses=responses,
        elapsed_s=elapsed,
        throughput=len(messages) / elapsed if elapsed > 0 else 0.0,
        p50_ms=_percentile(latencies_ms, 0.50),
        p99_ms=_percentile(latencies_ms, 0.99),
        max_ms=latencies_ms[-1] if latencies_ms else 0.0,
        error_samples=tuple(error_samples),
        final_report=final_report,
    )
