"""Wire protocol: newline-delimited JSON requests and responses.

One request per line, one response per line, in order — clients may
pipeline any number of requests before reading.  Every request carries
an ``op``; every response carries ``ok``.  A backpressure reject is a
well-formed response (``ok=false, rejected=true, retry_after=<s>``),
not a transport error: the connection stays open and the client is
expected to back off and resubmit.

Requests
--------
``{"op": "submit", "id": 7, "size": 4, "runtime": 120.0,
   "arrival": 3600.0, "estimate": 150.0, "tenant": "alice"}``
    ``arrival``/``estimate``/``tenant`` are optional (``arrival`` is
    required when the service runs the *trace* clock).
``{"op": "cancel", "id": 7}`` · ``{"op": "status", "id": 7}``
``{"op": "stats"}`` · ``{"op": "ping"}``
``{"op": "drain"}``
    Close the arrival stream, run the engine dry and return the final
    schedule report.
``{"op": "shutdown"}``
    Drain, then stop the server.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProtocolError

#: Protocol revision; servers echo it from ``ping`` and ``stats``.
PROTOCOL_VERSION = 1

#: Hard cap on one request line — oversized lines are a protocol error,
#: never an unbounded buffer.
MAX_LINE_BYTES = 1 << 16

#: Known operations and the fields each requires beyond ``op``.
_REQUIRED_FIELDS: dict[str, tuple[str, ...]] = {
    "submit": ("id", "size", "runtime"),
    "cancel": ("id",),
    "status": ("id",),
    "stats": (),
    "ping": (),
    "drain": (),
    "shutdown": (),
}


def encode(message: dict[str, Any]) -> bytes:
    """One message as a compact NDJSON line (sorted keys, so identical
    sessions produce byte-identical transcripts)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError` with a
    message safe to echo back to the client."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"request line exceeds {MAX_LINE_BYTES} bytes"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}") from exc
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def validate_request(message: dict[str, Any]) -> str:
    """Check ``op`` and its required fields; returns the op name."""
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request has no 'op' field")
    required = _REQUIRED_FIELDS.get(op)
    if required is None:
        known = ", ".join(sorted(_REQUIRED_FIELDS))
        raise ProtocolError(f"unknown op {op!r}; known ops: {known}")
    for name in required:
        if name not in message:
            raise ProtocolError(f"op {op!r} requires field {name!r}")
    if "id" in message:
        job_id = message["id"]
        if not isinstance(job_id, int) or isinstance(job_id, bool) or job_id < 0:
            raise ProtocolError(
                f"'id' must be a non-negative integer, got {job_id!r}"
            )
    if op == "submit":
        size = message["size"]
        if not isinstance(size, int) or isinstance(size, bool) or size < 1:
            raise ProtocolError(f"'size' must be a positive integer, got {size!r}")
        for name in ("runtime", "estimate", "arrival"):
            if name not in message:
                continue
            value = message[name]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProtocolError(f"{name!r} must be a number, got {value!r}")
        if "tenant" in message and not isinstance(message["tenant"], str):
            raise ProtocolError("'tenant' must be a string")
    return op


def error_response(exc: Exception, **extra: Any) -> dict[str, Any]:
    """A well-formed error payload from any exception."""
    return {"ok": False, "error": str(exc), **extra}
