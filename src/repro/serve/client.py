"""Clients for the scheduler service.

:class:`InprocClient` calls the engine directly — zero transport, the
configuration the >10k submissions/s CI bar is measured against.
:class:`SocketClient` speaks the NDJSON protocol over TCP or a unix
socket with optional pipelining (send *n* requests, then read *n*
responses) so throughput is not round-trip bound.  Both expose the same
request surface, so the load harness and tests are transport-agnostic.
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ProtocolError, ServeError
from repro.serve.engine import ServeEngine
from repro.serve.protocol import MAX_LINE_BYTES, decode_line, encode


class _RequestHelpers:
    """Op-shaped conveniences shared by both clients."""

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        raise NotImplementedError

    def submit(self, **fields: Any) -> dict[str, Any]:
        return self.request({"op": "submit", **fields})

    def cancel(self, job_id: int) -> dict[str, Any]:
        return self.request({"op": "cancel", "id": job_id})

    def status(self, job_id: int) -> dict[str, Any]:
        return self.request({"op": "status", "id": job_id})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def drain(self) -> dict[str, Any]:
        return self.request({"op": "drain"})

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})


class InprocClient(_RequestHelpers):
    """Direct engine calls — the zero-transport client."""

    def __init__(self, engine: ServeEngine) -> None:
        self.engine = engine

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        return self.engine.handle(message)

    def request_many(
        self, messages: Sequence[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        handle = self.engine.handle
        return [handle(m) for m in messages]

    def close(self) -> None:
        pass

    def __enter__(self) -> "InprocClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SocketClient(_RequestHelpers):
    """Blocking NDJSON client over TCP or a unix socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")

    # ------------------------------------------------------------------
    @classmethod
    def connect(cls, address: str, timeout: float = 30.0) -> "SocketClient":
        """Connect to ``host:port`` or a unix-socket path."""
        if ":" in address and not Path(address).is_absolute():
            host, _, port_text = address.rpartition(":")
            try:
                port = int(port_text)
            except ValueError as exc:
                raise ServeError(f"bad service address {address!r}") from exc
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(address)
        return cls(sock)

    # ------------------------------------------------------------------
    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        self._sock.sendall(encode(message))
        return self._read_response()

    def request_many(
        self, messages: Sequence[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """Pipeline: one write for all requests, then read each response."""
        if not messages:
            return []
        self._sock.sendall(b"".join(encode(m) for m in messages))
        return [self._read_response() for _ in messages]

    def _read_response(self) -> dict[str, Any]:
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ServeError("service closed the connection")
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"response line exceeds {MAX_LINE_BYTES} bytes"
            )
        return decode_line(line)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def connect(target: str | ServeEngine, timeout: float = 30.0):
    """Open a client for an address string or an in-process engine."""
    if isinstance(target, ServeEngine):
        return InprocClient(target)
    return SocketClient.connect(target, timeout=timeout)
