"""Torus occupancy grid and allocation bookkeeping.

The :class:`Torus` tracks which (super)node belongs to which job.  It is
the single mutable machine-state object in the simulator; schedulers query
it through free masks and partition checks and mutate it only through
:meth:`Torus.allocate` / :meth:`Torus.release`, which maintain the
no-overlap invariant.

The module also provides :func:`circular_window_sum`, the vectorised
wrap-around box-sum kernel that powers the fast partition finder and the
incremental MFP computation.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import (
    GeometryError,
    PartitionOverlapError,
    UnknownJobError,
)
from repro.geometry.coords import Coord, TorusDims
from repro.geometry.partition import Partition

#: Sentinel for "node is free" in the occupancy grid.
FREE: int = -1

#: Journal capacity: enough to replay any realistic scheduler burst
#: (index consumers fall back to a fresh build past a handful of
#: entries anyway), small enough to never matter for memory.
_JOURNAL_MAX = 128


def wrap_pad_integral(grid: np.ndarray) -> np.ndarray:
    """Zero-led 3-D integral image of the wrap-padded grid.

    The grid is tiled one period minus one along each axis (``mode='wrap'``
    padding), so a box window of any legal shape (extent at most the axis
    period) based anywhere in the primary cell lies fully inside the
    padded array; the returned integral ``I`` has an extra leading zero
    plane per axis, making every box sum an 8-term lookup:

    ``sum(box @ (x,y,z), extents (a,b,c)) =
      I[x+a,y+b,z+c] - I[x,y+b,z+c] - I[x+a,y,z+c] - I[x+a,y+b,z]
      + I[x,y,z+c] + I[x,y+b,z] + I[x+a,y,z] - I[x,y,z]``.

    This is the shared kernel behind the fast partition finder and the
    scheduler's incremental MFP queries (profiled ~10x faster than the
    naive per-shape ``np.roll`` accumulation at BG/L scale).
    """
    X, Y, Z = grid.shape
    # One-period-minus-one wrap padding via tile+slice: measurably
    # cheaper than np.pad(mode="wrap") at this array size.
    padded = np.tile(grid.astype(np.int64), (2, 2, 2))[: 2 * X - 1, : 2 * Y - 1, : 2 * Z - 1]
    integral = np.zeros((2 * X, 2 * Y, 2 * Z), dtype=np.int64)
    integral[1:, 1:, 1:] = padded.cumsum(0).cumsum(1).cumsum(2)
    return integral


def window_sums_from_integral(
    integral: np.ndarray, dims_shape: Coord, window: Coord
) -> np.ndarray:
    """Box sums of a ``window`` at every primary-cell base, from a
    :func:`wrap_pad_integral` result."""
    X, Y, Z = dims_shape
    a, b, c = window
    i = integral
    return (
        i[a : a + X, b : b + Y, c : c + Z]
        - i[0:X, b : b + Y, c : c + Z]
        - i[a : a + X, 0:Y, c : c + Z]
        - i[a : a + X, b : b + Y, 0:Z]
        + i[0:X, 0:Y, c : c + Z]
        + i[0:X, b : b + Y, 0:Z]
        + i[a : a + X, 0:Y, 0:Z]
        - i[0:X, 0:Y, 0:Z]
    )


def box_sum_at(integral: np.ndarray, base: Coord, extents: Coord) -> int:
    """One wrap-around box sum as a scalar lookup on the integral."""
    x, y, z = base
    a, b, c = extents
    i = integral
    return int(
        i[x + a, y + b, z + c]
        - i[x, y + b, z + c]
        - i[x + a, y, z + c]
        - i[x + a, y + b, z]
        + i[x, y, z + c]
        + i[x, y + b, z]
        + i[x + a, y, z]
        - i[x, y, z]
    )


def batch_box_sums(
    integral: np.ndarray, bases: np.ndarray, extents: Coord
) -> np.ndarray:
    """Wrap-around box sums of one ``extents`` window at many bases.

    Vectorised counterpart of :func:`box_sum_at`: ``bases`` is an
    ``(n, 3)`` integer array of primary-cell corners and the result is
    the ``(n,)`` array of box sums, gathered with eight fancy-indexed
    lookups on the integral instead of ``8 n`` scalar ones.  This is the
    kernel behind the scheduler's batch candidate scoring.
    """
    x, y, z = bases[:, 0], bases[:, 1], bases[:, 2]
    a, b, c = extents
    i = integral
    return (
        i[x + a, y + b, z + c]
        - i[x, y + b, z + c]
        - i[x + a, y, z + c]
        - i[x + a, y + b, z]
        + i[x, y, z + c]
        + i[x, y + b, z]
        + i[x + a, y, z]
        - i[x, y, z]
    )


def stacked_box_sums(
    integrals: np.ndarray, x: np.ndarray, y: np.ndarray, z: np.ndarray,
    extents: np.ndarray,
) -> np.ndarray:
    """Box sums across a *stack* of integrals, one window shape each.

    ``integrals`` is ``(k, ...)`` — one :func:`wrap_pad_integral` result
    per window shape — with corners ``x``/``y``/``z`` of shape ``(k, n)``
    (or broadcastable) and ``extents`` broadcastable to ``(k, n, 3)``:
    ``(k, 1, 3)`` for one window per integral, ``(k, n, 3)`` when every
    (integral, base) pair has its own window.  Returns the ``(k, n)``
    box sums: the whole stack against every base in eight fancy-indexed
    lookups total, instead of eight per shape.  This lets the batch
    scorer probe a whole block of shapes per numpy dispatch.
    """
    k = np.arange(integrals.shape[0])[:, None]
    a = extents[..., 0]
    b = extents[..., 1]
    c = extents[..., 2]
    i = integrals
    return (
        i[k, x + a, y + b, z + c]
        - i[k, x, y + b, z + c]
        - i[k, x + a, y, z + c]
        - i[k, x + a, y + b, z]
        + i[k, x, y, z + c]
        + i[k, x, y + b, z]
        + i[k, x + a, y, z]
        - i[k, x, y, z]
    )


def circular_window_sum(grid: np.ndarray, shape: Coord) -> np.ndarray:
    """Box sums over every wrap-around window of ``shape``.

    ``out[x, y, z]`` is the sum of ``grid`` over the box of extents
    ``shape`` based at ``(x, y, z)``, with all three axes wrapping.
    One-shot convenience over :func:`wrap_pad_integral`; callers issuing
    many shapes against one grid should build the integral once.
    """
    return window_sums_from_integral(wrap_pad_integral(grid), grid.shape, shape)


class Torus:
    """Occupancy state of a 3-D torus machine.

    Parameters
    ----------
    dims:
        Machine extents (use :data:`repro.geometry.BGL_SUPERNODE_DIMS`
        for the paper's machine).

    Notes
    -----
    * ``grid[x, y, z]`` holds the owning job id or :data:`FREE`.
    * ``version`` increments on every mutation; finders use it to
      invalidate per-state caches.
    * a bounded *mutation journal* records each box-level mutation so
      version-checked consumers (:class:`repro.allocation.mfp.IndexCache`
      in incremental mode) can patch their state forward instead of
      rebuilding; see :meth:`journal_since`.
    """

    __slots__ = (
        "dims",
        "grid",
        "_allocations",
        "version",
        "_journal",
        "_flat_ids",
    )

    def __init__(self, dims: TorusDims) -> None:
        self.dims = dims
        self.grid = np.full(dims.as_tuple(), FREE, dtype=np.int64)
        self._allocations: dict[int, Partition] = {}
        self.version = 0
        # (base, shape) -> flat node ids of the wrapped box, so repeat
        # allocations of the same partition skip the axis-range/np.ix_
        # machinery.  Bounded; keys are few on real machines anyway.
        self._flat_ids: dict[tuple[Coord, Coord], np.ndarray] = {}
        # Entries are (resulting version, op, base, shape) where op is
        # "alloc" or "free"; whole-grid mutations (clear/restore) log an
        # "opaque" entry, which journal_since refuses to replay across.
        self._journal: list[tuple[int, str, Coord | None, Coord | None]] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        """Number of free nodes."""
        return int(np.count_nonzero(self.grid == FREE))

    @property
    def busy_count(self) -> int:
        """Number of allocated nodes."""
        return self.dims.volume - self.free_count

    def free_mask(self) -> np.ndarray:
        """Boolean grid, True where free.  A fresh array each call."""
        return self.grid == FREE

    def owner(self, coord: Coord) -> int | None:
        """Job id occupying ``coord``, or None when free."""
        value = int(self.grid[self.dims.wrap(coord)])
        return None if value == FREE else value

    def owner_by_index(self, node_index: int) -> int | None:
        """Job id occupying the node with linear id ``node_index``."""
        value = int(self.grid.ravel()[node_index])
        return None if value == FREE else value

    def is_free(self, partition: Partition) -> bool:
        """True when every node of ``partition`` is free."""
        partition.validate(self.dims)
        view = self.grid[np.ix_(*partition.axis_ranges(self.dims))]
        return bool((view == FREE).all())

    def free_nodes_in(self, partition: Partition) -> int:
        """Number of free nodes inside ``partition``."""
        partition.validate(self.dims)
        view = self.grid[np.ix_(*partition.axis_ranges(self.dims))]
        return int(np.count_nonzero(view == FREE))

    def allocation_of(self, job_id: int) -> Partition:
        """Partition currently held by ``job_id``."""
        try:
            return self._allocations[job_id]
        except KeyError:
            raise UnknownJobError(f"job {job_id} holds no allocation") from None

    def allocations(self) -> Iterator[tuple[int, Partition]]:
        """Iterate ``(job_id, partition)`` pairs (insertion order)."""
        return iter(self._allocations.items())

    @property
    def n_jobs(self) -> int:
        """Number of jobs currently allocated."""
        return len(self._allocations)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def allocate(self, job_id: int, partition: Partition) -> None:
        """Assign ``partition`` to ``job_id``.

        Raises
        ------
        PartitionOverlapError
            If any node is already taken.
        AllocationError
            If ``job_id`` already holds an allocation or is negative.
        """
        if job_id < 0:
            raise GeometryError(f"job id must be non-negative, got {job_id}")
        if job_id in self._allocations:
            raise PartitionOverlapError(f"job {job_id} already allocated")
        partition.validate(self.dims)
        flat = self.grid.reshape(-1)
        ids = self._box_ids(partition)
        if (flat[ids] != FREE).any():
            raise PartitionOverlapError(
                f"partition {partition} overlaps occupied nodes"
            )
        flat[ids] = job_id
        self._allocations[job_id] = partition
        self.version += 1
        self._log("alloc", partition)

    def release(self, job_id: int) -> Partition:
        """Free the partition held by ``job_id`` and return it."""
        partition = self.allocation_of(job_id)
        self.grid.reshape(-1)[self._box_ids(partition)] = FREE
        del self._allocations[job_id]
        self.version += 1
        self._log("free", partition)
        return partition

    def _box_ids(self, partition: Partition) -> np.ndarray:
        """Flat node ids of ``partition``'s wrapped box (cached)."""
        key = (partition.base, partition.shape)
        ids = self._flat_ids.get(key)
        if ids is None:
            xs, ys, zs = partition.axis_ranges(self.dims)
            ids = (
                (xs[:, None, None] * self.dims.y + ys[None, :, None])
                * self.dims.z
                + zs[None, None, :]
            ).ravel()
            if len(self._flat_ids) >= 4096:
                self._flat_ids.clear()
            self._flat_ids[key] = ids
        return ids

    def clear(self) -> None:
        """Free the whole machine."""
        self.grid.fill(FREE)
        self._allocations.clear()
        self.version += 1
        self._log("opaque", None)

    # ------------------------------------------------------------------
    # snapshots (used by migration rollback)
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[np.ndarray, dict[int, Partition]]:
        """Capture the full machine state."""
        return self.grid.copy(), dict(self._allocations)

    def restore(self, state: tuple[np.ndarray, dict[int, Partition]]) -> None:
        """Restore a state captured with :meth:`snapshot`."""
        grid, allocations = state
        self.grid[...] = grid
        self._allocations = dict(allocations)
        self.version += 1
        self._log("opaque", None)

    # ------------------------------------------------------------------
    # mutation journal (incremental index maintenance)
    # ------------------------------------------------------------------
    def _log(self, op: str, partition: Partition | None) -> None:
        journal = self._journal
        if partition is None:
            journal.append((self.version, op, None, None))
        else:
            journal.append(
                (self.version, op, self.dims.wrap(partition.base), partition.shape)
            )
        if len(journal) > _JOURNAL_MAX:
            del journal[: _JOURNAL_MAX // 2]

    def journal_since(
        self, version: int
    ) -> list[tuple[str, Coord, Coord]] | None:
        """Box mutations taking state ``version`` to the current state.

        Returns ``(op, base, shape)`` entries in application order —
        ``op`` is ``"alloc"`` or ``"free"``, ``base`` is wrapped into the
        primary cell — or ``None`` when the interval cannot be replayed:
        the requested version is in the future, entries have aged out of
        the bounded journal, or an opaque whole-grid mutation
        (:meth:`clear` / :meth:`restore`) lies in between.  ``None``
        tells the caller to rebuild from scratch (the retained oracle
        path).
        """
        if version == self.version:
            return []
        if version > self.version:
            return None
        out: list[tuple[str, Coord, Coord]] = []
        for tag, op, base, shape in reversed(self._journal):
            if tag <= version:
                break
            if op == "opaque":
                return None
            out.append((op, base, shape))  # type: ignore[arg-type]
        if len(out) != self.version - version:
            return None  # entries aged out of the bounded journal
        out.reverse()
        return out

    def check_invariants(self) -> None:
        """Assert the occupancy grid and the allocation map agree.

        Used by tests and the simulator's debug mode.  The richer (and
        independently implemented) oracle is
        :class:`repro.testing.InvariantChecker`; this quick form rebuilds
        the expected grid from the map and additionally checks node-count
        conservation (``free_count + Σ partition sizes == volume``).
        """
        expected = np.full(self.dims.as_tuple(), FREE, dtype=np.int64)
        allocated_total = 0
        for job_id, partition in self._allocations.items():
            sel = np.ix_(*partition.axis_ranges(self.dims))
            if (expected[sel] != FREE).any():
                raise PartitionOverlapError(
                    f"allocation map has overlapping partitions at job {job_id}"
                )
            expected[sel] = job_id
            allocated_total += partition.size
        if not np.array_equal(expected, self.grid):
            raise GeometryError("occupancy grid disagrees with allocation map")
        if self.free_count + allocated_total != self.dims.volume:
            raise GeometryError(
                f"node-count conservation broken: free={self.free_count} + "
                f"allocated={allocated_total} != volume={self.dims.volume}"
            )

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"Torus(dims={self.dims.as_tuple()}, jobs={self.n_jobs}, "
            f"free={self.free_count}/{self.dims.volume})"
        )
