"""Torus geometry substrate.

BlueGene/L's job scheduler sees the machine as a small 3-D torus of
*supernodes* (8x8x8 blocks of 512 compute nodes each); for the full
64Ki-node system that view is a ``4 x 4 x 8`` torus of 128 supernodes.
This subpackage provides the coordinate arithmetic, shape enumeration,
partition objects and occupancy grid every other layer builds on.
"""

from __future__ import annotations

from repro.geometry.coords import TorusDims, BGL_SUPERNODE_DIMS, manhattan_torus_distance
from repro.geometry.shapes import (
    divisors,
    num_divisors,
    iter_shapes,
    shapes_for_size,
    all_shapes,
    max_partition_volume,
)
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus, circular_window_sum

__all__ = [
    "TorusDims",
    "BGL_SUPERNODE_DIMS",
    "manhattan_torus_distance",
    "divisors",
    "num_divisors",
    "iter_shapes",
    "shapes_for_size",
    "all_shapes",
    "max_partition_volume",
    "Partition",
    "Torus",
    "circular_window_sum",
]
