"""Torus dimensions and wrap-around coordinate arithmetic.

Coordinates are plain ``(x, y, z)`` integer tuples in hot paths; the
:class:`TorusDims` value object carries the machine extents and provides
wrapping, linearisation and distance helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import GeometryError

Coord = tuple[int, int, int]


@dataclass(frozen=True, slots=True)
class TorusDims:
    """Extents of a 3-D torus.

    Parameters
    ----------
    x, y, z:
        Number of (super)nodes along each axis; all must be positive.
    """

    x: int
    y: int
    z: int

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise GeometryError(f"torus dimensions must be positive, got {self}")

    @property
    def volume(self) -> int:
        """Total number of nodes in the torus."""
        return self.x * self.y * self.z

    def as_tuple(self) -> Coord:
        return (self.x, self.y, self.z)

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y
        yield self.z

    def __getitem__(self, axis: int) -> int:
        return (self.x, self.y, self.z)[axis]

    def wrap(self, coord: Coord) -> Coord:
        """Map an arbitrary integer coordinate into the torus."""
        return (coord[0] % self.x, coord[1] % self.y, coord[2] % self.z)

    def contains(self, coord: Coord) -> bool:
        """True when ``coord`` already lies within the primary cell."""
        return (
            0 <= coord[0] < self.x
            and 0 <= coord[1] < self.y
            and 0 <= coord[2] < self.z
        )

    def index(self, coord: Coord) -> int:
        """Linearise a (wrapped) coordinate to a node id in ``[0, volume)``.

        Row-major (C) order so ids match ``numpy.ndarray.ravel`` on the
        occupancy grid.
        """
        cx, cy, cz = self.wrap(coord)
        return (cx * self.y + cy) * self.z + cz

    def coord(self, index: int) -> Coord:
        """Inverse of :meth:`index`."""
        if not 0 <= index < self.volume:
            raise GeometryError(f"node index {index} out of range [0, {self.volume})")
        cz = index % self.z
        rest = index // self.z
        cy = rest % self.y
        cx = rest // self.y
        return (cx, cy, cz)

    def iter_coords(self) -> Iterator[Coord]:
        """All coordinates in index order."""
        for cx in range(self.x):
            for cy in range(self.y):
                for cz in range(self.z):
                    yield (cx, cy, cz)

    def fits_shape(self, shape: Coord) -> bool:
        """True when a rectangular block of ``shape`` fits in the torus."""
        return shape[0] <= self.x and shape[1] <= self.y and shape[2] <= self.z

    def axis_distance(self, a: int, b: int, axis: int) -> int:
        """Shortest wrap-around distance between positions on one axis."""
        extent = self[axis]
        d = abs(a - b) % extent
        return min(d, extent - d)


#: The scheduler's view of the full BlueGene/L system: a 4x4x8 torus of
#: 512-node supernodes (the paper's 128-supernode machine).
BGL_SUPERNODE_DIMS = TorusDims(4, 4, 8)


def manhattan_torus_distance(dims: TorusDims, a: Coord, b: Coord) -> int:
    """Manhattan distance between two nodes with per-axis wrap-around.

    Used by the spatially-correlated failure generator to pick burst
    neighbourhoods; the scheduler itself never needs distances.
    """
    return (
        dims.axis_distance(a[0], b[0], 0)
        + dims.axis_distance(a[1], b[1], 1)
        + dims.axis_distance(a[2], b[2], 2)
    )
