"""Rectangular torus partitions.

A partition is a contiguous rectangular box of nodes, identified by a base
coordinate and a shape; boxes may wrap around any torus axis.  BG/L
allocates jobs only to such partitions (electrically isolated, so traffic
from different jobs never shares links).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

import numpy as np

from repro.errors import GeometryError
from repro.geometry.coords import Coord, TorusDims


@dataclass(frozen=True)
class Partition:
    """A contiguous rectangular (possibly wrapping) box on a torus.

    Parameters
    ----------
    base:
        Coordinate of the box corner with the smallest offsets (before
        wrapping).
    shape:
        Box extents ``(a, b, c)`` along each axis.

    Partitions are value objects: equality and hashing use ``(base,
    shape)``.  Two distinct ``(base, shape)`` pairs can cover the same node
    set when a shape spans a full torus axis; use :meth:`canonical` to
    normalise before set operations.
    """

    base: Coord
    shape: Coord

    def __post_init__(self) -> None:
        if min(self.shape) < 1:
            raise GeometryError(f"partition shape must be positive, got {self.shape}")
        if min(self.base) < 0:
            raise GeometryError(f"partition base must be non-negative, got {self.base}")

    @cached_property
    def size(self) -> int:
        """Number of nodes in the partition."""
        return self.shape[0] * self.shape[1] * self.shape[2]

    def validate(self, dims: TorusDims) -> None:
        """Raise :class:`GeometryError` unless this partition fits ``dims``."""
        if not dims.fits_shape(self.shape):
            raise GeometryError(f"shape {self.shape} does not fit torus {dims}")
        if not dims.contains(self.base):
            raise GeometryError(f"base {self.base} outside torus {dims}")

    def canonical(self, dims: TorusDims) -> "Partition":
        """Normalise the base along axes the shape fully spans.

        When ``shape[axis] == dims[axis]`` every base offset along that
        axis yields the same node set; the canonical form pins those axes
        to 0 so equal node sets compare equal.
        """
        base = list(dims.wrap(self.base))
        for axis in range(3):
            if self.shape[axis] == dims[axis]:
                base[axis] = 0
        return Partition((base[0], base[1], base[2]), self.shape)

    def axis_ranges(self, dims: TorusDims) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Wrapped index arrays along each axis, for fancy indexing.

        ``grid[np.ix_(*p.axis_ranges(dims))]`` selects exactly this
        partition's nodes from an occupancy grid.
        """
        return (
            (np.arange(self.shape[0]) + self.base[0]) % dims.x,
            (np.arange(self.shape[1]) + self.base[1]) % dims.y,
            (np.arange(self.shape[2]) + self.base[2]) % dims.z,
        )

    def iter_nodes(self, dims: TorusDims) -> Iterator[Coord]:
        """Yield every node coordinate in the partition (wrapped)."""
        bx, by, bz = self.base
        for i in range(self.shape[0]):
            cx = (bx + i) % dims.x
            for j in range(self.shape[1]):
                cy = (by + j) % dims.y
                for k in range(self.shape[2]):
                    yield (cx, cy, (bz + k) % dims.z)

    def node_set(self, dims: TorusDims) -> frozenset[Coord]:
        """The partition's nodes as a frozen set (for tests and dedup)."""
        return frozenset(self.iter_nodes(dims))

    def node_indices(self, dims: TorusDims) -> np.ndarray:
        """Linear node ids of this partition, ascending."""
        ix, iy, iz = self.axis_ranges(dims)
        ids = ((ix[:, None] * dims.y + iy[None, :])[:, :, None] * dims.z + iz[None, None, :])
        return np.sort(ids.ravel())

    def contains(self, dims: TorusDims, coord: Coord) -> bool:
        """True when ``coord`` (wrapped) lies inside this partition."""
        c = dims.wrap(coord)
        for axis in range(3):
            offset = (c[axis] - self.base[axis]) % dims[axis]
            if offset >= self.shape[axis]:
                return False
        return True

    def overlaps(self, dims: TorusDims, other: "Partition") -> bool:
        """True when the two partitions share at least one node.

        Per-axis circular interval intersection: boxes intersect on the
        torus iff their offset intervals intersect modulo the extent on
        every axis.
        """
        for axis in range(3):
            extent = dims[axis]
            a0, alen = self.base[axis] % extent, self.shape[axis]
            b0, blen = other.base[axis] % extent, other.shape[axis]
            if alen >= extent or blen >= extent:
                continue  # full-axis span always intersects on this axis
            # offset of other's start relative to self's start
            delta = (b0 - a0) % extent
            # intervals [0, alen) and [delta, delta+blen) mod extent
            if not (delta < alen or delta + blen > extent):
                return False
        return True

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"Partition(base={self.base}, shape={self.shape}, size={self.size})"
