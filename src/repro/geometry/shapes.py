"""Enumeration of rectangular partition shapes.

The paper's Appendix-9 partition finder is driven by the set
``SHAPES = {<a, b, c> | a*b*c = s}`` of box shapes whose volume equals the
requested job size ``s``; its cost bound is stated in terms of ``f(s)``,
the number of divisors of ``s``.  This module provides divisor and shape
enumeration with memoisation, shared by all three finders.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from repro.errors import GeometryError
from repro.geometry.coords import Coord, TorusDims


@lru_cache(maxsize=4096)
def divisors(n: int) -> tuple[int, ...]:
    """All positive divisors of ``n`` in increasing order.

    This is the set ``D = {y | n mod y = 0, y <= n}`` of the paper's
    appendix; ``f(n) = len(divisors(n))``.
    """
    if n < 1:
        raise GeometryError(f"divisors undefined for n={n}")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return tuple(small + large[::-1])


def num_divisors(n: int) -> int:
    """``f(n)``: the number of divisors of ``n``."""
    return len(divisors(n))


@lru_cache(maxsize=4096)
def _shapes_cached(size: int, dims_tuple: Coord) -> tuple[Coord, ...]:
    dx, dy, dz = dims_tuple
    out: list[Coord] = []
    for a in divisors(size):
        if a > dx:
            continue
        rest = size // a
        for b in divisors(rest):
            if b > dy:
                continue
            c = rest // b
            if c <= dz:
                out.append((a, b, c))
    return tuple(out)


def iter_shapes(size: int, dims: TorusDims) -> Iterator[Coord]:
    """Yield every box shape ``(a, b, c)`` with ``a*b*c == size`` that fits
    inside ``dims`` (``a <= dims.x`` and so on).

    Shapes are *oriented*: ``(1, 2, 4)`` and ``(4, 2, 1)`` are distinct
    because the torus axes have different extents.
    """
    yield from _shapes_cached(size, dims.as_tuple())


def shapes_for_size(size: int, dims: TorusDims) -> tuple[Coord, ...]:
    """Materialised :func:`iter_shapes` (memoised)."""
    if size < 1:
        raise GeometryError(f"partition size must be positive, got {size}")
    return _shapes_cached(size, dims.as_tuple())


@lru_cache(maxsize=256)
def _all_shapes_cached(dims_tuple: Coord) -> tuple[Coord, ...]:
    dx, dy, dz = dims_tuple
    shapes = [
        (a, b, c)
        for a in range(1, dx + 1)
        for b in range(1, dy + 1)
        for c in range(1, dz + 1)
    ]
    # Decreasing volume so MFP scans can stop at the first feasible shape.
    shapes.sort(key=lambda s: (-(s[0] * s[1] * s[2]), s))
    return tuple(shapes)


def all_shapes(dims: TorusDims) -> tuple[Coord, ...]:
    """Every box shape that fits in the torus, sorted by decreasing volume.

    For the BG/L scheduler view (4x4x8) this is only 128 shapes, which is
    what makes whole-machine MFP scans cheap.
    """
    return _all_shapes_cached(dims.as_tuple())


def max_partition_volume(dims: TorusDims) -> int:
    """Largest possible partition volume (the whole machine)."""
    return dims.volume


def schedulable_sizes(dims: TorusDims) -> tuple[int, ...]:
    """Sorted set of sizes ``s`` for which at least one shape exists.

    A job whose size is not in this set (e.g. a prime larger than every
    axis) can never be placed; workload adapters round sizes up to the
    next schedulable size.
    """
    return tuple(sorted({a * b * c for (a, b, c) in all_shapes(dims)}))


def round_to_schedulable(size: int, dims: TorusDims) -> int:
    """Round ``size`` up to the smallest schedulable size ``>= size``.

    Raises :class:`GeometryError` when ``size`` exceeds the machine.
    """
    if size < 1:
        raise GeometryError(f"job size must be positive, got {size}")
    if size > dims.volume:
        raise GeometryError(
            f"job size {size} exceeds machine capacity {dims.volume}"
        )
    for s in schedulable_sizes(dims):
        if s >= size:
            return s
    raise GeometryError(f"no schedulable size >= {size}")  # pragma: no cover
