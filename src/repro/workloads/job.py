"""Job and workload records.

A :class:`Job` is an immutable description of one submission: when it
arrived, how many (super)nodes it wants, how long it will actually run and
how long the user *said* it would run.  The scheduler sees only the
estimate; the simulator finishes the job after the actual runtime
(§3.2 of the paper: the estimated finish time is replaced by the actual
one once the job completes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from repro.errors import WorkloadError


@dataclass(frozen=True, slots=True)
class Job:
    """One job submission.

    Parameters
    ----------
    job_id:
        Unique non-negative identifier within the workload.
    arrival:
        Submit time ``t_j^a`` in seconds from the trace origin.
    size:
        Requested number of (super)nodes ``s_j``.
    runtime:
        Actual execution time in seconds (> 0).
    estimate:
        User-estimated execution time ``t_j^e`` the scheduler plans with;
        defaults to the actual runtime (perfect estimates).
    """

    job_id: int
    arrival: float
    size: int
    runtime: float
    estimate: float = -1.0

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise WorkloadError(f"job id must be non-negative, got {self.job_id}")
        if self.arrival < 0:
            raise WorkloadError(f"job {self.job_id}: negative arrival {self.arrival}")
        if self.size < 1:
            raise WorkloadError(f"job {self.job_id}: size must be >= 1, got {self.size}")
        if self.runtime <= 0:
            raise WorkloadError(
                f"job {self.job_id}: runtime must be positive, got {self.runtime}"
            )
        if self.estimate == -1.0:
            object.__setattr__(self, "estimate", self.runtime)
        elif self.estimate <= 0:
            raise WorkloadError(
                f"job {self.job_id}: estimate must be positive, got {self.estimate}"
            )

    @property
    def work(self) -> float:
        """Node-seconds of useful work: ``s_j * runtime``."""
        return self.size * self.runtime

    def with_runtime_scaled(self, c: float) -> "Job":
        """Paper's load scaling: multiply execution time (and the
        estimate, proportionally) by ``c``."""
        if c <= 0:
            raise WorkloadError(f"load scale must be positive, got {c}")
        return replace(self, runtime=self.runtime * c, estimate=self.estimate * c)

    def with_size(self, size: int) -> "Job":
        """Copy with a different node count (machine-fitting adapters)."""
        return replace(self, size=size)


@dataclass(frozen=True)
class Workload:
    """An ordered collection of jobs plus trace metadata."""

    name: str
    machine_nodes: int
    jobs: tuple[Job, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.machine_nodes < 1:
            raise WorkloadError(
                f"machine_nodes must be positive, got {self.machine_nodes}"
            )
        ordered = tuple(sorted(self.jobs, key=lambda j: (j.arrival, j.job_id)))
        object.__setattr__(self, "jobs", ordered)
        ids = [j.job_id for j in ordered]
        if len(set(ids)) != len(ids):
            raise WorkloadError(f"workload {self.name!r} has duplicate job ids")

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, i: int) -> Job:
        return self.jobs[i]

    @property
    def span(self) -> float:
        """Arrival span in seconds (0 for empty/singleton workloads)."""
        if len(self.jobs) < 2:
            return 0.0
        return self.jobs[-1].arrival - self.jobs[0].arrival

    @property
    def total_work(self) -> float:
        """Total node-seconds requested."""
        return sum(j.work for j in self.jobs)

    @property
    def max_size(self) -> int:
        """Largest job size in the workload."""
        return max((j.size for j in self.jobs), default=0)

    def replace_jobs(self, jobs: Sequence[Job]) -> "Workload":
        """Copy of this workload with a different job list."""
        return Workload(self.name, self.machine_nodes, tuple(jobs))

    def head(self, n: int) -> "Workload":
        """First ``n`` jobs by arrival order (for quick experiments)."""
        return self.replace_jobs(self.jobs[:n])
