"""Workload models: jobs, SWF traces and the paper's three site models.

The paper drives its simulator with three logs from the Parallel Workloads
Archive — NASA Ames iPSC/860 (1993), SDSC SP (1998-2000) and LLNL Cray
T3D (1996).  Offline reproduction cannot fetch the archive, so this
subpackage provides (a) a Standard Workload Format reader/writer so real
archive files drop in unchanged, and (b) synthetic generators whose
distributions match the published characterisations of those logs (see
``DESIGN.md`` §4 for the substitution rationale).
"""

from __future__ import annotations

from repro.workloads.job import Job, Workload
from repro.workloads.swf import read_swf, write_swf
from repro.workloads.models import (
    SiteModel,
    NASA_IPSC,
    SDSC_SP,
    LLNL_T3D,
    site_model,
    available_sites,
)
from repro.workloads.synthetic import generate_workload
from repro.workloads.scaling import scale_load, offered_load, fit_to_machine

__all__ = [
    "Job",
    "Workload",
    "read_swf",
    "write_swf",
    "SiteModel",
    "NASA_IPSC",
    "SDSC_SP",
    "LLNL_T3D",
    "site_model",
    "available_sites",
    "generate_workload",
    "scale_load",
    "offered_load",
    "fit_to_machine",
]
