"""Standard Workload Format (SWF) reader and writer.

The Parallel Workloads Archive distributes every log the paper uses in
SWF: one job per line, 18 whitespace-separated fields, ``;`` comment
lines carrying header metadata.  This module reads real archive files
into :class:`~repro.workloads.job.Workload` objects (so the synthetic
generators can be swapped for the genuine traces when available) and
writes workloads back out for interchange with other simulators.

Field reference (1-based, per the archive definition):

==  =============================  ========================================
 1  Job Number                     used as ``job_id``
 2  Submit Time                    ``arrival`` (seconds)
 3  Wait Time                      ignored (scheduler output, not input)
 4  Run Time                       ``runtime``
 5  Number of Allocated Processors fallback for ``size``
 8  Requested Number of Processors ``size`` when positive
 9  Requested Time                 ``estimate`` when positive
==  =============================  ========================================

Jobs with non-positive size or runtime (cancelled / failed submissions)
are skipped, matching common simulator practice.  Records that are
*wrong* rather than merely incomplete — duplicate job numbers, size
fields that are explicitly zero/negative instead of the ``-1`` unknown
sentinel, short or non-numeric lines, malformed headers — raise
:class:`~repro.errors.SWFParseError` naming the offending line.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.errors import SWFParseError
from repro.workloads.job import Job, Workload

#: Number of whitespace-separated fields in a canonical SWF record.
SWF_FIELDS = 18

_UNKNOWN = -1


def _parse_line(line: str, lineno: int) -> Job | None:
    fields = line.split()
    if len(fields) < 9:
        raise SWFParseError(f"line {lineno}: expected >= 9 fields, got {len(fields)}")
    try:
        job_id = int(fields[0])
        submit = float(fields[1])
        runtime = float(fields[3])
        allocated = int(float(fields[4]))
        requested = int(float(fields[7]))
        requested_time = float(fields[8])
    except ValueError as exc:
        raise SWFParseError(f"line {lineno}: non-numeric field ({exc})") from None
    # The archive's "unknown" sentinel is exactly -1; a size that is
    # zero or some other negative number is a corrupt record, not a
    # cancelled submission.
    for label, value in (("requested", requested), ("allocated", allocated)):
        if value != _UNKNOWN and value <= 0:
            raise SWFParseError(
                f"line {lineno}: job {job_id} has invalid {label} "
                f"processor count {value} (use -1 for unknown)"
            )
    size = requested if requested > 0 else allocated
    if size <= 0 or runtime <= 0 or submit < 0 or job_id < 0:
        return None  # cancelled / failed / incomplete submission records
    estimate = requested_time if requested_time > 0 else runtime
    return Job(job_id=job_id, arrival=submit, size=size, runtime=runtime, estimate=estimate)


def parse_swf(stream: TextIO, name: str = "swf") -> Workload:
    """Parse an SWF stream into a workload.

    Header comments are scanned for ``MaxProcs`` to recover the machine
    size; when absent the maximum job size is used.
    """
    jobs: list[Job] = []
    seen: dict[int, int] = {}
    max_procs = 0
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            body = line.lstrip("; ").strip()
            if body.lower().startswith("maxprocs:"):
                try:
                    max_procs = int(body.split(":", 1)[1].strip())
                except ValueError:
                    raise SWFParseError(
                        f"line {lineno}: malformed MaxProcs header {body!r}"
                    ) from None
            continue
        job = _parse_line(line, lineno)
        if job is not None:
            first = seen.setdefault(job.job_id, lineno)
            if first != lineno:
                raise SWFParseError(
                    f"line {lineno}: duplicate job id {job.job_id} "
                    f"(first seen on line {first})"
                )
            jobs.append(job)
    machine = max_procs if max_procs > 0 else max((j.size for j in jobs), default=1)
    return Workload(name=name, machine_nodes=machine, jobs=tuple(jobs))


def read_swf(path: str | Path) -> Workload:
    """Read an SWF file from disk."""
    p = Path(path)
    with p.open("r", encoding="utf-8", errors="replace") as fh:
        return parse_swf(fh, name=p.stem)


def write_swf(workload: Workload, path: str | Path | None = None) -> str:
    """Serialise a workload as SWF text; optionally write it to ``path``.

    Only the fields this package consumes are populated; the rest carry
    the SWF "unknown" sentinel ``-1``.
    """
    buf = io.StringIO()
    buf.write(f"; SWF trace written by repro\n")
    buf.write(f"; MaxProcs: {workload.machine_nodes}\n")
    buf.write(f"; Note: {workload.name}\n")
    for job in workload.jobs:
        fields = [_UNKNOWN] * SWF_FIELDS
        fields[0] = job.job_id
        fields[1] = int(round(job.arrival))
        fields[2] = _UNKNOWN  # wait time is simulator output
        fields[3] = int(round(job.runtime))
        fields[4] = job.size
        fields[7] = job.size
        fields[8] = int(round(job.estimate))
        buf.write(" ".join(str(f) for f in fields) + "\n")
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
