"""Synthetic trace generation from site models.

Arrivals follow a non-homogeneous Poisson process with a sinusoidal
day/night rate (thinning method); sizes mix a unit-job atom, power-of-two
spikes and a log-uniform body; runtimes are truncated lognormal; user
estimates are the actual runtime inflated by a lognormal factor (with an
atom of exact estimates).  Everything is driven by one
``numpy.random.default_rng`` seed, so identical parameters and seed give
identical traces.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.job import Job, Workload
from repro.workloads.models import DAY, SiteModel


#: Hour of day at which the diurnal arrival rate peaks (mid-afternoon,
#: matching the archive logs' submission profiles).
PEAK_HOUR = 14.0


def _draw_arrivals(model: SiteModel, n_jobs: int, rng: np.random.Generator) -> np.ndarray:
    """Arrival times of ``n_jobs`` jobs via Poisson thinning.

    The instantaneous rate is
    ``lambda(t) = base * (1 + A * sin(2*pi*(t - shift)/DAY))`` phased so
    the peak lands at :data:`PEAK_HOUR`, with
    ``base = 1/mean_interarrival``; thinning against the peak rate keeps
    the process exact.
    """
    base = 1.0 / model.mean_interarrival_s
    amplitude = model.diurnal_amplitude
    peak = base * (1.0 + amplitude)
    phase_shift = (PEAK_HOUR - 6.0) * 3600.0  # sin peaks a quarter-day in
    times = np.empty(n_jobs)
    t = 0.0
    filled = 0
    while filled < n_jobs:
        # Candidate points from the homogeneous peak-rate process.
        chunk = max(64, n_jobs - filled)
        gaps = rng.exponential(1.0 / peak, size=2 * chunk)
        candidates = t + np.cumsum(gaps)
        rate = base * (
            1.0 + amplitude * np.sin(2.0 * math.pi * (candidates - phase_shift) / DAY)
        )
        keep = candidates[rng.random(candidates.size) < rate / peak]
        take = min(keep.size, n_jobs - filled)
        times[filled : filled + take] = keep[:take]
        filled += take
        t = candidates[-1]
    return times


def _draw_sizes(model: SiteModel, n_jobs: int, rng: np.random.Generator) -> np.ndarray:
    """Job sizes (before ``size_divisor``)."""
    lo, hi = model.min_size, model.max_size
    sizes = np.empty(n_jobs, dtype=np.int64)
    powers = 2 ** np.arange(int(math.log2(hi)) + 1)
    powers = powers[(powers >= lo) & (powers <= hi)]
    if model.p_unit_job > 0:
        # Unit jobs have their own probability atom; keep the
        # power-of-two pool disjoint so the shares stay interpretable.
        powers = powers[powers > 1]
    for i in range(n_jobs):
        if model.p_unit_job and rng.random() < model.p_unit_job and lo <= 1:
            sizes[i] = 1
        elif rng.random() < model.p_power_of_two and powers.size:
            # Smaller powers are likelier: geometric-ish weighting
            # matching the archive logs' size histograms.
            weights = 1.0 / np.arange(1, powers.size + 1)
            sizes[i] = rng.choice(powers, p=weights / weights.sum())
        else:
            # Log-uniform body over [lo, hi].
            u = rng.uniform(math.log(lo), math.log(hi + 1))
            sizes[i] = min(hi, max(lo, int(math.exp(u))))
    if model.size_divisor > 1:
        sizes = np.maximum(1, -(-sizes // model.size_divisor))  # ceil division
    return sizes


def _draw_runtimes(
    model: SiteModel, sizes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Actual runtimes: truncated lognormal with size correlation.

    Bigger jobs run longer in every archive log; the multiplicative
    ``size ** rho`` term reproduces that without touching the marginal
    shape for unit jobs.
    """
    raw = rng.lognormal(model.runtime_log_mean, model.runtime_log_sigma, size=sizes.size)
    if model.size_runtime_rho:
        raw = raw * np.power(sizes.astype(np.float64), model.size_runtime_rho)
    return np.clip(raw, 1.0, model.max_runtime_s)


def _draw_estimates(
    model: SiteModel, runtimes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """User estimates: actual runtime inflated by a lognormal factor."""
    exact = rng.random(runtimes.size) < model.p_exact_estimate
    factors = rng.lognormal(0.0, model.estimate_factor_log_sigma, size=runtimes.size)
    factors = np.maximum(1.0, factors)  # users rarely under-estimate; the
    # scheduler kills at the estimate on real systems, so the archive's
    # effective estimates are >= runtimes.
    estimates = np.where(exact, runtimes, runtimes * factors)
    return np.minimum(estimates, model.max_runtime_s * 4)


def generate_workload(
    model: SiteModel,
    n_jobs: int,
    seed: int | None = 0,
    name: str | None = None,
) -> Workload:
    """Generate a synthetic workload of ``n_jobs`` jobs from ``model``.

    Parameters
    ----------
    model:
        Site model (one of the bundled presets or a custom instance).
    n_jobs:
        Number of jobs to emit.
    seed:
        Seed for ``numpy.random.default_rng``; identical inputs give
        identical workloads.
    name:
        Workload label; defaults to ``"<site>-synthetic"``.
    """
    if n_jobs < 0:
        raise WorkloadError(f"n_jobs must be non-negative, got {n_jobs}")
    rng = np.random.default_rng(seed)
    arrivals = _draw_arrivals(model, n_jobs, rng) if n_jobs else np.empty(0)
    sizes = _draw_sizes(model, n_jobs, rng)
    runtimes = _draw_runtimes(model, sizes, rng)
    estimates = _draw_estimates(model, runtimes, rng)
    machine = max(1, model.machine_nodes // model.size_divisor)
    if model.target_offered_load > 0 and n_jobs > 1:
        # Pin the trace's offered load: heavy-tailed runtime draws would
        # otherwise swing the load by 2x across seeds, and the paper's
        # sweeps hold the workload fixed.  Rescaling must respect the
        # runtime cap (a factor > 1 would otherwise mint day-long jobs
        # the site's queue limits forbid), so rescale-and-clip iterates;
        # it converges in a few rounds because clipping only ever
        # removes work.
        span = float(arrivals[-1] - arrivals[0])
        if span > 0:
            target_work = model.target_offered_load * span * machine
            for _ in range(4):
                work = float(np.dot(sizes.astype(np.float64), runtimes))
                if work <= 0 or abs(work - target_work) < 1e-6 * target_work:
                    break
                factor = target_work / work
                runtimes = np.clip(runtimes * factor, 1.0, model.max_runtime_s)
                estimates = np.clip(estimates * factor, 1.0, model.max_runtime_s * 4)
            estimates = np.maximum(estimates, runtimes)
    jobs = tuple(
        Job(
            job_id=i,
            arrival=float(arrivals[i]),
            size=int(sizes[i]),
            runtime=float(runtimes[i]),
            estimate=float(estimates[i]),
        )
        for i in range(n_jobs)
    )
    return Workload(
        name=name or f"{model.name}-synthetic",
        machine_nodes=machine,
        jobs=jobs,
    )
