"""Load scaling and machine fitting.

The paper studies load sensitivity by multiplying every job's execution
time by a coefficient ``c`` (0.5–1.5; the reported results use 1.0 and
1.2).  :func:`scale_load` implements exactly that.  :func:`fit_to_machine`
adapts a trace to the torus: sizes are capped at the machine and rounded
up to the nearest size for which a rectangular partition shape exists.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.geometry.coords import TorusDims
from repro.geometry.shapes import round_to_schedulable
from repro.workloads.job import Workload


def scale_load(workload: Workload, c: float) -> Workload:
    """Multiply every job's runtime (and estimate) by ``c``.

    This is the paper's load-scale coefficient: higher ``c`` means more
    induced load on the same arrival pattern.
    """
    if c <= 0:
        raise WorkloadError(f"load scale must be positive, got {c}")
    if c == 1.0:
        return workload
    return workload.replace_jobs([j.with_runtime_scaled(c) for j in workload.jobs])


def offered_load(workload: Workload, machine_nodes: int | None = None) -> float:
    """Offered load: requested node-seconds over available node-seconds.

    A value near (or above) 1 means the machine cannot keep up even with
    perfect packing.
    """
    nodes = machine_nodes if machine_nodes is not None else workload.machine_nodes
    if nodes < 1:
        raise WorkloadError(f"machine_nodes must be positive, got {nodes}")
    span = workload.span
    if span <= 0:
        return 0.0
    return workload.total_work / (span * nodes)


def fit_to_machine(workload: Workload, dims: TorusDims) -> Workload:
    """Adapt job sizes to a torus machine.

    Sizes are capped at the machine volume, then rounded up to the
    smallest size admitting a contiguous rectangular partition (BG/L
    cannot allocate e.g. 11 supernodes as a box).  Rounding up — not
    down — preserves the job's resource demand, the conservative choice
    also made by the BG/L prototype scheduler.
    """
    volume = dims.volume
    jobs = []
    for job in workload.jobs:
        size = min(job.size, volume)
        size = round_to_schedulable(size, dims)
        jobs.append(job.with_size(size) if size != job.size else job)
    fitted = workload.replace_jobs(jobs)
    return Workload(f"{workload.name}", volume, fitted.jobs)
