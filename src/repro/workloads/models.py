"""Statistical site models for the paper's three workload logs.

Each :class:`SiteModel` captures the published characterisation of one
Parallel Workloads Archive log well enough to regenerate a statistically
similar trace offline (see DESIGN.md §4):

* **NASA Ames iPSC/860** (1993, 128 nodes): almost exclusively
  power-of-two sizes, a very large share of tiny sequential/system jobs,
  short runtimes, strong day/night arrival cycle.
* **SDSC SP** (1998-2000, 128 nodes): mixed sizes with power-of-two
  spikes, lognormal runtimes with a long tail, heavy sustained load.
* **LLNL Cray T3D** (1996, 256 nodes): gang-scheduled, power-of-two sizes
  from 8 up, moderate runtimes.  The paper maps this 256-node log onto
  its 128-supernode machine; we halve sizes at generation time
  (``size_divisor=2``) to the same effect.

The knobs are deliberately few — the scheduling phenomena under study
depend on the size mix, runtime spread and arrival burstiness, not on
per-user structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

#: Seconds in a day; the diurnal arrival cycle period.
DAY = 86_400.0


@dataclass(frozen=True)
class SiteModel:
    """Distribution parameters for one synthetic trace generator.

    Parameters
    ----------
    name:
        Site key (``"nasa"``, ``"sdsc"``, ``"llnl"``).
    machine_nodes:
        Node count of the traced machine (pre ``size_divisor``).
    mean_interarrival_s:
        Mean job inter-arrival time in seconds (before diurnal
        modulation).
    diurnal_amplitude:
        Relative amplitude of the sinusoidal day/night arrival-rate
        cycle, in ``[0, 1)``; 0 disables the cycle.
    p_power_of_two:
        Probability a job requests a power-of-two node count.
    p_unit_job:
        Probability mass pinned on single-node jobs (NASA's interactive
        traffic), applied before the power-of-two draw.
    min_size / max_size:
        Inclusive size bounds (post ``size_divisor``).
    size_divisor:
        Divide generated sizes by this factor (LLNL's 256→128 mapping).
    runtime_log_mean / runtime_log_sigma:
        Parameters of the lognormal actual-runtime distribution
        (of ``ln`` seconds).
    max_runtime_s:
        Truncation for the runtime tail (archive logs clip at queue
        limits).
    p_exact_estimate:
        Probability a user estimate equals the actual runtime.
    estimate_factor_log_sigma:
        Spread of the multiplicative over-estimation factor (lognormal,
        ≥ 1) applied otherwise.
    size_runtime_rho:
        Size–runtime correlation exponent: runtimes are multiplied by
        ``size ** rho``.  Archive logs show bigger jobs running longer;
        without this the offered load of the real logs is unreachable
        from realistic marginals.
    target_offered_load:
        When positive, generated runtimes are rescaled by one global
        factor so the trace's offered load equals this value exactly.
        The paper replays *fixed* logs, so every sweep cell sees the
        same load; heavy-tailed draws would otherwise make the load vary
        wildly across seeds and drown the effects under study.
    """

    name: str
    machine_nodes: int
    mean_interarrival_s: float
    diurnal_amplitude: float
    p_power_of_two: float
    p_unit_job: float
    min_size: int
    max_size: int
    size_divisor: int
    runtime_log_mean: float
    runtime_log_sigma: float
    max_runtime_s: float
    p_exact_estimate: float
    estimate_factor_log_sigma: float
    size_runtime_rho: float = 0.0
    target_offered_load: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_interarrival_s <= 0:
            raise WorkloadError(f"{self.name}: mean interarrival must be positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise WorkloadError(f"{self.name}: diurnal amplitude must be in [0,1)")
        for p, label in (
            (self.p_power_of_two, "p_power_of_two"),
            (self.p_unit_job, "p_unit_job"),
            (self.p_exact_estimate, "p_exact_estimate"),
        ):
            if not 0 <= p <= 1:
                raise WorkloadError(f"{self.name}: {label} must be a probability")
        if not 1 <= self.min_size <= self.max_size:
            raise WorkloadError(f"{self.name}: bad size bounds")
        if self.size_divisor < 1:
            raise WorkloadError(f"{self.name}: size_divisor must be >= 1")
        if self.max_runtime_s <= 0 or self.runtime_log_sigma <= 0:
            raise WorkloadError(f"{self.name}: bad runtime parameters")


#: NASA Ames iPSC/860, Oct-Dec 1993.  ~42k jobs over 3 months; >90%
#: power-of-two, more than half single-node; median runtime well under a
#: minute with a modest tail.
NASA_IPSC = SiteModel(
    name="nasa",
    machine_nodes=128,
    mean_interarrival_s=190.0,
    diurnal_amplitude=0.75,
    p_power_of_two=0.97,
    p_unit_job=0.55,
    min_size=1,
    max_size=128,
    size_divisor=1,
    runtime_log_mean=3.73,  # calibrated: offered load ~0.47 at c=1
    runtime_log_sigma=1.6,
    max_runtime_s=4 * 3600.0,
    p_exact_estimate=0.35,
    estimate_factor_log_sigma=0.9,
    size_runtime_rho=0.5,
    target_offered_load=0.42,
)

#: SDSC SP, 1998-2000.  Sustained high utilisation, lognormal runtimes
#: with a long tail (jobs up to 18 h), size mix with power-of-two spikes.
SDSC_SP = SiteModel(
    name="sdsc",
    machine_nodes=128,
    mean_interarrival_s=420.0,
    diurnal_amplitude=0.5,
    p_power_of_two=0.70,
    p_unit_job=0.25,
    min_size=1,
    max_size=128,
    size_divisor=1,
    runtime_log_mean=3.73,  # calibrated: offered load ~0.68 at c=1
    runtime_log_sigma=1.7,
    max_runtime_s=6 * 3600.0,
    p_exact_estimate=0.2,
    estimate_factor_log_sigma=1.1,
    size_runtime_rho=0.5,
    target_offered_load=0.50,
)

#: LLNL Cray T3D, 1996.  Gang-scheduled; sizes are powers of two between
#: 8 and 256 on the real machine — halved here onto the 128-supernode
#: torus exactly as the paper rescales the log.
LLNL_T3D = SiteModel(
    name="llnl",
    machine_nodes=256,
    mean_interarrival_s=520.0,
    diurnal_amplitude=0.6,
    p_power_of_two=1.0,
    p_unit_job=0.0,
    min_size=8,
    max_size=256,
    size_divisor=2,
    runtime_log_mean=5.34,   # calibrated: offered load ~0.62 at c=1
    runtime_log_sigma=1.4,
    max_runtime_s=8 * 3600.0,
    p_exact_estimate=0.3,
    estimate_factor_log_sigma=0.8,
    size_runtime_rho=0.3,
    target_offered_load=0.46,
)

_SITES: dict[str, SiteModel] = {
    "nasa": NASA_IPSC,
    "sdsc": SDSC_SP,
    "llnl": LLNL_T3D,
}


def available_sites() -> tuple[str, ...]:
    """Names of the bundled site models."""
    return tuple(_SITES)


def site_model(name: str) -> SiteModel:
    """Look up a bundled site model by name (case-insensitive)."""
    try:
        return _SITES[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown site {name!r}; available: {', '.join(_SITES)}"
        ) from None
