"""Simulation configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.checkpoint.model import CheckpointConfig
from repro.errors import SimulationError
from repro.geometry.coords import BGL_SUPERNODE_DIMS, TorusDims
from repro.metrics.timing import BoundedSlowdownRule, GAMMA_SECONDS


class BackfillMode(enum.Enum):
    """Backfilling variant used by the FCFS scheduler.

    Krevat's scheduler backfills but the exact variant is unspecified
    (DESIGN.md §5.3):

    * ``NONE`` — strict FCFS: nothing starts before the queue head.
    * ``EASY`` — later jobs may start now only if their *estimated*
      finish does not exceed the head's shadow time (the earliest
      instant the head could start given estimated finishes).
    * ``AGGRESSIVE`` — any waiting job with a free partition starts.
    """

    NONE = "none"
    EASY = "easy"
    AGGRESSIVE = "aggressive"


@dataclass(frozen=True)
class SimulationConfig:
    """Everything configurable about one simulation run.

    Defaults reproduce the paper's setup: the 4x4x8 supernode torus,
    EASY backfilling, migration on (the balancing scheduler "includes
    backfilling and migration"), zero migration cost (no checkpoint
    overhead is modelled in the base paper) and no checkpointing.
    """

    dims: TorusDims = BGL_SUPERNODE_DIMS
    backfill: BackfillMode = BackfillMode.EASY
    migration: bool = True
    #: Wall seconds added to every migrated job's completion (the paper's
    #: no-checkpoint runs migrate for free; expose the knob for ablation).
    migration_cost_s: float = 0.0
    gamma: float = GAMMA_SECONDS
    slowdown_rule: BoundedSlowdownRule = BoundedSlowdownRule.STANDARD
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    #: Seed for engine-internal randomness (checkpoint prediction hits).
    seed: int = 0
    #: Re-verify torus invariants after every scheduler pass (slow; for
    #: tests and debugging).
    strict_invariants: bool = False
    #: Attach the full :mod:`repro.testing` oracle harness: occupancy
    #: invariants, event-ordering checks and an independent recomputation
    #: of the unused-capacity integral.  Strictly observational — the
    #: report is bit-for-bit identical with the flag on or off.  Slower
    #: than ``strict_invariants``; default off, on throughout the test
    #: suite.
    check_invariants: bool = False
    #: Emit one :mod:`repro.obs` decision-trace record per scheduler
    #: decision (arrival, candidate enumeration, dispatch, backfill,
    #: migration, failure, checkpoint).  Strictly observational — the
    #: report is bit-for-bit identical with the flag on or off — and
    #: zero-cost when off (decisions route through a no-op recorder).
    #: Implies ``profile``.
    trace: bool = False
    #: Collect a :class:`repro.obs.metrics.MetricsRegistry` of counters,
    #: histograms and hot-path timers for the run (available as
    #: ``Simulator.metrics``).  Observational, like ``trace``.
    profile: bool = False
    #: Maintain the scheduler's :class:`~repro.allocation.mfp.PlacementIndex`
    #: incrementally: alloc/free mutations are patched onto the live
    #: index via the torus journal instead of forcing a from-scratch
    #: rebuild.  Bitwise-equivalent to the rebuild path (the retained
    #: oracle; DESIGN.md §5.12) — off reproduces the old always-rebuild
    #: behaviour for cross-validation and benchmarking.
    incremental_index: bool = True
    #: Coalesce same-timestamp events into one batch: one index repair
    #: and one scheduler pass per burst of simultaneous finishes /
    #: failures / arrivals.  Off retains the naive per-event oracle
    #: (identical reports and traces; the index is refreshed after every
    #: event) for the differential suite and the event-batching bench.
    batch_events: bool = True
    #: Hard cap on processed events, guarding against livelock bugs.
    max_events: int = 50_000_000

    def __post_init__(self) -> None:
        if self.migration_cost_s < 0:
            raise SimulationError("migration_cost_s must be >= 0")
        if self.gamma <= 0:
            raise SimulationError("gamma must be positive")
        if self.max_events < 1:
            raise SimulationError("max_events must be positive")
