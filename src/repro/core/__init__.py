"""Event-driven space-sharing scheduler simulator.

This is the paper's simulation environment (§6.1): a 4x4x8 supernode
torus processed by an event-driven engine with *arrival*, *start*,
*finish* and *failure* events (checkpoint events are available through
:mod:`repro.checkpoint`).  Jobs always start the moment they are
scheduled; failures are transient — a failure on any node of a running
job destroys the whole job's unsaved work, re-queues it (original FCFS
priority) and leaves the node immediately available.
"""

from __future__ import annotations

from repro.core.arrivals import (
    ArrivalStream,
    OnlineArrivalStream,
    TraceArrivalStream,
)
from repro.core.config import BackfillMode, SimulationConfig
from repro.core.events import Event, EventKind, EventQueue
from repro.core.jobstate import JobState
from repro.core.queue import WaitQueue
from repro.core.simulator import Simulator, simulate
from repro.core.policies import (
    SchedulingPolicy,
    KrevatPolicy,
    BalancingPolicy,
    TieBreakPolicy,
    make_policy,
)

__all__ = [
    "ArrivalStream",
    "OnlineArrivalStream",
    "TraceArrivalStream",
    "BackfillMode",
    "SimulationConfig",
    "Event",
    "EventKind",
    "EventQueue",
    "JobState",
    "WaitQueue",
    "Simulator",
    "simulate",
    "SchedulingPolicy",
    "KrevatPolicy",
    "BalancingPolicy",
    "TieBreakPolicy",
    "make_policy",
]
