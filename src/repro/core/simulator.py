"""The event-driven scheduling simulator (§6.1 of the paper).

One :class:`Simulator` instance runs one workload against one failure
log under one policy.  The loop pops *batches* of same-timestamp events
(FINISH before FAILURE before ARRIVAL), applies them, then runs a
scheduler pass that dispatches as many waiting jobs as the policy,
backfilling rules and migration allow.  Capacity samples are recorded
after every batch; the integrand of the unused-capacity integral is
constant between batches, so the accounting is exact.

Failure semantics (§6.1): failures are transient — a failure on a node
running job *j* destroys all of *j*'s unsaved work, re-queues *j* at its
original FCFS priority and leaves the node instantly usable.  Failures
on free nodes are harmless (the simulated repair time is zero).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.allocation.mfp import IndexCache, PlacementIndex
from repro.checkpoint.model import CheckpointModel
from repro.errors import SimulationError
from repro.failures.events import FailureLog
from repro.geometry.partition import Partition
from repro.geometry.shapes import shapes_for_size
from repro.geometry.torus import Torus
from repro.metrics.capacity import CapacitySummary, CapacityTracker
from repro.metrics.report import Counters, SimulationReport
from repro.metrics.timing import JobRecord
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.workloads.job import Job, Workload
from repro.core.backfill import ShadowTimeEngine
from repro.core.config import BackfillMode, SimulationConfig
from repro.core.events import EventKind, EventQueue
from repro.core.jobstate import MIN_ESTIMATE_S, JobState
from repro.core.migration import apply_compaction, head_partition, plan_compaction
from repro.core.policies.base import SchedulingPolicy
from repro.core.queue import WaitQueue

if TYPE_CHECKING:  # deferred: repro.testing imports repro.core.events
    from repro.testing.harness import SimulationOracleHarness

#: Tolerance when comparing estimated finishes against the shadow time.
_SHADOW_EPS = 1e-9

logger = get_logger(__name__)


class Simulator:
    """One simulation run: workload × failure log × policy × config."""

    def __init__(
        self,
        workload: Workload,
        failure_log: FailureLog,
        policy: SchedulingPolicy,
        config: SimulationConfig | None = None,
        recorder: TraceRecorder | NullRecorder | None = None,
        open_ended: bool = False,
    ) -> None:
        self.config = config or SimulationConfig()
        dims = self.config.dims
        if failure_log.n_nodes != dims.volume:
            raise SimulationError(
                f"failure log covers {failure_log.n_nodes} nodes but the "
                f"machine has {dims.volume}; use repro.failures.map_node_ids"
            )
        self.workload = workload
        self.failure_log = failure_log
        self.policy = policy
        self.open_ended = open_ended
        self.torus = Torus(dims)
        self.states: dict[int, JobState] = {}
        self.wait = WaitQueue()
        self.events = EventQueue()
        self.tracker = CapacityTracker(dims.volume)
        self.counters = Counters()
        self.records: list[JobRecord] = []
        self.checkpoint = CheckpointModel(self.config.checkpoint)
        self.rng = np.random.default_rng(self.config.seed)
        self.oracles: SimulationOracleHarness | None = None
        if self.config.check_invariants:
            from repro.testing.harness import SimulationOracleHarness

            self.oracles = SimulationOracleHarness(dims.volume)
        if recorder is not None:
            self.recorder = recorder
        elif self.config.trace:
            self.recorder = TraceRecorder()
        else:
            self.recorder = NULL_RECORDER
        # Policies emit their own candidate-enumeration records.
        self.policy.recorder = self.recorder
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry()
            if (self.config.profile or self.config.trace or self.recorder.enabled)
            else None
        )
        self._completed = 0
        self._target = 0
        self._processed = 0
        self._begun = False
        self._last_time = 0.0
        self._final_report: SimulationReport | None = None
        self._arrival_epoch: dict[int, int] = {}
        self._cancelled: set[int] = set()
        # Batch runs know the full horizon up front; an open-ended run
        # starts with no arrivals and learns its earliest one from the
        # first submission.
        self._min_arrival = (
            math.inf
            if open_ended
            else min((j.arrival for j in workload.jobs), default=0.0)
        )
        self._running_ids: set[int] = set()
        self._index_cache = IndexCache(
            self.torus, incremental=self.config.incremental_index
        )
        self._shadow = ShadowTimeEngine(self.torus, index_cache=self._index_cache)

        for job in workload.jobs:
            self.submit_job(job)
        for i in range(len(failure_log)):
            self.events.push(
                float(failure_log.times[i]), EventKind.FAILURE, int(failure_log.nodes[i])
            )

    # ------------------------------------------------------------------
    # arrival intake (shared by the batch ctor and the online drivers)
    # ------------------------------------------------------------------
    def submit_job(self, job: Job) -> JobState:
        """Register a job and schedule its ARRIVAL event.

        The batch constructor funnels the whole workload through here;
        online drivers (:mod:`repro.core.arrivals`) call it one job at a
        time.  A job id may be reused only after :meth:`cancel_job` — the
        resubmission bumps the arrival epoch so a still-queued ARRIVAL
        from the cancelled life is ignored.
        """
        dims = self.config.dims
        if job.size > dims.volume or not shapes_for_size(job.size, dims):
            raise SimulationError(
                f"job {job.job_id} size {job.size} has no rectangular "
                f"partition on {dims.as_tuple()}; apply "
                f"repro.workloads.fit_to_machine first"
            )
        if job.job_id in self.states and job.job_id not in self._cancelled:
            raise SimulationError(f"job {job.job_id} already submitted")
        if job.job_id in self._cancelled:
            self._cancelled.discard(job.job_id)
            self._arrival_epoch[job.job_id] = (
                self._arrival_epoch.get(job.job_id, 0) + 1
            )
        state = JobState(job)
        self.states[job.job_id] = state
        self.events.push(
            job.arrival,
            EventKind.ARRIVAL,
            job.job_id,
            self._arrival_epoch.get(job.job_id, 0),
        )
        if job.arrival < self._min_arrival:
            self._min_arrival = job.arrival
        self._target += 1
        return state

    def cancel_job(self, job_id: int) -> str:
        """Withdraw a job; returns where the cancellation caught it.

        Outcomes: ``"pending"`` (ARRIVAL not yet processed), ``"waiting"``
        (pulled from the wait queue), ``"running"`` (partition released,
        in-flight FINISH invalidated), ``"completed"``/``"cancelled"``/
        ``"unknown"`` (no-ops).  Cancellation is an online-service
        operation — the batch path never calls it, so batch reports and
        traces are unaffected.  Capacity accounting treats the freed
        nodes as free from the next recorded batch onward.
        """
        state = self.states.get(job_id)
        if state is None:
            return "unknown"
        if job_id in self._cancelled:
            return "cancelled"
        if state.done:
            return "completed"
        self._cancelled.add(job_id)
        self._target -= 1
        if job_id in self._running_ids:
            self.torus.release(job_id)
            self._running_ids.discard(job_id)
            state.abort_dispatch()
            outcome = "running"
        elif self.wait.discard(state):
            outcome = "waiting"
        else:
            # ARRIVAL still queued: stale-epoch it out of the heap.
            self._arrival_epoch[job_id] = self._arrival_epoch.get(job_id, 0) + 1
            outcome = "pending"
        if self.recorder.enabled:
            self.recorder.emit(
                "cancel", self._last_time, job=job_id, caught=outcome
            )
        return outcome

    def job_status(self, job_id: int) -> str:
        """Lifecycle phase of a job id, for the service status endpoint."""
        state = self.states.get(job_id)
        if state is None:
            return "unknown"
        if job_id in self._cancelled:
            return "cancelled"
        if state.done:
            return "completed"
        if state.running:
            return "running"
        return "waiting" if self.wait.find(job_id) is not None else "pending"

    @property
    def completed_count(self) -> int:
        """Jobs that have run to completion so far."""
        return self._completed

    @property
    def outstanding(self) -> int:
        """Submitted, not cancelled, not yet completed."""
        return self._target - self._completed

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        """Run to completion and return the report."""
        if self.recorder.enabled:
            dims = self.config.dims
            self.recorder.header(
                policy=self.policy.name,
                workload=self.workload.name,
                dims=[dims.x, dims.y, dims.z],
                seed=self.config.seed,
                n_jobs=len(self.workload),
                n_failures=len(self.failure_log),
                backfill=self.config.backfill.value,
                migration=self.config.migration,
            )
        if self.metrics is None:
            return self._run()
        logger.debug(
            "instrumented run: %s on %s (%d jobs, %d failures)",
            self.policy.name, self.workload.name,
            len(self.workload), len(self.failure_log),
        )
        with obs_metrics.activate(self.metrics):
            with self.metrics.timer("sim.run"):
                return self._run()

    def _run(self) -> SimulationReport:
        return self.drain()

    def _begin(self) -> None:
        """Record the opening capacity sample (idempotent)."""
        if self._begun:
            return
        self._begun = True
        self._last_time = self._min_arrival
        self.tracker.record(self._min_arrival, self.torus.dims.volume, 0)
        if self.oracles is not None:
            self.oracles.record_capacity(
                self._min_arrival, self.torus.dims.volume, 0
            )

    def _step_batch(self) -> float:
        """Pop and apply one same-timestamp batch, then run a scheduler
        pass — one iteration of the historical run loop."""
        batch = self.events.pop_batch()
        now = batch[0].time
        if self.oracles is not None:
            self.oracles.observe_batch(batch)
        for event in batch:
            self._processed += 1
            if self._processed > self.config.max_events:
                raise SimulationError(
                    f"event budget exhausted ({self.config.max_events}); "
                    f"likely livelock"
                )
            if event.kind is EventKind.FINISH:
                self._on_finish(event.payload, event.epoch, now)
            elif event.kind is EventKind.FAILURE:
                self._on_failure(event.payload, now)
            else:
                self._on_arrival(event.payload, event.epoch, now)
            if not self.config.batch_events:
                # Naive per-event oracle: refresh the placement
                # index after every event instead of once per
                # coalesced batch.  The refreshed index is not
                # consulted between events, so reports and traces
                # stay byte-identical to the batched path (the
                # differential suite in tests/core/
                # test_event_batching.py enforces this).
                self._index_cache.invalidate()
                self._index_cache.get()
        self._schedule_pass(now)
        if now >= self._min_arrival:
            self.tracker.record(
                now, self.torus.free_count, self.wait.requested_nodes
            )
            if self.oracles is not None:
                self.oracles.record_capacity(
                    now, self.torus.free_count, self.wait.requested_nodes
                )
        if self.config.strict_invariants:
            self.torus.check_invariants()
        if self.oracles is not None:
            self.oracles.check_torus(self.torus)
        self._last_time = now
        return now

    def pump(
        self, horizon: float = math.inf, max_batches: int | None = None
    ) -> int:
        """Process event batches strictly *before* ``horizon``.

        Returns the number of batches processed.  The horizon is the
        caller's arrival watermark: a batch at time ``t >= horizon``
        could still gain members from a future submission at ``t`` (an
        arrival joining it would change the scheduler pass), so it stays
        queued.  With the default infinite horizon this replicates the
        batch run loop, stopping once every non-cancelled job completed
        — trailing failure events are left unprocessed, exactly as the
        batch path leaves them.
        """
        if self._target == 0 or not math.isfinite(self._min_arrival):
            return 0
        self._begin()
        steps = 0
        while self._completed < self._target and (
            max_batches is None or steps < max_batches
        ):
            next_time = self.events.next_time()
            if next_time is None or next_time >= horizon:
                break
            self._step_batch()
            steps += 1
        return steps

    def drain(self) -> SimulationReport:
        """Run every remaining batch and build the final report.

        Idempotent: the report is cached, so the service can answer
        repeated ``drain`` requests without re-running the engine.
        """
        if self._final_report is not None:
            return self._final_report
        if self._target == 0:
            end = self._min_arrival if math.isfinite(self._min_arrival) else 0.0
            self._min_arrival = end
            self._final_report = self._report(end_time=end)
            return self._final_report
        self.pump()
        if self._completed < self._target:
            raise SimulationError(
                f"simulation stalled: {self._target - self._completed} jobs "
                f"never completed (event queue drained at t={self._last_time})"
            )
        self._final_report = self._report(end_time=self._last_time)
        return self._final_report

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, job_id: int, epoch: int, now: float) -> None:
        if (
            epoch != self._arrival_epoch.get(job_id, 0)
            or job_id in self._cancelled
        ):
            return  # ARRIVAL from a life that was cancelled before it landed
        if self.recorder.enabled:
            self.recorder.emit(
                "arrival", now, job=job_id, size=self.states[job_id].size
            )
        self.wait.push(self.states[job_id])

    def _on_finish(self, job_id: int, epoch: int, now: float) -> None:
        state = self.states[job_id]
        if state.epoch != epoch or not state.running:
            return  # stale FINISH from an execution a failure destroyed
        if self.recorder.enabled:
            self.recorder.emit("finish", now, job=job_id)
        self.torus.release(job_id)
        self._running_ids.discard(job_id)
        state.complete(now)
        self.records.append(state.to_record())
        self._completed += 1

    def _on_failure(self, node: int, now: float) -> None:
        self.counters.failures_total += 1
        owner = self.torus.owner_by_index(node)
        if self.recorder.enabled:
            self.recorder.emit("failure", now, node=node, killed_job=owner)
        if owner is None:
            self.counters.failures_idle += 1
            return
        self.counters.failures_hit_jobs += 1
        self.counters.job_kills += 1
        if self.metrics is not None:
            self.metrics.counter("sim.job_kills").inc()
        state = self.states[owner]
        new_saved = self.checkpoint.progress_at_kill(
            state.saved_progress, now - state.start_time, state.job.runtime, self.rng
        )
        if new_saved > state.saved_progress + 1e-12:
            self.counters.checkpoint_restores += 1
            if self.recorder.enabled:
                self.recorder.emit(
                    "checkpoint", now, job=owner,
                    saved_before=state.saved_progress, saved_after=new_saved,
                )
        self.torus.release(owner)
        self._running_ids.discard(owner)
        state.kill(now, new_saved)
        self.wait.push(state)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _schedule_pass(self, now: float) -> None:
        self.counters.scheduler_passes += 1
        if self.metrics is not None:
            self.metrics.counter("sim.scheduler_passes").inc()
        self.policy.begin_pass(now)
        while self.wait:
            # Version-checked reuse: loop iterations that did not mutate
            # the torus (choose → dispatch bumps the version; a failed
            # choose does not) share one index, as do back-to-back
            # scheduler passes over an unchanged machine.
            index = self._index_cache.get()
            head = self.wait.head()
            partition = self.policy.choose_partition(index, head, now)
            if partition is not None:
                self._dispatch(head, partition, now)
                continue
            if self._try_migration(head, now):
                continue
            if self.config.backfill is BackfillMode.NONE:
                break
            if not self._try_backfill(index, head, now):
                break

    def _try_migration(self, head: JobState, now: float) -> bool:
        if not self.config.migration:
            return False
        if self.torus.free_count < head.size:
            return False
        running = [self.states[i] for i in self._running_ids]
        plan = plan_compaction(self.torus, running, head)
        if plan is None:
            return False
        apply_compaction(self.torus, plan, head.job_id)
        if self.recorder.enabled:
            self.recorder.emit(
                "migration", now, head_job=head.job_id, **plan.summary()
            )
        if self.metrics is not None:
            self.metrics.counter("sim.migrations").inc()
        self.counters.migrations += 1
        self.counters.jobs_migrated += len(plan.moved_job_ids)
        cost = self.config.migration_cost_s
        if cost > 0:
            for job_id in plan.moved_job_ids:
                state = self.states[job_id]
                # The move re-dispatches the job: its completion slips by
                # the checkpoint/restore cost, charged as lost capacity.
                state.wall_duration += cost
                state.est_finish += cost
                state.lost_work += cost * state.size
                state.epoch += 1
                self.events.push(
                    state.start_time + state.wall_duration,
                    EventKind.FINISH,
                    job_id,
                    state.epoch,
                )
        self._dispatch(head, head_partition(plan, head.job_id), now, via="migration")
        return True

    def _try_backfill(
        self, index: PlacementIndex, head: JobState, now: float
    ) -> bool:
        """Start one lower-priority job if the mode permits; True if any
        job started (the caller rebuilds the index and loops)."""
        if self.config.backfill is BackfillMode.EASY:
            running = [self.states[i] for i in self._running_ids]
            shadow = self._shadow.shadow_time(running, head.size, now)
            if math.isinf(shadow):
                raise SimulationError(
                    f"job {head.job_id} (size {head.size}) cannot fit even "
                    f"an empty machine"
                )
        else:
            shadow = math.inf
        for state in list(self.wait)[1:]:
            est_wall = self.checkpoint.wall_duration(
                max(state.remaining_estimate, MIN_ESTIMATE_S)
            )
            if now + est_wall > shadow + _SHADOW_EPS:
                continue
            partition = self.policy.choose_partition(index, state, now)
            if partition is not None:
                if self.recorder.enabled:
                    self.recorder.emit(
                        "backfill", now, job=state.job_id,
                        head_job=head.job_id, shadow=shadow, est_wall=est_wall,
                    )
                self._dispatch(state, partition, now, via="backfill")
                self.counters.backfills += 1
                return True
        return False

    def _dispatch(
        self, state: JobState, partition: Partition, now: float, via: str = "fcfs"
    ) -> None:
        wall = self.checkpoint.wall_duration(state.remaining_work)
        wall = max(wall, 1e-9)
        epoch = state.dispatch(now, wall)
        state.est_finish = now + self.checkpoint.wall_duration(
            max(state.remaining_estimate, MIN_ESTIMATE_S)
        )
        if self.recorder.enabled:
            self.recorder.emit(
                "dispatch", now, job=state.job_id, size=state.size,
                base=[int(x) for x in partition.base],
                shape=[int(x) for x in partition.shape],
                via=via, wall=wall, est_finish=state.est_finish,
            )
        if self.metrics is not None:
            self.metrics.counter("sim.dispatches").inc()
        self.torus.allocate(state.job_id, partition)
        self._running_ids.add(state.job_id)
        self.wait.remove(state)
        self.events.push(now + wall, EventKind.FINISH, state.job_id, epoch)

    # ------------------------------------------------------------------
    def _report(self, end_time: float) -> SimulationReport:
        useful = sum(r.size * r.runtime for r in self.records)
        self.tracker.close(max(end_time, self._min_arrival))
        if self.oracles is not None:
            self.oracles.finalize(
                max(end_time, self._min_arrival), self.tracker.surplus_integral()
            )
        capacity = CapacitySummary.from_tracker(
            self.tracker, useful, self._min_arrival, end_time
        )
        return SimulationReport.build(
            policy=self.policy.name,
            workload=self.workload.name,
            n_failures=len(self.failure_log),
            records=sorted(self.records, key=lambda r: r.job_id),
            capacity=capacity,
            counters=self.counters,
            parameters={
                "backfill": self.config.backfill.value,
                "migration": self.config.migration,
                "checkpoint": self.config.checkpoint.mode.value,
            },
            gamma=self.config.gamma,
            slowdown_rule=self.config.slowdown_rule,
        )


def simulate(
    workload: Workload,
    failure_log: FailureLog,
    policy: SchedulingPolicy,
    config: SimulationConfig | None = None,
    recorder: TraceRecorder | NullRecorder | None = None,
) -> SimulationReport:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(workload, failure_log, policy, config, recorder=recorder).run()
