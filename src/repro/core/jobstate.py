"""Mutable per-job simulation state.

A :class:`JobState` wraps an immutable
:class:`~repro.workloads.job.Job` with everything the engine mutates:
dispatch epoch, remaining work (which shrinks only when checkpointing
saves progress), restart count and destroyed-work accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.metrics.timing import JobRecord
from repro.workloads.job import Job

#: Floor for the scheduler's remaining-estimate after checkpoint resume,
#: so prediction windows and shadow times never collapse to zero.
MIN_ESTIMATE_S = 1.0


@dataclass(slots=True)
class JobState:
    """Scheduling state of one job across (re)executions."""

    job: Job
    #: Work still to execute, in seconds of runtime (checkpoint resume
    #: shrinks this; plain restarts reset it to the full runtime).
    remaining_work: float = field(default=-1.0)
    #: The scheduler's view of the remaining execution time.
    remaining_estimate: float = field(default=-1.0)
    #: Runtime progress safely checkpointed, in seconds of work.
    saved_progress: float = 0.0
    #: Dispatch epoch; FINISH events from older epochs are stale.
    epoch: int = 0
    #: Wall-clock start of the current/last dispatch (None while waiting).
    start_time: float | None = None
    #: Wall-clock duration the current dispatch will occupy the machine
    #: (includes checkpoint overhead when enabled).
    wall_duration: float = 0.0
    #: Estimated finish of the current dispatch (backfill shadow input).
    est_finish: float = 0.0
    restarts: int = 0
    lost_work: float = 0.0
    finished_at: float | None = None

    def __post_init__(self) -> None:
        if self.remaining_work < 0:
            self.remaining_work = self.job.runtime
        if self.remaining_estimate < 0:
            self.remaining_estimate = self.job.estimate

    # ------------------------------------------------------------------
    @property
    def job_id(self) -> int:
        return self.job.job_id

    @property
    def size(self) -> int:
        return self.job.size

    @property
    def running(self) -> bool:
        return self.start_time is not None and self.finished_at is None

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    # ------------------------------------------------------------------
    def dispatch(self, now: float, wall_duration: float) -> int:
        """Mark the job started at ``now``; returns the new epoch."""
        if self.running:
            raise SimulationError(f"job {self.job_id} dispatched while running")
        if self.done:
            raise SimulationError(f"job {self.job_id} dispatched after completion")
        if wall_duration <= 0:
            raise SimulationError(
                f"job {self.job_id}: wall duration must be positive, got {wall_duration}"
            )
        self.epoch += 1
        self.start_time = now
        self.wall_duration = wall_duration
        self.est_finish = now + max(self.remaining_estimate, MIN_ESTIMATE_S)
        return self.epoch

    def kill(self, now: float, new_saved_progress: float) -> None:
        """Failure handling: destroy the current execution.

        ``new_saved_progress`` is the total checkpointed work after this
        failure (equal to the old value when checkpointing is off); the
        difference between wall time burned and progress banked is
        charged to ``lost_work``.
        """
        if not self.running:
            raise SimulationError(f"job {self.job_id} killed while not running")
        if new_saved_progress < self.saved_progress - 1e-9:
            raise SimulationError("checkpointed progress cannot regress")
        executed = now - self.start_time
        gained = new_saved_progress - self.saved_progress
        self.lost_work += max(0.0, executed - gained) * self.size
        self.saved_progress = min(new_saved_progress, self.job.runtime)
        self.remaining_work = self.job.runtime - self.saved_progress
        self.remaining_estimate = max(
            self.job.estimate - self.saved_progress, MIN_ESTIMATE_S
        )
        self.epoch += 1  # invalidate the in-flight FINISH event
        self.start_time = None
        self.restarts += 1

    def complete(self, now: float) -> None:
        """Mark the job finished at ``now``."""
        if not self.running:
            raise SimulationError(f"job {self.job_id} completed while not running")
        self.finished_at = now

    def abort_dispatch(self) -> None:
        """Roll back a dispatch that never took effect (migration rollback)."""
        if not self.running:
            raise SimulationError(f"job {self.job_id} has no dispatch to abort")
        self.epoch += 1
        self.start_time = None

    # ------------------------------------------------------------------
    def to_record(self) -> JobRecord:
        """Final accounting; only valid once the job completed."""
        if self.finished_at is None or self.start_time is None:
            raise SimulationError(f"job {self.job_id} has not completed")
        return JobRecord(
            job_id=self.job_id,
            size=self.size,
            arrival=self.job.arrival,
            start=self.start_time,
            finish=self.finished_at,
            runtime=self.job.runtime,
            estimate=self.job.estimate,
            restarts=self.restarts,
            lost_work=self.lost_work,
        )
