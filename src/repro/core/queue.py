"""FCFS wait queue.

Jobs are ordered by ``(arrival, job_id)`` — a killed job re-enters with
its *original* arrival time, so it returns to (or near) the head of the
queue rather than the tail, matching the paper's restart semantics.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.errors import SimulationError
from repro.core.jobstate import JobState


class WaitQueue:
    """Priority-ordered wait queue keyed by (arrival, job_id)."""

    __slots__ = ("_keys", "_jobs", "_requested")

    def __init__(self) -> None:
        self._keys: list[tuple[float, int]] = []
        self._jobs: list[JobState] = []
        self._requested = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __iter__(self) -> Iterator[JobState]:
        return iter(self._jobs)

    def __getitem__(self, i: int) -> JobState:
        return self._jobs[i]

    @property
    def requested_nodes(self) -> int:
        """Total nodes requested by waiting jobs — the ``q(t)`` of the
        unused-capacity integral."""
        return self._requested

    def push(self, state: JobState) -> None:
        """Insert preserving FCFS order; duplicates are rejected."""
        key = (state.job.arrival, state.job_id)
        i = bisect.bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            raise SimulationError(f"job {state.job_id} already queued")
        self._keys.insert(i, key)
        self._jobs.insert(i, state)
        self._requested += state.size

    def head(self) -> JobState:
        """The highest-priority waiting job."""
        if not self._jobs:
            raise SimulationError("head() on empty wait queue")
        return self._jobs[0]

    def remove(self, state: JobState) -> None:
        """Remove a specific job (it was just dispatched)."""
        if not self.discard(state):
            raise SimulationError(f"job {state.job_id} not in wait queue")

    def discard(self, state: JobState) -> bool:
        """Remove a job if present; returns whether it was queued.

        The cancellation path (an online client withdrawing a waiting
        job) cannot know whether the job is still queued or already
        dispatched, so absence is an answer rather than an error.
        """
        key = (state.job.arrival, state.job_id)
        i = bisect.bisect_left(self._keys, key)
        if i >= len(self._keys) or self._keys[i] != key:
            return False
        del self._keys[i]
        del self._jobs[i]
        self._requested -= state.size
        return True

    def find(self, job_id: int) -> JobState | None:
        """The queued state with this id, or ``None`` (linear scan —
        cancellation/status paths only, never the scheduler hot path)."""
        for js in self._jobs:
            if js.job_id == job_id:
                return js
        return None
