"""Arrival sources for the steppable simulator.

The batch simulator replays a finite trace: every arrival is known up
front, so the whole workload is pushed into the event heap before the
loop starts.  The online service (:mod:`repro.serve`) instead feeds the
same engine from an open-ended stream where future arrivals are unknown
and the loop may only advance through events it can *prove* will not be
preempted by a later submission.

Both drivers implement one small contract:

``bind(sim)``
    Attach to a :class:`~repro.core.simulator.Simulator`, pushing any
    already-known arrivals.
``watermark``
    A simulation time **w** such that every job arriving strictly
    before *w* has already been submitted.  The engine may safely
    process events with ``time < w`` — a batch popped below the
    watermark can never gain members retroactively, so decisions made
    there are final.  ``math.inf`` once the stream is closed.
``closed``
    True when no further arrival will ever be submitted.

The watermark is deliberately *strict*: events exactly at the watermark
stay queued, because a job arriving at precisely that instant would
join their batch (FINISH < FAILURE < ARRIVAL ordering) and change the
scheduler pass.  This is what makes an online replay byte-identical to
the batch run of the same trace (DESIGN.md §5.14).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.workloads.job import Job, Workload

if TYPE_CHECKING:
    from repro.core.jobstate import JobState
    from repro.core.simulator import Simulator


@runtime_checkable
class ArrivalStream(Protocol):
    """Contract between the simulator loop and an arrival source."""

    def bind(self, sim: "Simulator") -> None:
        """Attach to a simulator, submitting already-known arrivals."""

    @property
    def watermark(self) -> float:
        """Events strictly before this time are safe to process."""

    @property
    def closed(self) -> bool:
        """True when no further arrivals will ever come."""


class TraceArrivalStream:
    """The batch driver: a finite workload, fully known up front.

    ``bind`` submits every job in workload order (the order the
    simulator has always pushed them), so the event heap — and with it
    every downstream decision — is identical to the historical
    construct-from-workload path.
    """

    def __init__(self, workload: Workload) -> None:
        self.workload = workload

    def bind(self, sim: "Simulator") -> None:
        for job in self.workload.jobs:
            sim.submit_job(job)

    @property
    def watermark(self) -> float:
        return math.inf

    @property
    def closed(self) -> bool:
        return True


class OnlineArrivalStream:
    """An open-ended source fed one submission at a time.

    Submissions must carry nondecreasing arrival times — the stream is
    the single source of truth for how far the simulated clock may
    advance, and a job arriving in the processed past would make the
    run order-dependent.  ``close()`` marks the stream exhausted, which
    lifts the watermark to infinity so a drain can run the engine dry.
    """

    def __init__(self) -> None:
        self._sim: "Simulator" | None = None
        self._watermark = -math.inf
        self._closed = False
        self.submitted = 0

    def bind(self, sim: "Simulator") -> None:
        self._sim = sim

    def submit(self, job: Job) -> "JobState":
        """Feed one job; returns its engine-side state."""
        if self._sim is None:
            raise SimulationError("arrival stream is not bound to a simulator")
        if self._closed:
            raise SimulationError(
                f"job {job.job_id}: arrival stream is closed"
            )
        if job.arrival < self._watermark:
            raise SimulationError(
                f"job {job.job_id} arrives at {job.arrival} but the stream "
                f"watermark is already {self._watermark}; online submissions "
                f"must carry nondecreasing arrival times"
            )
        state = self._sim.submit_job(job)
        self._watermark = job.arrival
        self.submitted += 1
        return state

    def close(self) -> None:
        """No further arrivals: unlock the full event horizon."""
        self._closed = True

    @property
    def watermark(self) -> float:
        return math.inf if self._closed else self._watermark

    @property
    def closed(self) -> bool:
        return self._closed
