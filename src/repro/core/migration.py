"""Job migration via whole-machine compaction.

BG/L can move a running job by checkpointing it and restarting it on a
different partition (§3.2).  The engine invokes compaction when the
queue head has enough free nodes in total but no free *partition* —
fragmentation that only migration can cure.

The compaction plan re-places every running job plus the head,
largest-first with minimal-MFP-loss placement, on a cleared scratch
machine.  Only if *everything* fits is the plan committed; otherwise the
machine is untouched.  Per the paper's no-checkpoint baseline the move
itself is free (``migration_cost_s = 0``); a nonzero cost extends each
moved job's completion and is charged as lost work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocation.mfp import IndexCache
from repro.core.jobstate import JobState
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus


@dataclass(frozen=True, slots=True)
class CompactionPlan:
    """A verified full re-placement: job id → new partition."""

    placements: tuple[tuple[int, Partition], ...]
    moved_job_ids: tuple[int, ...]

    def summary(self) -> dict:
        """JSON-serialisable digest for the decision trace."""
        return {
            "moved_jobs": [int(j) for j in self.moved_job_ids],
            "n_placements": len(self.placements),
            "placements": [
                {
                    "job": int(job_id),
                    "base": [int(x) for x in part.base],
                    "shape": [int(x) for x in part.shape],
                }
                for job_id, part in self.placements
            ],
        }


def plan_compaction(
    torus: Torus, running: list[JobState], head: JobState
) -> CompactionPlan | None:
    """Try to re-place all running jobs plus ``head`` on an empty machine.

    Jobs are placed largest-first (ties: earlier arrival first) with the
    MFP heuristic.  Returns None when no full placement is found — the
    greedy planner is not exhaustive, so rare feasible packings may be
    missed; the engine simply leaves the head waiting then.
    """
    todo = sorted(
        [js for js in running if js.running] + [head],
        key=lambda js: (-js.size, js.job.arrival, js.job_id),
    )
    scratch = Torus(torus.dims)
    cache = IndexCache(scratch)
    placements: list[tuple[int, Partition]] = []
    for js in todo:
        # First-occurrence argmin == the old strict-`<` keep-first walk.
        batch, losses = cache.get().batch_mfp_losses(js.size)
        if not len(batch):
            return None
        best = batch.partition(int(np.argmin(losses)))
        scratch.allocate(js.job_id, best)
        placements.append((js.job_id, best))
    # Canonical comparison: a full-axis-span partition re-placed under a
    # different base is the same node set — not a move, and must not be
    # charged migration cost.
    moved = tuple(
        job_id
        for job_id, part in placements
        if job_id != head.job_id
        and torus.allocation_of(job_id).canonical(torus.dims)
        != part.canonical(torus.dims)
    )
    return CompactionPlan(tuple(placements), moved)


def apply_compaction(torus: Torus, plan: CompactionPlan, head_id: int) -> None:
    """Commit a plan: every running job moves to its planned partition.

    The head's partition is *not* allocated here — the engine dispatches
    the head through its normal path so accounting stays in one place.
    """
    for job_id in list(dict(torus.allocations())):
        torus.release(job_id)
    for job_id, partition in plan.placements:
        if job_id != head_id:
            torus.allocate(job_id, partition)


def head_partition(plan: CompactionPlan, head_id: int) -> Partition:
    """The partition the plan reserved for the head job."""
    for job_id, partition in plan.placements:
        if job_id == head_id:
            return partition
    raise LookupError(f"plan has no placement for head job {head_id}")
