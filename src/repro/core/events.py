"""Simulator events and the event queue.

Three event kinds drive the simulation; *start* events from the paper's
taxonomy are implicit because jobs begin executing the instant they are
scheduled (§6.1), and checkpoint progress is modelled analytically (see
:mod:`repro.checkpoint`).

Events at the same timestamp are processed in a fixed kind order:
``FINISH`` before ``FAILURE`` before ``ARRIVAL`` — a job that completes
at exactly the moment a node fails has already finished, and freshly
freed partitions must be visible to jobs arriving at the same instant.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field

from repro.errors import SimulationError


class EventKind(enum.IntEnum):
    """Event kinds; numeric value is the same-timestamp processing order."""

    FINISH = 0
    FAILURE = 1
    ARRIVAL = 2


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """One scheduled simulator event.

    ``payload`` is the job id for FINISH/ARRIVAL and the linear node id
    for FAILURE.  ``epoch`` guards FINISH events against stale delivery:
    when a failure kills a job its dispatch epoch advances, and the
    already-queued FINISH (carrying the old epoch) is ignored.
    """

    time: float
    kind: EventKind
    seq: int = field(compare=True)
    payload: int = field(compare=False, default=0)
    epoch: int = field(compare=False, default=0)


class EventQueue:
    """Min-heap of events ordered by (time, kind, insertion sequence)."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, kind: EventKind, payload: int, epoch: int = 0) -> Event:
        """Schedule an event; returns the stored record."""
        if time < 0:
            raise SimulationError(f"event time must be >= 0, got {time}")
        event = Event(time, kind, self._seq, payload, epoch)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def peek(self) -> Event:
        """Next event without removing it."""
        if not self._heap:
            raise SimulationError("peek on empty event queue")
        return self._heap[0]

    def next_time(self) -> float | None:
        """Timestamp of the next event, or ``None`` when empty.

        The steppable drivers (:meth:`repro.core.simulator.Simulator.pump`)
        use this to decide whether the next batch falls inside their
        arrival watermark without paying for an exception on drain.
        """
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next event."""
        if not self._heap:
            raise SimulationError("pop on empty event queue")
        return heapq.heappop(self._heap)

    def pop_batch(self) -> list[Event]:
        """Remove and return every event sharing the next timestamp.

        The scheduler runs once per *batch*, after all simultaneous state
        changes have been applied (kind order within the batch is the
        EventKind order).
        """
        if not self._heap:
            raise SimulationError("pop_batch on empty event queue")
        first = heapq.heappop(self._heap)
        batch = [first]
        while self._heap and self._heap[0].time == first.time:
            batch.append(heapq.heappop(self._heap))
        return batch
