"""EASY-backfilling shadow-time computation.

When the queue head cannot start, EASY backfilling grants it a
*reservation*: the earliest time a partition of its size becomes free
assuming running jobs finish at their estimated times.  Later jobs may
start out of order only if their estimated finish does not exceed that
shadow time, so they can never delay the head (under truthful
estimates).

On a torus, "enough nodes free" is not "a partition free" — the shadow
time must honour the rectangular-partition constraint.  We therefore
replay hypothetical releases on a scratch grid in estimated-finish order
and ask the real partition machinery after each release.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.allocation.mfp import PlacementIndex
from repro.core.jobstate import JobState
from repro.geometry.torus import Torus


def shadow_time(
    torus: Torus,
    running: Iterable[JobState],
    head_size: int,
    now: float,
) -> float:
    """Earliest estimated time a free partition of ``head_size`` exists.

    Returns ``now`` when one already exists, ``math.inf`` when even a
    fully drained machine has none (an unschedulable size — the engine
    treats that as a hard error upstream).
    """
    scratch = Torus(torus.dims)
    scratch.grid[...] = torus.grid
    if PlacementIndex(scratch).has_candidate(head_size):
        return now
    ordered = sorted(
        (js for js in running if js.running),
        key=lambda js: (js.est_finish, js.job_id),
    )
    for js in ordered:
        partition = torus.allocation_of(js.job_id)
        scratch.grid[_selector(scratch, partition)] = -1
        if PlacementIndex(scratch).has_candidate(head_size):
            return max(now, js.est_finish)
    return math.inf


def _selector(torus: Torus, partition):
    import numpy as np

    return np.ix_(*partition.axis_ranges(torus.dims))
