"""EASY-backfilling shadow-time computation.

When the queue head cannot start, EASY backfilling grants it a
*reservation*: the earliest time a partition of its size becomes free
assuming running jobs finish at their estimated times.  Later jobs may
start out of order only if their estimated finish does not exceed that
shadow time, so they can never delay the head (under truthful
estimates).

On a torus, "enough nodes free" is not "a partition free" — the shadow
time must honour the rectangular-partition constraint.  We therefore
replay hypothetical releases on a scratch grid in estimated-finish order
and ask the real partition machinery after each release.

:class:`ShadowTimeEngine` is the production path: it owns one reusable
scratch occupancy array per torus, rebuilds only the placement windows of
the head's shapes after each hypothetical release (a fresh
:class:`~repro.allocation.mfp.PlacementIndex` per release builds shape
tables and cache dicts the query never touches), and memoises the
release-replay answer per ``(torus.version, head_size)`` so scheduler
passes that did not mutate the machine — arrival batches, repeated
same-size heads — skip the replay entirely.  The answer is a pure
function of machine state and running estimates, both of which only
change together with a ``torus.version`` bump, so the cache is
semantics-preserving.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.allocation.mfp import IndexCache, PlacementIndex
from repro.core.jobstate import JobState
from repro.geometry.shapes import shapes_for_size
from repro.obs import metrics as obs_metrics
from repro.geometry.torus import (
    FREE,
    Torus,
    window_sums_from_integral,
    wrap_pad_integral,
)


def shadow_time_naive(
    torus: Torus,
    running: Iterable[JobState],
    head_size: int,
    now: float,
) -> float:
    """Reference shadow-time: full grid copy + fresh index per release.

    Kept as the independently-simple oracle the engine is cross-validated
    (and benchmarked) against; production code uses
    :class:`ShadowTimeEngine` / :func:`shadow_time`.
    """
    scratch = Torus(torus.dims)
    scratch.grid[...] = torus.grid
    if PlacementIndex(scratch).has_candidate(head_size):
        return now
    ordered = sorted(
        (js for js in running if js.running),
        key=lambda js: (js.est_finish, js.job_id),
    )
    for js in ordered:
        partition = torus.allocation_of(js.job_id)
        scratch.grid[np.ix_(*partition.axis_ranges(torus.dims))] = FREE
        if PlacementIndex(scratch).has_candidate(head_size):
            return max(now, js.est_finish)
    return math.inf


class ShadowTimeEngine:
    """Incremental, cached shadow-time queries against one torus.

    The engine never mutates the torus it watches; it mirrors occupancy
    into a reusable 0/1 scratch array and replays hypothetical releases
    there.  Cache entries are keyed on ``(torus.version, head_size)`` and
    store the *release time* at which the head first fits (``-inf`` when
    it already fits, ``+inf`` when even a drained machine has no box), so
    one entry serves queries at any ``now``.

    The cache contract requires that the running set and its estimated
    finishes change only in lockstep with torus mutations — true in the
    simulator, where every dispatch/finish/kill/migration both edits
    ``est_finish`` and bumps ``torus.version`` before the next query.
    """

    __slots__ = ("torus", "_busy", "_fit_times", "_cache_version", "_index_cache")

    def __init__(self, torus: Torus, index_cache: IndexCache | None = None) -> None:
        self.torus = torus
        self._busy = np.empty(torus.dims.as_tuple(), dtype=np.int64)
        self._fit_times: dict[int, float] = {}
        self._cache_version = -1
        # Optional shared placement index (the simulator passes its own):
        # the "fits right now" probe then reuses the scheduler pass's
        # index instead of building throwaway integral images.
        self._index_cache = index_cache

    def shadow_time(
        self, running: Iterable[JobState], head_size: int, now: float
    ) -> float:
        """Earliest estimated time a free partition of ``head_size`` exists."""
        version = self.torus.version
        if version != self._cache_version:
            self._fit_times.clear()
            self._cache_version = version
        t_fit = self._fit_times.get(head_size)
        registry = obs_metrics.ACTIVE
        if registry is not None:
            registry.counter("shadow.queries").inc()
            if t_fit is not None:
                registry.counter("shadow.cache_hits").inc()
        if t_fit is None:
            if registry is None:
                t_fit = self._first_fit_time(running, head_size)
            else:
                with registry.timer("shadow.first_fit"):
                    t_fit = self._first_fit_time(running, head_size)
            self._fit_times[head_size] = t_fit
        return max(now, t_fit)

    # ------------------------------------------------------------------
    def _first_fit_time(self, running: Iterable[JobState], head_size: int) -> float:
        """Release-replay: the est-finish at which ``head_size`` first fits.

        ``-inf`` when a free box already exists, ``+inf`` when no shape of
        ``head_size`` fits even a drained machine.
        """
        torus = self.torus
        dims = torus.dims
        shapes = shapes_for_size(head_size, dims)
        if not shapes:
            return math.inf
        dims_shape = dims.as_tuple()
        busy = self._busy
        busy[...] = torus.grid != FREE
        free_now = dims.volume - int(busy.sum())
        if free_now >= head_size:
            if self._index_cache is not None:
                # Same answer as ``_has_free_box`` on the mirrored grid —
                # ``has_candidate`` asks the identical "any all-free
                # wrap-around placement of any shape of this size"
                # question — but against the scheduler pass's index.
                fits = self._index_cache.get().has_candidate(head_size)
            else:
                fits = _has_free_box(busy, dims_shape, shapes)
            if fits:
                return -math.inf
        ordered = sorted(
            (js for js in running if js.running),
            key=lambda js: (js.est_finish, js.job_id),
        )
        for js in ordered:
            partition = torus.allocation_of(js.job_id)
            busy[np.ix_(*partition.axis_ranges(dims))] = 0
            free_now += partition.size
            # No box of head_size nodes can exist with fewer free nodes;
            # skip the window rebuild until releases reach that mass.
            if free_now >= head_size and _has_free_box(busy, dims_shape, shapes):
                return js.est_finish
        return math.inf


def _has_free_box(busy: np.ndarray, dims_shape, shapes) -> bool:
    """True when any of ``shapes`` has an all-free wrap-around placement."""
    integral = wrap_pad_integral(busy)
    for shape in shapes:
        sums = window_sums_from_integral(integral, dims_shape, shape)
        if not sums.all():
            return True
    return False


def shadow_time(
    torus: Torus,
    running: Iterable[JobState],
    head_size: int,
    now: float,
) -> float:
    """Earliest estimated time a free partition of ``head_size`` exists.

    Returns ``now`` when one already exists, ``math.inf`` when even a
    fully drained machine has none (an unschedulable size — the engine
    treats that as a hard error upstream).

    One-shot convenience over :class:`ShadowTimeEngine`; the simulator
    keeps a long-lived engine instead so repeated queries share the
    scratch grid and the per-version cache.
    """
    return ShadowTimeEngine(torus).shadow_time(running, head_size, now)
