"""Fault-oblivious baseline placement — Krevat's MFP heuristic (§5.1).

Among all free partitions of the job's size, pick the one whose
allocation least reduces the maximal free partition (smallest
``L_MFP``), preserving room for the next job in the queue.  Ties break
deterministically on the finder's enumeration order (shape order, then
base order) so runs are reproducible.

The production path scores the whole candidate set with the batch MFP
kernel and picks the winner with one first-occurrence ``argmin`` — the
same partition the retained scalar walk (``choose_partition_scalar``)
selects, which the batch-vs-scalar property suite enforces.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.mfp import PlacementIndex
from repro.core.jobstate import JobState
from repro.core.policies.base import SchedulingPolicy
from repro.geometry.partition import Partition


class KrevatPolicy(SchedulingPolicy):
    """FCFS + MFP placement with no fault awareness."""

    name = "krevat"

    def choose_partition(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        batch, losses = self.batch_scored(index, state.size)
        if not len(batch):
            if self.recorder.enabled:
                self.trace_decision(state, now, [], 0, None)
            return None
        # np.argmin returns the first occurrence of the minimum — exactly
        # the scalar walk's "first candidate at min loss" tie order.
        chosen = batch.partition(int(np.argmin(losses)))
        if self.recorder.enabled:
            considered = [
                self.describe_candidate(batch.partition(i), l_mfp=int(losses[i]))
                for i in range(len(batch))
            ]
            self.trace_decision(state, now, considered, len(batch), chosen)
        return chosen

    def choose_partition_scalar(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        """Per-candidate scalar walk — the cross-validation oracle."""
        scored, min_loss = self.min_loss_candidates(index, state.size)
        if not scored:
            return None
        for partition, loss in scored:
            if loss == min_loss:
                return partition
        return None  # pragma: no cover - min_loss comes from scored
