"""Fault-oblivious baseline placement — Krevat's MFP heuristic (§5.1).

Among all free partitions of the job's size, pick the one whose
allocation least reduces the maximal free partition (smallest
``L_MFP``), preserving room for the next job in the queue.  Ties break
deterministically on the finder's enumeration order (shape order, then
base order) so runs are reproducible.
"""

from __future__ import annotations

from repro.allocation.mfp import PlacementIndex
from repro.core.jobstate import JobState
from repro.core.policies.base import SchedulingPolicy
from repro.geometry.partition import Partition


class KrevatPolicy(SchedulingPolicy):
    """FCFS + MFP placement with no fault awareness."""

    name = "krevat"

    def choose_partition(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        scored, min_loss = self.min_loss_candidates(index, state.size)
        if not scored:
            return None
        for partition, loss in scored:
            if loss == min_loss:
                return partition
        return None  # pragma: no cover - min always present
