"""Fault-oblivious baseline placement — Krevat's MFP heuristic (§5.1).

Among all free partitions of the job's size, pick the one whose
allocation least reduces the maximal free partition (smallest
``L_MFP``), preserving room for the next job in the queue.  Ties break
deterministically on the finder's enumeration order (shape order, then
base order) so runs are reproducible.
"""

from __future__ import annotations

from repro.allocation.mfp import PlacementIndex
from repro.core.jobstate import JobState
from repro.core.policies.base import SchedulingPolicy
from repro.geometry.partition import Partition


class KrevatPolicy(SchedulingPolicy):
    """FCFS + MFP placement with no fault awareness."""

    name = "krevat"

    def choose_partition(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        scored, min_loss = self.min_loss_candidates(index, state.size)
        if not scored:
            if self.recorder.enabled:
                self.trace_decision(state, now, [], 0, None)
            return None
        chosen: Partition | None = None
        for partition, loss in scored:
            if loss == min_loss:
                chosen = partition
                break
        if self.recorder.enabled:
            considered = [
                self.describe_candidate(partition, l_mfp=int(loss))
                for partition, loss in scored
            ]
            self.trace_decision(state, now, considered, len(scored), chosen)
        return chosen
