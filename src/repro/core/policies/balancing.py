"""The balancing algorithm — §5.2.1 of the paper.

For each candidate partition ``P`` the policy computes the total
expected loss

    ``E_loss = L_MFP + L_PF``,  with  ``L_PF = P_f · s_j``,

where ``L_MFP`` is the MFP shrinkage caused by the placement and ``P_f``
the predicted probability that ``P`` fails before the job's estimated
completion (worst case: the job dies just before finishing, losing
``s_j``-node-sized work).  The candidate minimising ``E_loss`` wins;
ties prefer the more stable partition (lower ``P_f``), then enumeration
order.

With confidence 0 every ``P_f`` is 0 and the policy degenerates exactly
to the Krevat baseline — the sweeps' ``a = 0`` point.

The production path is fully batch: one MFP kernel call for every
``L_MFP``, one predictor gather per candidate shape for every ``P_f``,
and a two-stage lexicographic argmin whose tie order provably matches
the scalar walk's ``(e_loss, p_f, enumeration-order)`` keys — the
minimum ``e_loss`` is found by exact float comparison, the tied subset
is reduced by first-occurrence ``argmin`` on ``p_f``, and both paths
compute ``e_loss`` with the identical two IEEE operations
(``p_f * s_j`` then ``l_mfp + ·``), so equal keys are equal bitwise.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.mfp import PlacementIndex
from repro.core.jobstate import JobState
from repro.core.policies.base import SchedulingPolicy
from repro.geometry.partition import Partition
from repro.prediction.base import Predictor


class BalancingPolicy(SchedulingPolicy):
    """Fault-aware placement balancing MFP loss against failure loss."""

    name = "balancing"

    def __init__(self, predictor: Predictor) -> None:
        self.predictor = predictor

    def begin_pass(self, now: float) -> None:
        self.predictor.begin_pass(now)

    def choose_partition(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        batch, losses = self.batch_scored(index, state.size)
        if not len(batch):
            if self.recorder.enabled:
                self.trace_decision(state, now, [], 0, None)
            return None
        window_end = now + max(state.remaining_estimate, 1.0)
        probs = np.empty(len(batch), dtype=np.float64)
        for shape, sl, bases in batch.groups():
            probs[sl] = self.predictor.partition_failure_probabilities(
                bases, shape, index.dims, now, window_end
            )
        e_loss = losses + probs * state.size
        tied = np.flatnonzero(e_loss == e_loss.min())
        winner = int(tied[int(np.argmin(probs[tied]))])
        chosen = batch.partition(winner)
        if self.recorder.enabled:
            considered = [
                self.describe_candidate(
                    batch.partition(i),
                    l_mfp=int(losses[i]),
                    p_f=float(probs[i]),
                    l_pf=float(probs[i]) * state.size,
                    e_loss=float(e_loss[i]),
                )
                for i in range(len(batch))
            ]
            self.trace_decision(state, now, considered, len(batch), chosen)
        return chosen

    def choose_partition_scalar(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        """Per-candidate scalar walk — the cross-validation oracle."""
        scored, _ = self.min_loss_candidates(index, state.size)
        if not scored:
            return None
        window_end = now + max(state.remaining_estimate, 1.0)
        best: Partition | None = None
        best_key: tuple[float, float] | None = None
        for partition, mfp_loss in scored:
            p_f = self.predictor.partition_failure_probability(
                partition, index.dims, now, window_end
            )
            key = (mfp_loss + p_f * state.size, p_f)
            if best_key is None or key < best_key:
                best, best_key = partition, key
        return best
