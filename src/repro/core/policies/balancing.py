"""The balancing algorithm — §5.2.1 of the paper.

For each candidate partition ``P`` the policy computes the total
expected loss

    ``E_loss = L_MFP + L_PF``,  with  ``L_PF = P_f · s_j``,

where ``L_MFP`` is the MFP shrinkage caused by the placement and ``P_f``
the predicted probability that ``P`` fails before the job's estimated
completion (worst case: the job dies just before finishing, losing
``s_j``-node-sized work).  The candidate minimising ``E_loss`` wins;
ties prefer the more stable partition (lower ``P_f``), then enumeration
order.

With confidence 0 every ``P_f`` is 0 and the policy degenerates exactly
to the Krevat baseline — the sweeps' ``a = 0`` point.
"""

from __future__ import annotations

from repro.allocation.mfp import PlacementIndex
from repro.core.jobstate import JobState
from repro.core.policies.base import SchedulingPolicy
from repro.geometry.partition import Partition
from repro.prediction.base import Predictor


class BalancingPolicy(SchedulingPolicy):
    """Fault-aware placement balancing MFP loss against failure loss."""

    name = "balancing"

    def __init__(self, predictor: Predictor) -> None:
        self.predictor = predictor

    def begin_pass(self, now: float) -> None:
        self.predictor.begin_pass(now)

    def choose_partition(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        scored, _ = self.min_loss_candidates(index, state.size)
        if not scored:
            if self.recorder.enabled:
                self.trace_decision(state, now, [], 0, None)
            return None
        window_end = now + max(state.remaining_estimate, 1.0)
        best: Partition | None = None
        best_key: tuple[float, float] | None = None
        considered: list[dict] | None = [] if self.recorder.enabled else None
        for partition, mfp_loss in scored:
            p_f = self.predictor.partition_failure_probability(
                partition, index.dims, now, window_end
            )
            e_loss = mfp_loss + p_f * state.size
            if considered is not None:
                considered.append(
                    self.describe_candidate(
                        partition,
                        l_mfp=int(mfp_loss),
                        p_f=p_f,
                        l_pf=p_f * state.size,
                        e_loss=e_loss,
                    )
                )
            key = (e_loss, p_f)
            if best_key is None or key < best_key:
                best, best_key = partition, key
        if considered is not None:
            self.trace_decision(state, now, considered, len(scored), best)
        return best
