"""Placement policies: Krevat baseline, balancing and tie-breaking."""

from __future__ import annotations

from repro.core.policies.base import SchedulingPolicy
from repro.core.policies.krevat import KrevatPolicy
from repro.core.policies.balancing import BalancingPolicy
from repro.core.policies.tiebreak import TieBreakPolicy
from repro.core.policies.registry import make_policy, available_policies

__all__ = [
    "SchedulingPolicy",
    "KrevatPolicy",
    "BalancingPolicy",
    "TieBreakPolicy",
    "make_policy",
    "available_policies",
]
