"""Placement-policy interface.

A policy answers exactly one question: *given the current machine state,
which free partition should this job get?*  Queueing order, backfilling
and migration live in the engine; only the partition choice differs
between the paper's three schedulers.
"""

from __future__ import annotations

import abc

from repro.allocation.mfp import PlacementIndex
from repro.core.jobstate import JobState
from repro.geometry.partition import Partition


class SchedulingPolicy(abc.ABC):
    """Chooses a partition for a job from the current free set."""

    #: Registry/CLI name.
    name: str = "abstract"

    def begin_pass(self, now: float) -> None:
        """Hook invoked once per scheduler pass (reset per-pass caches)."""

    @abc.abstractmethod
    def choose_partition(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        """Pick a partition of ``state.size`` nodes, or None to leave the
        job waiting (only when no free partition exists — the paper's
        policies always place when they can)."""

    # ------------------------------------------------------------------
    @staticmethod
    def min_loss_candidates(
        index: PlacementIndex, size: int
    ) -> tuple[list[tuple[Partition, int]], int]:
        """All candidates paired with their ``L_MFP``, plus the minimum.

        Shared by every policy: the Krevat heuristic prefers minimal MFP
        loss, and both fault-aware policies start from the same scored
        list.
        """
        scored = index.scored_candidates(size)
        if not scored:
            return [], 0
        return scored, min(loss for _, loss in scored)
