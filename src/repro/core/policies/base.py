"""Placement-policy interface.

A policy answers exactly one question: *given the current machine state,
which free partition should this job get?*  Queueing order, backfilling
and migration live in the engine; only the partition choice differs
between the paper's three schedulers.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.allocation.mfp import CandidateBatch, PlacementIndex
from repro.core.jobstate import JobState
from repro.geometry.partition import Partition
from repro.obs import metrics as obs_metrics
from repro.obs.trace import NULL_RECORDER

#: Per-decision cap on candidates detailed in one trace record; the
#: record's ``n_candidates`` always carries the uncapped count.
MAX_TRACED_CANDIDATES = 64


class SchedulingPolicy(abc.ABC):
    """Chooses a partition for a job from the current free set."""

    #: Registry/CLI name.
    name: str = "abstract"

    #: Decision-trace recorder; the simulator swaps in its own when
    #: tracing is enabled.  Policies emit one ``candidates`` record per
    #: placement decision with the scoring inputs of every considered
    #: partition.
    recorder = NULL_RECORDER

    def begin_pass(self, now: float) -> None:
        """Hook invoked once per scheduler pass (reset per-pass caches)."""

    @abc.abstractmethod
    def choose_partition(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        """Pick a partition of ``state.size`` nodes, or None to leave the
        job waiting (only when no free partition exists — the paper's
        policies always place when they can)."""

    # ------------------------------------------------------------------
    @staticmethod
    def batch_scored(
        index: PlacementIndex, size: int
    ) -> tuple[CandidateBatch, np.ndarray]:
        """All candidates of ``size`` with batch-kernel ``L_MFP`` scores.

        Shared by every policy's production path: the Krevat heuristic
        prefers minimal MFP loss, and both fault-aware policies start
        from the same scored batch.
        """
        batch, losses = index.batch_mfp_losses(size)
        registry = obs_metrics.ACTIVE
        if registry is not None:
            registry.histogram("policy.candidate_set_size").observe(len(batch))
        return batch, losses

    @staticmethod
    def min_loss_candidates(
        index: PlacementIndex, size: int
    ) -> tuple[list[tuple[Partition, int]], int]:
        """All candidates paired with their ``L_MFP``, plus the minimum.

        Scalar counterpart of :meth:`batch_scored`, retained as the
        cross-validation oracle behind every policy's
        ``choose_partition_scalar``.
        """
        scored = index.scored_candidates(size)
        registry = obs_metrics.ACTIVE
        if registry is not None:
            registry.histogram("policy.candidate_set_size").observe(len(scored))
        if not scored:
            return [], 0
        return scored, min(loss for _, loss in scored)

    # ------------------------------------------------------------------
    def trace_decision(
        self,
        state: JobState,
        now: float,
        considered: list[dict],
        n_candidates: int,
        chosen: Partition | None,
    ) -> None:
        """Emit one ``candidates`` decision record (tracing only)."""
        self.recorder.emit(
            "candidates",
            now,
            job=state.job_id,
            size=state.size,
            policy=self.name,
            n_candidates=n_candidates,
            considered=considered[:MAX_TRACED_CANDIDATES],
            truncated=len(considered) > MAX_TRACED_CANDIDATES,
            chosen=(
                None
                if chosen is None
                else {
                    "base": [int(x) for x in chosen.base],
                    "shape": [int(x) for x in chosen.shape],
                }
            ),
        )

    @staticmethod
    def describe_candidate(partition: Partition, **scores) -> dict:
        """One considered-candidate entry for :meth:`trace_decision`."""
        return {
            "base": [int(x) for x in partition.base],
            "shape": [int(x) for x in partition.shape],
            **scores,
        }
