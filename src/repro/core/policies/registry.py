"""Name-based policy construction shared by the CLI and harness."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.failures.events import FailureLog
from repro.prediction.balancing import BalancingPredictor
from repro.prediction.base import PartitionFailureRule
from repro.prediction.tiebreak import TieBreakPredictor
from repro.core.policies.base import SchedulingPolicy
from repro.core.policies.krevat import KrevatPolicy
from repro.core.policies.balancing import BalancingPolicy
from repro.core.policies.tiebreak import TieBreakPolicy

_POLICY_NAMES = ("krevat", "balancing", "tiebreak")


def available_policies() -> tuple[str, ...]:
    """Registered policy names."""
    return _POLICY_NAMES


def make_policy(
    name: str,
    failure_log: FailureLog | None = None,
    parameter: float = 0.0,
    pf_rule: PartitionFailureRule = PartitionFailureRule.MAX,
    seed: int | None = 0,
) -> SchedulingPolicy:
    """Build a policy by name.

    ``parameter`` is the paper's ``a``: prediction *confidence* for
    ``balancing``, *accuracy* for ``tiebreak``; ignored by ``krevat``.
    The fault-aware policies require ``failure_log``.
    """
    key = name.lower()
    if key == "krevat":
        return KrevatPolicy()
    if key in ("balancing", "tiebreak") and failure_log is None:
        raise SimulationError(f"policy {name!r} requires a failure log")
    if key == "balancing":
        return BalancingPolicy(BalancingPredictor(failure_log, parameter, pf_rule))
    if key == "tiebreak":
        return TieBreakPolicy(TieBreakPredictor(failure_log, parameter, seed))
    raise SimulationError(
        f"unknown policy {name!r}; available: {', '.join(_POLICY_NAMES)}"
    )
