"""The tie-breaking algorithm — §5.2.2 of the paper.

Keep the Krevat heuristic's choice set — the candidates of minimal
``L_MFP`` — and use the boolean tie-breaking predictor only to choose
*among* them: prefer a tied partition predicted not to fail during the
job's estimated execution.  When every tied candidate is predicted to
fail the choice is arbitrary (first in enumeration order), exactly as
the paper specifies.

Unlike the balancing policy this never trades free space for stability:
with accuracy 0 (or no upcoming failures) it is bit-for-bit the Krevat
baseline.
"""

from __future__ import annotations

from repro.allocation.mfp import PlacementIndex
from repro.core.jobstate import JobState
from repro.core.policies.base import SchedulingPolicy
from repro.geometry.partition import Partition
from repro.prediction.base import Predictor


class TieBreakPolicy(SchedulingPolicy):
    """Krevat placement with fault-prediction tie-breaking."""

    name = "tiebreak"

    def __init__(self, predictor: Predictor) -> None:
        self.predictor = predictor

    def begin_pass(self, now: float) -> None:
        self.predictor.begin_pass(now)

    def choose_partition(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        scored, min_loss = self.min_loss_candidates(index, state.size)
        if not scored:
            if self.recorder.enabled:
                self.trace_decision(state, now, [], 0, None)
            return None
        window_end = now + max(state.remaining_estimate, 1.0)
        fallback: Partition | None = None
        considered: list[dict] | None = [] if self.recorder.enabled else None
        chosen: Partition | None = None
        for partition, loss in scored:
            if loss != min_loss:
                continue
            if fallback is None:
                fallback = partition
            predicted = self.predictor.predicts_failure(
                partition, index.dims, now, window_end
            )
            if considered is not None:
                considered.append(
                    self.describe_candidate(
                        partition, l_mfp=int(loss), predicted_failure=predicted
                    )
                )
            if not predicted:
                chosen = partition
                break
        if chosen is None:
            chosen = fallback
        if considered is not None:
            self.trace_decision(state, now, considered, len(scored), chosen)
        return chosen
