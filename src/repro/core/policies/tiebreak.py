"""The tie-breaking algorithm — §5.2.2 of the paper.

Keep the Krevat heuristic's choice set — the candidates of minimal
``L_MFP`` — and use the boolean tie-breaking predictor only to choose
*among* them: prefer a tied partition predicted not to fail during the
job's estimated execution.  When every tied candidate is predicted to
fail the choice is arbitrary (first in enumeration order), exactly as
the paper specifies.

Unlike the balancing policy this never trades free space for stability:
with accuracy 0 (or no upcoming failures) it is bit-for-bit the Krevat
baseline.

The production path batches: tied candidates are gathered per shape and
put to the predictor in one vectorised query each, then the winner is
the first unpredicted tied candidate (first tied overall as fallback) —
the same choice as the retained scalar walk.  The batch path may query
the predictor for tied candidates the scalar walk's early exit skips;
that is observationally free, because per-node responses are drawn once
per window, not per query.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.mfp import PlacementIndex
from repro.core.jobstate import JobState
from repro.core.policies.base import SchedulingPolicy
from repro.geometry.partition import Partition
from repro.prediction.base import Predictor


class TieBreakPolicy(SchedulingPolicy):
    """Krevat placement with fault-prediction tie-breaking."""

    name = "tiebreak"

    def __init__(self, predictor: Predictor) -> None:
        self.predictor = predictor

    def begin_pass(self, now: float) -> None:
        self.predictor.begin_pass(now)

    def choose_partition(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        batch, losses = self.batch_scored(index, state.size)
        if not len(batch):
            if self.recorder.enabled:
                self.trace_decision(state, now, [], 0, None)
            return None
        window_end = now + max(state.remaining_estimate, 1.0)
        tied = np.flatnonzero(losses == losses.min())
        predicted = np.empty(tied.size, dtype=bool)
        for shape, sl, bases in batch.groups():
            # ``tied`` is ascending, so this group's members are one
            # contiguous run of it.
            lo = int(np.searchsorted(tied, sl.start))
            hi = int(np.searchsorted(tied, sl.stop))
            if hi > lo:
                predicted[lo:hi] = self.predictor.predict_failures(
                    bases[tied[lo:hi] - sl.start],
                    shape,
                    index.dims,
                    now,
                    window_end,
                )
        unpredicted = np.flatnonzero(~predicted)
        if unpredicted.size:
            pick = int(unpredicted[0])
        else:
            pick = 0  # every tied candidate predicted to fail: first wins
        chosen = batch.partition(int(tied[pick]))
        if self.recorder.enabled:
            # The scalar walk examines tied candidates up to and
            # including the first unpredicted one; mirror that.
            last = int(unpredicted[0]) if unpredicted.size else tied.size - 1
            considered = [
                self.describe_candidate(
                    batch.partition(int(tied[k])),
                    l_mfp=int(losses[tied[k]]),
                    predicted_failure=bool(predicted[k]),
                )
                for k in range(last + 1)
            ]
            self.trace_decision(state, now, considered, len(batch), chosen)
        return chosen

    def choose_partition_scalar(
        self, index: PlacementIndex, state: JobState, now: float
    ) -> Partition | None:
        """Per-candidate scalar walk — the cross-validation oracle."""
        scored, min_loss = self.min_loss_candidates(index, state.size)
        if not scored:
            return None
        window_end = now + max(state.remaining_estimate, 1.0)
        fallback: Partition | None = None
        for partition, loss in scored:
            if loss != min_loss:
                continue
            if fallback is None:
                fallback = partition
            if not self.predictor.predicts_failure(
                partition, index.dims, now, window_end
            ):
                return partition
        return fallback
