"""Projection-of-Partitions (POP) style finder.

Krevat, Castanos and Moreira's scheduler located free partitions with a
dynamic program over *projections* of the torus, improving the naive
search to ``O(M^5)``.  The original paper gives only the complexity, not
the code, so this module is a faithful-in-spirit reconstruction: free-run
lengths along the z axis project the 3-D occupancy problem onto 2-D
slices, and a second windowing pass combines columns into boxes.

Complexity: computing the z free-runs is ``O(M^3)``; for each candidate
shape ``(a, b, c)`` the combine pass is ``O(M^3 (a + b))``, which summed
over the shapes of one size stays within the ``O(M^5)`` class.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.coords import TorusDims
from repro.geometry.shapes import shapes_for_size
from repro.geometry.torus import Torus, circular_window_sum
from repro.allocation.base import PartitionFinder, partitions_from_bases


def z_free_runs(free: np.ndarray, dims: TorusDims) -> np.ndarray:
    """Length of the free run starting at each node along +z (wrapping).

    ``runs[x, y, z]`` is the number of consecutive free nodes
    ``(x, y, z), (x, y, z+1), ...`` with wrap-around, capped at ``dims.z``
    (a fully-free column reports ``dims.z`` everywhere).
    """
    Z = dims.z
    runs = np.zeros(free.shape, dtype=np.int64)
    # Two backwards passes over a doubled axis resolve wrap-around runs.
    for _ in range(2):
        for z in range(Z - 1, -1, -1):
            nxt = runs[:, :, (z + 1) % Z]
            runs[:, :, z] = np.where(free[:, :, z], np.minimum(nxt + 1, Z), 0)
    return runs


class POPFinder(PartitionFinder):
    """Run-length projection finder (Krevat-style dynamic programming)."""

    name = "pop"

    def find_free(self, torus: Torus, size: int) -> list[Partition]:
        self._check_size(torus, size)
        dims = torus.dims
        runs = z_free_runs(torus.free_mask(), dims)
        out: list[Partition] = []
        for shape in shapes_for_size(size, dims):
            a, b, c = shape
            # Columns able to host a length-c run starting at each z.
            ok = (runs >= c).astype(np.int64)
            # A box is free iff all a*b columns in its x/y window qualify.
            window = circular_window_sum(ok, (a, b, 1))
            out.extend(partitions_from_bases(np.argwhere(window == a * b), shape))
        return out
