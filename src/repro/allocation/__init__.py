"""Free-partition finders and maximal-free-partition (MFP) machinery.

Three interchangeable finders locate every free, contiguous, rectangular
partition of a requested size on the torus:

* :class:`NaiveFinder` — the exhaustive reference search the paper cites
  as ``O(M^9)``-class; pure Python, used to cross-validate the others.
* :class:`POPFinder` — a run-length dynamic program in the spirit of
  Krevat's Projection-of-Partitions algorithm (``O(M^5)``-class).
* :class:`FastFinder` — the paper's Appendix-9 divisor-driven finder
  (``O(M^3 · s^3 · f(s)^3)``), vectorised with circular window sums.

:class:`PlacementIndex` builds, for one occupancy state, the free-placement
grid of *every* shape; it answers MFP queries and the scheduler's
"MFP after hypothetically placing job J here" queries in near-constant
time, which is what makes the balancing policy tractable.  The batch
scoring surface (:class:`CandidateBatch` /
:meth:`PlacementIndex.batch_mfp_losses`) scores all candidates of one
size in a handful of NumPy gathers; :class:`IndexCache` reuses one index
per machine state across scheduler loop iterations.
"""

from __future__ import annotations

from repro.allocation.base import PartitionFinder
from repro.allocation.naive import NaiveFinder
from repro.allocation.pop import POPFinder
from repro.allocation.fast import FastFinder
from repro.allocation.mfp import (
    CandidateBatch,
    IndexCache,
    PlacementIndex,
    mfp_size,
    mfp_partition,
)
from repro.allocation.registry import get_finder, available_finders

__all__ = [
    "PartitionFinder",
    "NaiveFinder",
    "POPFinder",
    "FastFinder",
    "CandidateBatch",
    "IndexCache",
    "PlacementIndex",
    "mfp_size",
    "mfp_partition",
    "get_finder",
    "available_finders",
]
