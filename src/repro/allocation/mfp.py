"""Maximal Free Partition (MFP) queries.

The MFP heuristic drives all three schedulers: a placement is judged by
how much it shrinks the size of the largest free contiguous rectangular
partition (``L_MFP``), because the next job in the FCFS queue may need a
partition that large.

:class:`PlacementIndex` precomputes one wrap-padded integral image of
the occupancy grid; the free-placement grid of any shape then costs 8
array slices, and the scheduler's "MFP after hypothetically placing job
J here" query (:meth:`mfp_excluding`) reduces to scalar box-sum lookups
on lazily-built per-shape placement integrals: a placement of shape
``T`` survives partition ``P`` iff its base lies outside the modular box
of bases whose window would intersect ``P``.

The index is throw-away: build one per occupancy state (cheap), query it
many times while evaluating candidate placements, and discard it after
mutating the torus.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.coords import Coord, TorusDims
from repro.geometry.partition import Partition
from repro.geometry.shapes import all_shapes, shapes_for_size
from repro.geometry.torus import (
    FREE,
    Torus,
    box_sum_at,
    window_sums_from_integral,
    wrap_pad_integral,
)
from repro.obs import metrics as obs_metrics


class PlacementIndex:
    """Free-placement grids for every shape, for one occupancy state."""

    __slots__ = (
        "dims",
        "torus_version",
        "_shape_order",
        "_busy_integral",
        "_grids",
        "_totals",
        "_grid_integrals",
        "_mfp_size",
        "_candidate_cache",
        "_scored_cache",
    )

    def __init__(self, torus: Torus) -> None:
        self.dims: TorusDims = torus.dims
        self.torus_version = torus.version
        self._shape_order = all_shapes(torus.dims)  # decreasing volume
        self._busy_integral = wrap_pad_integral((torus.grid != FREE).astype(np.int64))
        # Lazy per-shape placement grids: a typical index build touches
        # only the handful of shapes the current queue asks about, so an
        # eager all-shapes batch (tried; ~4x slower end-to-end) loses to
        # 15 us-per-shape laziness.
        self._grids: dict[Coord, np.ndarray] = {}
        self._totals: dict[Coord, int] = {}
        self._grid_integrals: dict[Coord, np.ndarray] = {}
        self._mfp_size: int | None = None
        self._candidate_cache: dict[int, list[Partition]] = {}
        self._scored_cache: dict[int, list[tuple[Partition, int]]] = {}
        registry = obs_metrics.ACTIVE
        if registry is not None:
            registry.counter("index.builds").inc()

    # ------------------------------------------------------------------
    def _placements(self, shape: Coord) -> np.ndarray:
        """Boolean grid: True where a free placement of ``shape`` is based."""
        grid = self._grids.get(shape)
        if grid is None:
            grid = (
                window_sums_from_integral(
                    self._busy_integral, self.dims.as_tuple(), shape
                )
                == 0
            )
            self._grids[shape] = grid
            self._totals[shape] = int(np.count_nonzero(grid))
        return grid

    def _placement_integral(self, shape: Coord) -> np.ndarray:
        """Integral image over the placement grid (intersect counting)."""
        integral = self._grid_integrals.get(shape)
        if integral is None:
            integral = wrap_pad_integral(self._placements(shape).astype(np.int64))
            self._grid_integrals[shape] = integral
        return integral

    def count_placements(self, shape: Coord) -> int:
        """Number of free placements of ``shape`` (bases, not node sets)."""
        self._placements(shape)
        return self._totals[shape]

    # ------------------------------------------------------------------
    def candidates(self, size: int) -> list[Partition]:
        """All free partitions of exactly ``size`` nodes, deduplicated.

        Bases along fully-spanned axes are canonicalised to 0 so each node
        set appears once.
        """
        cached = self._candidate_cache.get(size)
        if cached is not None:
            return cached
        dims = self.dims
        seen: set[Partition] = set()
        out: list[Partition] = []
        for shape in shapes_for_size(size, dims):
            if self.count_placements(shape) == 0:
                continue
            grid = self._placements(shape)
            spans_axis = (
                shape[0] == dims.x or shape[1] == dims.y or shape[2] == dims.z
            )
            for bx, by, bz in np.argwhere(grid):
                part = Partition((int(bx), int(by), int(bz)), shape)
                if spans_axis:
                    # Only full-span shapes can alias node sets across
                    # bases; everything else is unique as-is.
                    part = part.canonical(dims)
                    if part in seen:
                        continue
                    seen.add(part)
                out.append(part)
        self._candidate_cache[size] = out
        return out

    def scored_candidates(self, size: int) -> list[tuple[Partition, int]]:
        """Candidates paired with their ``L_MFP``, cached per size.

        Several same-size jobs scanned in one backfill pass share this
        work — the machine state (and hence every loss) is identical
        until something is dispatched.
        """
        cached = self._scored_cache.get(size)
        if cached is None:
            cached = [(p, self.mfp_loss(p)) for p in self.candidates(size)]
            self._scored_cache[size] = cached
        return cached

    def has_candidate(self, size: int) -> bool:
        """True when at least one free partition of ``size`` exists."""
        for shape in shapes_for_size(size, self.dims):
            if self.count_placements(shape) > 0:
                return True
        return False

    # ------------------------------------------------------------------
    def mfp_size(self) -> int:
        """Size of the maximal free partition (0 on a full machine)."""
        if self._mfp_size is None:
            self._mfp_size = 0
            for shape in self._shape_order:
                if self.count_placements(shape) > 0:
                    self._mfp_size = shape[0] * shape[1] * shape[2]
                    break
        return self._mfp_size

    def mfp_partition(self) -> Partition | None:
        """One witness maximal free partition, or None on a full machine."""
        for shape in self._shape_order:
            if self.count_placements(shape) > 0:
                bx, by, bz = np.argwhere(self._placements(shape))[0]
                return Partition((int(bx), int(by), int(bz)), shape)
        return None

    # ------------------------------------------------------------------
    def _intersecting_base_count(self, shape: Coord, partition: Partition) -> int:
        """Number of free placements of ``shape`` whose box intersects
        ``partition``.

        A placement based at ``q`` intersects iff, on every axis,
        ``q`` lies in the modular interval ``[p - T + 1, p + P - 1]`` of
        length ``min(extent, P + T - 1)``; the count is one box-sum
        lookup on the placement-grid integral.
        """
        base = []
        extents = []
        for axis in range(3):
            extent = self.dims[axis]
            length = min(extent, partition.shape[axis] + shape[axis] - 1)
            base.append((partition.base[axis] - shape[axis] + 1) % extent)
            extents.append(length)
        return box_sum_at(
            self._placement_integral(shape),
            (base[0], base[1], base[2]),
            (extents[0], extents[1], extents[2]),
        )

    def _iter_nonempty_shapes(self):
        """Yield ``(volume, shape, total, placement_integral)`` rows for
        shapes with free placements, decreasing volume; integrals build
        lazily because the caller usually stops after the first rows."""
        for shape in self._shape_order:
            total = self.count_placements(shape)
            if total > 0:
                yield (
                    shape[0] * shape[1] * shape[2],
                    shape,
                    total,
                    self._placement_integral(shape),
                )

    def mfp_excluding(self, partition: Partition) -> int:
        """MFP size after hypothetically allocating ``partition``.

        Equivalent to allocating, rebuilding the index and asking
        :meth:`mfp_size`, but costs scalar lookups instead of a rebuild.
        """
        dims = self.dims
        p_base = partition.base
        p_shape = partition.shape
        for volume, shape, total, integral in self._iter_nonempty_shapes():
            # Placements whose box intersects `partition` have bases in a
            # modular box of extents min(axis, P+T-1) starting at
            # p - T + 1; one scalar lookup counts them.
            x0 = (p_base[0] - shape[0] + 1) % dims.x
            y0 = (p_base[1] - shape[1] + 1) % dims.y
            z0 = (p_base[2] - shape[2] + 1) % dims.z
            ex = min(dims.x, p_shape[0] + shape[0] - 1)
            ey = min(dims.y, p_shape[1] + shape[1] - 1)
            ez = min(dims.z, p_shape[2] + shape[2] - 1)
            intersecting = (
                integral[x0 + ex, y0 + ey, z0 + ez]
                - integral[x0, y0 + ey, z0 + ez]
                - integral[x0 + ex, y0, z0 + ez]
                - integral[x0 + ex, y0 + ey, z0]
                + integral[x0, y0, z0 + ez]
                + integral[x0, y0 + ey, z0]
                + integral[x0 + ex, y0, z0]
                - integral[x0, y0, z0]
            )
            if total > intersecting:
                return volume
        return 0

    def mfp_loss(self, partition: Partition) -> int:
        """``L_MFP``: MFP shrinkage caused by allocating ``partition``."""
        return self.mfp_size() - self.mfp_excluding(partition)


# ----------------------------------------------------------------------
# convenience functions
# ----------------------------------------------------------------------

def mfp_size(torus: Torus) -> int:
    """Size of the maximal free partition of ``torus``."""
    return PlacementIndex(torus).mfp_size()


def mfp_partition(torus: Torus) -> Partition | None:
    """One witness maximal free partition of ``torus``."""
    return PlacementIndex(torus).mfp_partition()
