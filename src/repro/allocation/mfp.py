"""Maximal Free Partition (MFP) queries.

The MFP heuristic drives all three schedulers: a placement is judged by
how much it shrinks the size of the largest free contiguous rectangular
partition (``L_MFP``), because the next job in the FCFS queue may need a
partition that large.

:class:`PlacementIndex` precomputes one wrap-padded integral image of
the occupancy grid; the free-placement grid of any shape then costs 8
array slices, and the scheduler's "MFP after hypothetically placing job
J here" query (:meth:`mfp_excluding`) reduces to box-sum lookups on
lazily-built per-shape placement integrals: a placement of shape ``T``
survives partition ``P`` iff its base lies outside the modular box of
bases whose window would intersect ``P``.

Candidate scoring comes in two shapes:

* the **batch path** (:meth:`PlacementIndex.batch_mfp_losses`) holds all
  candidates of one size as a struct-of-arrays
  (:class:`CandidateBatch`) and scores every candidate against every
  probe shape with one vectorised modular box-sum gather per
  (candidate-shape, probe-shape) pair — this is what the policies run;
* the **scalar path** (:meth:`PlacementIndex.scored_candidates` /
  :meth:`PlacementIndex.mfp_loss`) walks candidates one Python loop
  iteration at a time.  It is retained as the independently-simple
  cross-validation oracle (the same pattern ``shadow_time_naive`` serves
  for the shadow-time engine) and must stay bitwise-aligned with the
  batch path — ``tests/allocation/test_batch_scoring.py`` enforces it.

An index answers for the occupancy state it was built on.  Build one per
machine state and query it many times; :class:`IndexCache` gives the
scheduler a ``torus.version``-checked handle so consecutive queries
against an unchanged machine reuse one index (and all its lazy caches)
instead of rebuilding per loop iteration.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator

import numpy as np

from repro.geometry.coords import Coord, TorusDims
from repro.geometry.partition import Partition
from repro.geometry.shapes import all_shapes, shapes_for_size
from repro.geometry.torus import (
    FREE,
    Torus,
    box_sum_at,
    stacked_box_sums,
    window_sums_from_integral,
    wrap_pad_integral,
)
from repro.obs import metrics as obs_metrics


def intersect_window(
    dims: TorusDims, p_base: Coord, p_shape: Coord, t_shape: Coord
) -> tuple[Coord, Coord]:
    """Modular box of ``t_shape``-placement bases intersecting a partition.

    A placement of shape ``T`` based at ``q`` intersects the partition
    ``(p_base, p_shape)`` iff, on every axis, ``q`` lies in the modular
    interval ``[p - T + 1, p + P - 1]`` of length ``min(extent,
    P + T - 1)``.  Returns that box as ``(base, extents)``, ready for
    one :func:`~repro.geometry.torus.box_sum_at` lookup (or, with
    ``p_base = (0, 0, 0)``, as the shared offset of a vectorised
    :func:`~repro.geometry.torus.batch_box_sums` gather).

    This is the single home of the interval arithmetic previously
    duplicated between ``_intersecting_base_count`` and an inlined copy
    in ``mfp_excluding``.
    """
    return (
        (
            (p_base[0] - t_shape[0] + 1) % dims.x,
            (p_base[1] - t_shape[1] + 1) % dims.y,
            (p_base[2] - t_shape[2] + 1) % dims.z,
        ),
        (
            min(dims.x, p_shape[0] + t_shape[0] - 1),
            min(dims.y, p_shape[1] + t_shape[1] - 1),
            min(dims.z, p_shape[2] + t_shape[2] - 1),
        ),
    )


class CandidateBatch:
    """All free partitions of one size, held as struct-of-arrays.

    Candidates are grouped by shape in enumeration order (shape order of
    :func:`~repro.geometry.shapes.shapes_for_size`, then base order —
    row-major over ``(x, y, z)``), exactly the order of
    :meth:`PlacementIndex.candidates`.  Bases along fully-spanned axes
    are canonicalised to 0 and deduplicated (first occurrence wins), so
    each node set appears once.  :class:`~repro.geometry.partition.Partition`
    objects are materialised lazily — only for the winning candidate and
    for trace records — via :meth:`partition`.
    """

    __slots__ = ("dims", "shapes", "starts", "bases", "_shape_rows")

    def __init__(
        self, dims: TorusDims, shapes: tuple[Coord, ...], groups: list[np.ndarray]
    ) -> None:
        self.dims = dims
        self.shapes = shapes
        starts = [0]
        for group in groups:
            starts.append(starts[-1] + group.shape[0])
        #: Row offsets: group ``g`` occupies rows ``starts[g]:starts[g+1]``.
        self.starts: tuple[int, ...] = tuple(starts)
        #: ``(n, 3)`` canonical bases, all groups concatenated.
        self.bases: np.ndarray = (
            np.concatenate(groups, axis=0)
            if groups
            else np.empty((0, 3), dtype=np.int64)
        )
        self._shape_rows: np.ndarray | None = None

    def __len__(self) -> int:
        return self.starts[-1]

    def groups(self) -> Iterator[tuple[Coord, slice, np.ndarray]]:
        """Yield ``(shape, row_slice, bases_view)`` per candidate shape."""
        for g, shape in enumerate(self.shapes):
            sl = slice(self.starts[g], self.starts[g + 1])
            yield shape, sl, self.bases[sl]

    def shape_of(self, i: int) -> Coord:
        """Shape of candidate row ``i``."""
        return self.shapes[bisect_right(self.starts, i) - 1]

    def shape_rows(self) -> np.ndarray:
        """``(n, 3)`` array: the shape of every candidate row (cached)."""
        rows = self._shape_rows
        if rows is None:
            rows = np.empty((len(self), 3), dtype=np.int64)
            for g, shape in enumerate(self.shapes):
                rows[self.starts[g] : self.starts[g + 1]] = shape
            self._shape_rows = rows
        return rows

    def partition(self, i: int) -> Partition:
        """Materialise candidate row ``i`` as a :class:`Partition`."""
        base = self.bases[i]
        return Partition(
            (int(base[0]), int(base[1]), int(base[2])), self.shape_of(i)
        )

    def partitions(self) -> list[Partition]:
        """Materialise every candidate (enumeration order)."""
        out: list[Partition] = []
        for shape, _, bases in self.groups():
            out.extend(
                Partition((int(bx), int(by), int(bz)), shape)
                for bx, by, bz in bases.tolist()
            )
        return out


class PlacementIndex:
    """Free-placement grids for every shape, for one occupancy state."""

    __slots__ = (
        "dims",
        "torus_version",
        "_shape_order",
        "_busy_integral",
        "_grids",
        "_totals",
        "_grid_integrals",
        "_mfp_size",
        "_nonempty_rows",
        "_scan_pos",
        "_probe_blocks",
        "_candidate_cache",
        "_scored_cache",
        "_batch_cache",
        "_batch_scored_cache",
    )

    def __init__(self, torus: Torus) -> None:
        self.dims: TorusDims = torus.dims
        self.torus_version = torus.version
        self._shape_order = all_shapes(torus.dims)  # decreasing volume
        self._busy_integral = wrap_pad_integral((torus.grid != FREE).astype(np.int64))
        # Lazy per-shape placement grids: a typical index build touches
        # only the handful of shapes the current queue asks about, so an
        # eager all-shapes batch (tried; ~4x slower end-to-end) loses to
        # 15 us-per-shape laziness.
        self._grids: dict[Coord, np.ndarray] = {}
        self._totals: dict[Coord, int] = {}
        self._grid_integrals: dict[Coord, np.ndarray] = {}
        self._mfp_size: int | None = None
        self._nonempty_rows: list[tuple[int, Coord, int, np.ndarray]] = []
        self._scan_pos = 0
        self._probe_blocks: dict[tuple[int, int], tuple] = {}
        self._candidate_cache: dict[int, list[Partition]] = {}
        self._scored_cache: dict[int, list[tuple[Partition, int]]] = {}
        self._batch_cache: dict[int, CandidateBatch] = {}
        self._batch_scored_cache: dict[int, tuple[CandidateBatch, np.ndarray]] = {}
        registry = obs_metrics.ACTIVE
        if registry is not None:
            registry.counter("index.builds").inc()

    # ------------------------------------------------------------------
    def _placements(self, shape: Coord) -> np.ndarray:
        """Boolean grid: True where a free placement of ``shape`` is based."""
        grid = self._grids.get(shape)
        if grid is None:
            grid = (
                window_sums_from_integral(
                    self._busy_integral, self.dims.as_tuple(), shape
                )
                == 0
            )
            self._grids[shape] = grid
            self._totals[shape] = int(np.count_nonzero(grid))
        return grid

    def _placement_integral(self, shape: Coord) -> np.ndarray:
        """Integral image over the placement grid (intersect counting)."""
        integral = self._grid_integrals.get(shape)
        if integral is None:
            integral = wrap_pad_integral(self._placements(shape).astype(np.int64))
            self._grid_integrals[shape] = integral
        return integral

    def count_placements(self, shape: Coord) -> int:
        """Number of free placements of ``shape`` (bases, not node sets)."""
        self._placements(shape)
        return self._totals[shape]

    # ------------------------------------------------------------------
    def candidate_batch(self, size: int) -> CandidateBatch:
        """All free partitions of exactly ``size`` nodes as arrays.

        Same enumeration order and canonical dedup as :meth:`candidates`
        (which materialises its list from this batch), but the bases stay
        struct-of-arrays so the batch scoring kernels can gather them
        without touching Python objects.
        """
        batch = self._batch_cache.get(size)
        if batch is not None:
            return batch
        dims = self.dims
        dims_shape = dims.as_tuple()
        shapes: list[Coord] = []
        groups: list[np.ndarray] = []
        for shape in shapes_for_size(size, dims):
            if self.count_placements(shape) == 0:
                continue
            grid = self._placements(shape)
            bases = np.stack(
                np.unravel_index(np.flatnonzero(grid), dims_shape), axis=1
            ).astype(np.int64, copy=False)
            if shape[0] == dims.x or shape[1] == dims.y or shape[2] == dims.z:
                # Only full-span shapes can alias node sets across bases:
                # pin spanned axes to 0 and keep each node set's first
                # occurrence (flatnonzero order is row-major, matching
                # the scalar scan).
                for axis in range(3):
                    if shape[axis] == dims_shape[axis]:
                        bases[:, axis] = 0
                keys = (bases[:, 0] * dims.y + bases[:, 1]) * dims.z + bases[:, 2]
                _, first = np.unique(keys, return_index=True)
                bases = bases[np.sort(first)]
            shapes.append(shape)
            groups.append(bases)
        batch = CandidateBatch(dims, tuple(shapes), groups)
        self._batch_cache[size] = batch
        return batch

    def candidates(self, size: int) -> list[Partition]:
        """All free partitions of exactly ``size`` nodes, deduplicated.

        Bases along fully-spanned axes are canonicalised to 0 so each node
        set appears once.  Materialised from :meth:`candidate_batch`, so
        list and batch enumeration can never drift apart.
        """
        cached = self._candidate_cache.get(size)
        if cached is None:
            cached = self.candidate_batch(size).partitions()
            self._candidate_cache[size] = cached
        return cached

    def scored_candidates(self, size: int) -> list[tuple[Partition, int]]:
        """Candidates paired with their ``L_MFP`` via the *scalar* path.

        This is the cross-validation oracle for
        :meth:`batch_mfp_losses`: every loss comes from an independent
        per-candidate :meth:`mfp_loss` walk.  Cached per size — several
        same-size jobs scanned in one backfill pass share this work.
        """
        cached = self._scored_cache.get(size)
        if cached is None:
            cached = [(p, self.mfp_loss(p)) for p in self.candidates(size)]
            self._scored_cache[size] = cached
        return cached

    def batch_mfp_losses(self, size: int) -> tuple[CandidateBatch, np.ndarray]:
        """Every candidate of ``size`` with its ``L_MFP``, vectorised.

        Returns ``(batch, losses)`` where ``losses[i]`` is the MFP
        shrinkage caused by allocating ``batch.partition(i)`` — aligned
        with, and bitwise equal to, ``scored_candidates(size)``.  Cached
        per size, like the scalar form.
        """
        cached = self._batch_scored_cache.get(size)
        if cached is None:
            batch = self.candidate_batch(size)
            # One resolve for the whole size: candidates of every shape
            # share the probe blocks, so mixing shapes costs nothing and
            # keeps the per-block gathers large.
            losses = self.mfp_size() - self._batch_excluding(
                batch.bases, batch.shape_rows()
            )
            cached = (batch, losses)
            self._batch_scored_cache[size] = cached
        return cached

    def has_candidate(self, size: int) -> bool:
        """True when at least one free partition of ``size`` exists."""
        for shape in shapes_for_size(size, self.dims):
            if self.count_placements(shape) > 0:
                return True
        return False

    # ------------------------------------------------------------------
    def mfp_size(self) -> int:
        """Size of the maximal free partition (0 on a full machine)."""
        if self._mfp_size is None:
            self._mfp_size = 0
            for shape in self._shape_order:
                if self.count_placements(shape) > 0:
                    self._mfp_size = shape[0] * shape[1] * shape[2]
                    break
        return self._mfp_size

    def mfp_partition(self) -> Partition | None:
        """One witness maximal free partition, or None on a full machine."""
        for shape in self._shape_order:
            if self.count_placements(shape) > 0:
                grid = self._placements(shape)
                # First-hit lookup: argmax short-circuits at the first
                # True base — no (n, 3) argwhere materialisation.
                base = np.unravel_index(int(grid.argmax()), grid.shape)
                return Partition(
                    (int(base[0]), int(base[1]), int(base[2])), shape
                )
        return None

    # ------------------------------------------------------------------
    def _intersecting_base_count(self, shape: Coord, partition: Partition) -> int:
        """Number of free placements of ``shape`` whose box intersects
        ``partition`` — one box-sum lookup on the placement-grid integral
        over the :func:`intersect_window` box.
        """
        base, extents = intersect_window(
            self.dims, partition.base, partition.shape, shape
        )
        return box_sum_at(self._placement_integral(shape), base, extents)

    def _ensure_rows(self, count: int) -> list[tuple[int, Coord, int, np.ndarray]]:
        """Materialise at least ``count`` non-empty probe rows.

        Rows are ``(volume, shape, total, placement_integral)`` in
        decreasing-volume order.  They memoise as the all-shapes scan
        first reaches them, and the scan resumes where earlier calls
        stopped — every ``mfp_excluding`` query walks this list from the
        top, and re-deriving the prefix per query (a dict lookup per
        shape, including the many empty shapes between non-empty rows)
        was the single hottest line of the scalar scoring path.
        Returns the full row list, which may stay shorter than ``count``
        once the scan is exhausted.
        """
        rows = self._nonempty_rows
        order = self._shape_order
        while len(rows) < count and self._scan_pos < len(order):
            shape = order[self._scan_pos]
            self._scan_pos += 1
            if self.count_placements(shape) > 0:
                rows.append(
                    (
                        shape[0] * shape[1] * shape[2],
                        shape,
                        self._totals[shape],
                        self._placement_integral(shape),
                    )
                )
        return rows

    def _iter_nonempty_shapes(self):
        """Yield the probe rows of :meth:`_ensure_rows` lazily."""
        i = 0
        while True:
            rows = self._ensure_rows(i + 1)
            if i >= len(rows):
                return
            yield rows[i]
            i += 1

    def _probe_block(self, k0: int, k1: int) -> tuple:
        """Probe rows ``[k0, k1)`` as stacked arrays for one gather.

        Returns ``(volumes, t_shapes, totals, integrals)`` with the
        integral images stacked along a leading axis, ready for
        :func:`~repro.geometry.torus.stacked_box_sums`.  Cached per
        index — block boundaries are deterministic, so every size's
        scoring pass reuses the same stacks.
        """
        key = (k0, k1)
        block = self._probe_blocks.get(key)
        if block is None:
            rows = self._nonempty_rows[k0:k1]
            block = (
                np.array([r[0] for r in rows], dtype=np.int64),
                np.array([r[1] for r in rows], dtype=np.int64),
                np.array([r[2] for r in rows], dtype=np.int64),
                np.stack([r[3] for r in rows]),
            )
            self._probe_blocks[key] = block
        return block

    def mfp_excluding(self, partition: Partition) -> int:
        """MFP size after hypothetically allocating ``partition``.

        Equivalent to allocating, rebuilding the index and asking
        :meth:`mfp_size`, but costs scalar lookups instead of a rebuild.
        """
        return self._mfp_excluding_at(partition.base, partition.shape)

    def _mfp_excluding_at(self, p_base: Coord, p_shape: Coord) -> int:
        """Scalar :meth:`mfp_excluding` walk on raw base/shape tuples."""
        dims = self.dims
        for volume, shape, total, integral in self._iter_nonempty_shapes():
            base, extents = intersect_window(dims, p_base, p_shape, shape)
            if total > box_sum_at(integral, base, extents):
                return volume
        return 0

    #: First probe-block size; blocks then double.  Most candidates
    #: resolve within the first few probe shapes, so the first block is
    #: small; stragglers pay one geometrically larger gather each.
    _PROBE_BLOCK = 4
    #: Below this many candidates the batch kernel delegates to the
    #: scalar walk — a stacked gather's fixed dispatch cost only pays
    #: for itself on bigger groups.
    _SCALAR_CUTOVER = 24

    def batch_mfp_excluding(self, bases: np.ndarray, shape: Coord) -> np.ndarray:
        """:meth:`mfp_excluding` for many same-shape candidates at once.

        ``bases`` is an ``(n, 3)`` integer array of candidate bases (any
        integers; wrapped into the primary cell here).
        """
        shape_arr = np.array(shape, dtype=np.int64)
        return self._batch_excluding(
            bases, np.broadcast_to(shape_arr, (bases.shape[0], 3))
        )

    def _batch_excluding(
        self, bases: np.ndarray, cand_shapes: np.ndarray
    ) -> np.ndarray:
        """``mfp_excluding`` for ``n`` candidates, each with its own shape.

        Probe shapes are scanned in decreasing-volume order in
        geometrically growing blocks: each block resolves every
        still-unresolved candidate against all its probe shapes in one
        :func:`~repro.geometry.torus.stacked_box_sums` gather, and a
        candidate's answer is the *first* surviving row — the aggregate
        of the scalar path's per-candidate early exit, at eight fancy
        lookups per block instead of eight per probe shape.  Small
        candidate sets short-circuit to the scalar walk, which beats the
        gathers' fixed numpy dispatch cost there; both branches return
        identical values (the batch property suite covers both).
        """
        n = bases.shape[0]
        excl = np.zeros(n, dtype=np.int64)
        if n == 0:
            return excl
        dims = self.dims
        dims_arr = np.array(dims.as_tuple(), dtype=np.int64)
        if n < self._SCALAR_CUTOVER:
            wrapped = (bases % dims_arr).tolist()
            shapes = cand_shapes.tolist()
            for j, (base, shape) in enumerate(zip(wrapped, shapes)):
                excl[j] = self._mfp_excluding_at(tuple(base), tuple(shape))
            return excl
        # Only unresolved candidates stay in the gather: most resolve in
        # the first block, so the per-block work shrinks fast.
        active = np.arange(n)
        act_bases = bases % dims_arr
        act_shapes = cand_shapes
        k0, span = 0, self._PROBE_BLOCK
        while active.size:
            k1 = min(len(self._ensure_rows(k0 + span)), k0 + span)
            if k1 <= k0:
                break  # probes exhausted: leftovers drop the MFP to 0
            volumes, t_shapes, totals, integrals = self._probe_block(k0, k1)
            # The modular-interval boxes of ``intersect_window``, all
            # (probe shape, candidate) pairs at once, anchored at the
            # origin so one offset row serves every candidate base.
            origin = (1 - t_shapes) % dims_arr                      # (k, 3)
            extents = np.minimum(                                   # (k, n, 3)
                dims_arr, act_shapes[None, :, :] + t_shapes[:, None, :] - 1
            )
            x = (act_bases[None, :, 0] + origin[:, 0:1]) % dims_arr[0]
            y = (act_bases[None, :, 1] + origin[:, 1:2]) % dims_arr[1]
            z = (act_bases[None, :, 2] + origin[:, 2:3]) % dims_arr[2]
            counts = stacked_box_sums(integrals, x, y, z, extents)
            survive = counts < totals[:, None]                      # (k, n)
            resolved = survive.any(axis=0)
            if resolved.any():
                # argmax finds the first surviving (largest-volume) row.
                first = np.argmax(survive, axis=0)
                excl[active[resolved]] = volumes[first[resolved]]
                keep = ~resolved
                active = active[keep]
                act_bases = act_bases[keep]
                act_shapes = act_shapes[keep]
            k0, span = k1, span * 2
        return excl

    def mfp_loss(self, partition: Partition) -> int:
        """``L_MFP``: MFP shrinkage caused by allocating ``partition``."""
        return self.mfp_size() - self.mfp_excluding(partition)


#: Journal length beyond which replaying patches loses to one fresh
#: incremental build (a build is ~one patch per corner term).
_MAX_PATCH_ENTRIES = 8


class IndexCache:
    """``torus.version``-checked reuse of one :class:`PlacementIndex`.

    The scheduler's inner loops (dispatch scan, backfill probes,
    migration planning) repeatedly need "the index for the current
    machine state".  Building one per loop iteration discards every lazy
    placement grid and score cache the previous iteration warmed; this
    handle rebuilds only when the torus actually mutated.

    With ``incremental=True`` the cache holds an
    :class:`~repro.allocation.incremental.IncrementalPlacementIndex`
    and, when the torus version moved, asks the torus journal for the
    mutations in between: a short journal slice is *replayed* onto the
    existing index (O(box) patching) instead of rebuilding from scratch.
    A missing or unreplayable journal (whole-grid mutation, entries aged
    out, version from the future) falls back to a fresh build — the
    retained oracle path.  Observability counters
    ``index.incremental.hit`` / ``repair`` / ``fallback`` record which
    path each lookup took.
    """

    __slots__ = ("torus", "incremental", "_index")

    def __init__(self, torus: Torus, incremental: bool = False) -> None:
        self.torus = torus
        self.incremental = incremental
        self._index: PlacementIndex | None = None

    def invalidate(self) -> None:
        """Drop the cached index; the next :meth:`get` builds fresh."""
        self._index = None

    def get(self) -> PlacementIndex:
        """The index for the torus's current state (rebuilt on demand)."""
        index = self._index
        torus = self.torus
        if index is not None and index.torus_version == torus.version:
            if self.incremental:
                registry = obs_metrics.ACTIVE
                if registry is not None:
                    registry.counter("index.incremental.hit").inc()
            return index
        if not self.incremental:
            index = self._index = PlacementIndex(torus)
            return index
        from repro.allocation.incremental import IncrementalPlacementIndex

        registry = obs_metrics.ACTIVE
        if index is not None:
            entries = torus.journal_since(index.torus_version)
            if entries is not None and len(entries) <= _MAX_PATCH_ENTRIES:
                index.apply(entries, torus.version)  # type: ignore[attr-defined]
                if registry is not None:
                    registry.counter("index.incremental.repair").inc()
                return index
            if registry is not None:
                registry.counter("index.incremental.fallback").inc()
        index = self._index = IncrementalPlacementIndex(torus)
        return index


# ----------------------------------------------------------------------
# convenience functions
# ----------------------------------------------------------------------

def mfp_size(torus: Torus) -> int:
    """Size of the maximal free partition of ``torus``."""
    return PlacementIndex(torus).mfp_size()


def mfp_partition(torus: Torus) -> Partition | None:
    """One witness maximal free partition of ``torus``."""
    return PlacementIndex(torus).mfp_partition()
