"""Name-based construction of partition finders (CLI / config plumbing)."""

from __future__ import annotations

from typing import Callable

from repro.errors import AllocationError
from repro.allocation.base import PartitionFinder
from repro.allocation.naive import NaiveFinder
from repro.allocation.pop import POPFinder
from repro.allocation.fast import FastFinder

_FINDERS: dict[str, Callable[[], PartitionFinder]] = {
    "naive": NaiveFinder,
    "pop": POPFinder,
    "fast": lambda: FastFinder(vectorized=True),
    "fast-scan": lambda: FastFinder(vectorized=False),
}


def available_finders() -> tuple[str, ...]:
    """Registered finder names."""
    return tuple(_FINDERS)


def get_finder(name: str) -> PartitionFinder:
    """Construct a finder by registry name.

    Raises :class:`AllocationError` for unknown names, listing the valid
    ones in the message.
    """
    try:
        factory = _FINDERS[name]
    except KeyError:
        raise AllocationError(
            f"unknown finder {name!r}; available: {', '.join(_FINDERS)}"
        ) from None
    return factory()
