"""Incrementally maintained :class:`~repro.allocation.mfp.PlacementIndex`.

The base index derives everything lazily from one wrap-padded busy
integral, rebuilt from scratch on every torus mutation.  At BG/L
scheduler scale (a 4x4x8 supernode torus, 128 shapes) the cost of a
rebuild is not the arithmetic — it is the *number of numpy dispatches*
the lazy per-shape scan issues while re-deriving placement grids and
probe-row integrals the previous state had already materialised.

:class:`IncrementalPlacementIndex` instead keeps the all-shapes
busy-window-sum tensor ``sums[s, x, y, z]`` — the number of busy nodes
inside the window of shape ``s`` based at ``(x, y, z)`` — as its core
state and patches it in O(1) numpy ops per box mutation:

* allocating or freeing a box ``B`` changes ``sums`` by
  ``±overlap(B, window)``, and the overlap volume of two wrapped boxes
  is *separable* — the product of three per-axis modular interval
  overlaps.  Those per-axis overlap rows depend only on the torus
  dimensions, so they are precomputed once per dims
  (:func:`_tables`) and a mutation costs three table lookups and one
  outer-product accumulate;
* the free-placement grids of every shape are then just
  ``sums == 0``, and per-shape totals one vectorised count — no lazy
  per-shape scan ever runs;
* the wrap-padded busy integral is patched with the same separability
  trick (per-axis padded occupancy cumsums), keeping it bitwise equal
  to a fresh :func:`~repro.geometry.torus.wrap_pad_integral`;
* probe-row placement integrals are rebuilt lazily per state, but for
  a whole block of shapes in one stacked gather + three cumsums.

All patches are exact integer arithmetic, so every derived field is
**bitwise equal** to a from-scratch rebuild — the from-scratch
:class:`~repro.allocation.mfp.PlacementIndex` is retained as the
cross-validation oracle (``tests/allocation/test_incremental_index.py``
asserts field-for-field equality after every mutation, mirroring the
batch-vs-scalar contract of DESIGN.md §5.11/§5.12).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.allocation.mfp import CandidateBatch, PlacementIndex
from repro.geometry.coords import Coord
from repro.geometry.partition import Partition
from repro.geometry.shapes import all_shapes, shapes_for_size
from repro.geometry.torus import Torus


class _DimsTables:
    """Static per-dims lookup tables shared by every incremental index.

    Everything here depends only on the torus dimensions (and the fixed
    decreasing-volume shape order of
    :func:`~repro.geometry.shapes.all_shapes`), never on occupancy.
    """

    __slots__ = (
        "dims_tuple",
        "shapes",
        "row_of",
        "ext",
        "vol",
        "fullspan",
        "overlap",
        "zmask",
        "zall",
        "keyw",
        "bitw",
        "bitoff",
        "ones",
        "oxy",
        "fxy",
        "fvec",
        "pads",
        "coords",
        "flat8",
        "signs",
        "_size_rows",
        "_canon",
    )

    def __init__(self, dims_tuple: Coord) -> None:
        self.dims_tuple = dims_tuple
        from repro.geometry.coords import TorusDims

        dims = TorusDims(*dims_tuple)
        shapes = all_shapes(dims)
        n_shapes = len(shapes)
        self.shapes = shapes
        self.row_of = {shape: row for row, shape in enumerate(shapes)}
        self.ext = np.array(shapes, dtype=np.int64)            # (S, 3)
        self.vol = self.ext.prod(axis=1)                        # (S,)
        self.fullspan = (
            self.ext == np.array(dims_tuple, dtype=np.int64)[None, :]
        ).any(axis=1)                                           # (S,)
        # Per-axis modular interval overlaps: overlap[axis][a-1, b] is
        # the (S, P) table of |[q, q+t_s) ∩ [b, b+a)| on the circle of
        # period P, for every shape row s and window base q.  A box
        # mutation's effect on ``sums`` is the outer product of its
        # three axis rows.
        self.overlap = tuple(
            self._axis_overlap(dims_tuple[axis], self.ext[:, axis])
            for axis in range(3)
        )
        # Bit-packed zero-overlap masks: bit ``q`` of ``zmask[axis][a-1,
        # b, s]`` is set iff ``overlap[axis][a-1, b, s, q] == 0``.  Axis
        # reductions over a tiny trailing dimension are pathologically
        # slow in numpy relative to 2-D integer ops, so the disjointness
        # test in ``_batch_excluding`` is phrased as bitmask ANDs.
        self.bitw = tuple(
            (1 << np.arange(p)).astype(np.int64) for p in dims_tuple
        )
        self.zmask = tuple(
            ((ov == 0) * w[None, None, None, :]).sum(axis=-1)
            for ov, w in zip(self.overlap, self.bitw)
        )
        # One fused table for the three axes: row ``key(c)`` holds, per
        # probe shape, all three zero-overlap masks of candidate ``c``
        # packed into disjoint bit ranges (z low, then y, then x), so a
        # resolve costs one gather instead of three.  Only built when
        # the packed word fits an int64 and the table stays small; the
        # per-axis ``zmask`` path remains as fallback.
        X, Y, Z = dims_tuple
        self.bitoff = (Z + Y, Z, 0)                              # x, y, z
        n_keys = (X * X) * (Y * Y) * (Z * Z)
        if X + Y + Z <= 16 and n_keys * n_shapes <= 1 << 22:
            zx = self.zmask[0].reshape(X * X, 1, 1, n_shapes)
            zy = self.zmask[1].reshape(1, Y * Y, 1, n_shapes)
            zz = self.zmask[2].reshape(1, 1, Z * Z, n_shapes)
            self.zall = (
                (zx << self.bitoff[0]) | (zy << self.bitoff[1]) | zz
            ).reshape(n_keys, n_shapes).astype(np.uint16)
            # key(c) = kx * Y²Z² + ky * Z² + kz with k_axis = a*P + b:
            # two (n, 3) @ (3,) products against these stride vectors.
            self.keyw = (
                np.array(
                    [X * Y * Y * Z * Z, Y * Z * Z, Z], dtype=np.int64
                ),
                np.array([Y * Y * Z * Z, Z * Z, 1], dtype=np.int64),
            )
        else:
            self.zall = None
            self.keyw = None
        # uint8 contraction vectors for `_refresh`: integer matmuls
        # avoid this numpy build's slow small-axis reductions, and the
        # uint8 kernel skips the int64 upcast copy of the bool operand.
        # Counts are bounded by the machine volume, so uint8 is exact
        # whenever the volume fits; bigger machines get int64.
        cnt_dtype = np.uint8 if int(self.vol[0]) <= 255 else np.int64
        self.ones = (
            np.ones(X, cnt_dtype),
            np.ones(Y, cnt_dtype),
            np.ones(Z, cnt_dtype),
            np.ones(Y * Z, cnt_dtype),
        )
        # Per-axis padded-occupancy prefix sums: fvec[axis][a-1, b] is
        # the (2P,) cumulative count of box positions (with their
        # wrap-pad copies at pos+P for pos <= P-2) below each padded
        # index — the separable factor of a busy-integral patch.
        self.fvec = tuple(
            self._axis_fvec(dims_tuple[axis]) for axis in range(3)
        )
        # Pairwise x*y product tables, one row per (kx, ky) key: an
        # `apply` patch then costs one multiply+accumulate instead of
        # two multiplies (the z factor is applied on the fly).
        if (X * X) * (Y * Y) * n_shapes * X * Y <= 1 << 23:
            self.oxy = (
                self.overlap[0].reshape(X * X, 1, n_shapes, X, 1)
                * self.overlap[1].reshape(1, Y * Y, n_shapes, 1, Y)
            ).reshape((X * X) * (Y * Y), n_shapes, X, Y)
            self.fxy = (
                self.fvec[0].reshape(X * X, 1, 2 * X, 1)
                * self.fvec[1].reshape(1, Y * Y, 1, 2 * Y)
            ).reshape((X * X) * (Y * Y), 2 * X, 2 * Y)
        else:
            self.oxy = None
            self.fxy = None
        # Wrap-pad gather indices (arange(2P-1) % P per axis).
        self.pads = tuple(
            np.arange(2 * p - 1) % p for p in dims_tuple
        )
        # Row-major base coordinates: coords[flat_index] == unravel.
        x, y, z = np.unravel_index(
            np.arange(int(np.prod(dims_tuple))), dims_tuple
        )
        self.coords = np.stack([x, y, z], axis=1).astype(np.int64)
        # Eight-corner gather for a full sums rebuild from the busy
        # integral: flat8[t, s, x, y, z] indexes the raveled padded
        # integral; signs[t] is +1 when the corner offsets an odd number
        # of axes by the shape extent.
        X, Y, Z = dims_tuple
        arx = np.arange(X, dtype=np.int64)
        ary = np.arange(Y, dtype=np.int64)
        arz = np.arange(Z, dtype=np.int64)
        terms, signs = [], []
        for bx in (0, 1):
            for by in (0, 1):
                for bz in (0, 1):
                    ix = arx[None, :] + bx * self.ext[:, 0:1]   # (S, X)
                    iy = ary[None, :] + by * self.ext[:, 1:2]
                    iz = arz[None, :] + bz * self.ext[:, 2:3]
                    idx = (
                        ix[:, :, None, None] * (2 * Y)
                        + iy[:, None, :, None]
                    ) * (2 * Z) + iz[:, None, None, :]
                    terms.append(np.broadcast_to(idx, (n_shapes, X, Y, Z)))
                    signs.append(1 if (bx + by + bz) % 2 == 1 else -1)
        self.flat8 = np.ascontiguousarray(np.stack(terms))
        self.signs = tuple(signs)
        self._size_rows: dict[int, np.ndarray] = {}
        self._canon: dict[int, tuple[tuple, np.ndarray]] = {}

    @staticmethod
    def _axis_overlap(period: int, extents: np.ndarray) -> np.ndarray:
        """``(P, P, S, P)`` table: ``[a-1, b, s, q]`` is the modular
        interval overlap ``|[q, q+extents[s]) ∩ [b, b+a)| (mod P)``."""
        p = np.arange(period)
        # member[pos, q, t-1]: is position ``pos`` inside [q, q+t)?
        member = (
            ((p[:, None] - p[None, :]) % period)[:, :, None]
            < np.arange(1, period + 1)[None, None, :]
        ).astype(np.int32)
        t_idx = extents - 1                                      # (S,)
        # int32 throughout: window sums are bounded by the machine
        # volume, and the narrower dtype halves patch bandwidth.
        out = np.empty(
            (period, period, extents.shape[0], period), dtype=np.int32
        )
        for a in range(1, period + 1):
            for b in range(period):
                pos = (b + np.arange(a)) % period
                acc = member[pos].sum(axis=0)                    # (q, t)
                out[a - 1, b] = acc[:, t_idx].T                  # (S, q)
        return out

    @staticmethod
    def _axis_fvec(period: int) -> np.ndarray:
        """``(P, P, 2P)`` table of padded-occupancy prefix sums."""
        out = np.zeros((period, period, 2 * period), dtype=np.int64)
        for a in range(1, period + 1):
            for b in range(period):
                occ = np.zeros(2 * period, dtype=np.int64)
                pos = (b + np.arange(a)) % period
                np.add.at(occ, pos, 1)
                np.add.at(occ, pos[pos <= period - 2] + period, 1)
                out[a - 1, b, 1:] = occ[: 2 * period - 1].cumsum()
        return out

    def canon(self, row: int) -> tuple[tuple, np.ndarray]:
        """Full-span canonicalisation helpers for shape ``row``.

        Returns ``(slicer, coords)``: indexing a free grid with
        ``slicer`` pins every fully-spanned axis at 0 (the free grid is
        constant along such axes — the window covers the whole axis, so
        every base sees the same occupancy), and ``coords[i]`` is the
        canonical base of the ``i``-th surviving cell in row-major
        order.  Equivalent to, and much cheaper than, zeroing the
        spanned axes and first-occurrence dedup.
        """
        out = self._canon.get(row)
        if out is None:
            shape = self.shapes[row]
            full = [shape[a] == self.dims_tuple[a] for a in range(3)]
            slicer = tuple(0 if f else slice(None) for f in full)
            axes = [
                np.arange(p) if not f else np.zeros(1, dtype=np.int64)
                for f, p in zip(full, self.dims_tuple)
            ]
            gx, gy, gz = np.meshgrid(*axes, indexing="ij")
            coords = np.stack(
                [gx.ravel(), gy.ravel(), gz.ravel()], axis=1
            ).astype(np.int64)
            out = (slicer, coords)
            self._canon[row] = out
        return out

    def size_rows(self, size: int) -> np.ndarray:
        """Shape rows of every shape with volume ``size`` that fits,
        in :func:`~repro.geometry.shapes.shapes_for_size` order."""
        rows = self._size_rows.get(size)
        if rows is None:
            from repro.geometry.coords import TorusDims

            dims = TorusDims(*self.dims_tuple)
            rows = np.array(
                [self.row_of[s] for s in shapes_for_size(size, dims)],
                dtype=np.intp,
            )
            self._size_rows[size] = rows
        return rows


@lru_cache(maxsize=8)
def _tables(dims_tuple: Coord) -> _DimsTables:
    return _DimsTables(dims_tuple)


class IncrementalPlacementIndex(PlacementIndex):
    """A :class:`PlacementIndex` that can patch itself across mutations.

    Construction is a full (exact) build; :meth:`apply` replays a torus
    journal slice — O(1) numpy dispatches per box — and invalidates the
    per-state caches.  Every query override returns values bitwise equal
    to the inherited lazy path; the batch/scalar scoring kernels, probe
    blocks and candidate enumeration are inherited unchanged and consume
    the patched state through the same ``_placements`` /
    ``count_placements`` / ``_ensure_rows`` surface.
    """

    __slots__ = (
        "_tables",
        "_sums",
        "_free",
        "_tot",
        "_ne_idx",
        "_fmask",
        "_fall",
    )

    def __init__(self, torus: Torus) -> None:
        super().__init__(torus)
        t = _tables(self.dims.as_tuple())
        self._tables = t
        raveled = self._busy_integral.ravel()
        sums: np.ndarray | None = None
        for sign, idx in zip(t.signs, t.flat8):
            term = raveled.take(idx)
            if sums is None:
                sums = term if sign > 0 else -term
            elif sign > 0:
                sums += term
            else:
                sums -= term
        assert sums is not None
        self._sums = sums.astype(np.int32)                       # (S,X,Y,Z)
        self._refresh()

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        t = self._tables
        X, Y, Z = t.dims_tuple
        S = len(t.shapes)
        free = self._sums == 0
        self._free = free
        # Every reduction below is a matmul: this numpy build's
        # reductions over small trailing axes cost an order of magnitude
        # more than an equivalent (tiny) matrix product.  The uint8
        # view of the bool grid keeps the kernel integer-exact (counts
        # are volume-bounded) without an upcast copy.
        fr = free.view(np.uint8).reshape(S, X, Y * Z)
        cx = fr @ t.ones[3]                                        # (S, X)
        self._tot = (cx @ t.ones[0]).astype(np.int64)              # (S,)
        self._ne_idx = np.flatnonzero(self._tot)
        cyz = np.matmul(t.ones[0], fr)                             # (S, YZ)
        cy = cyz.reshape(S, Y, Z) @ t.ones[2]                      # (S, Y)
        cz = np.matmul(t.ones[1], cyz.reshape(S, Y, Z))            # (S, Z)
        # Bit-packed per-axis projections of the free grids: bit ``v``
        # of ``_fmask[axis][s]`` is set iff some free placement of shape
        # ``s`` has axis coordinate ``v`` — the whole state
        # :meth:`_batch_excluding` needs.  ``_fall`` fuses all three
        # into the ``zall`` bit layout.
        fx = (cx > 0) @ t.bitw[0]                                  # (S,)
        fy = (cy > 0) @ t.bitw[1]
        fz = (cz > 0) @ t.bitw[2]
        self._fmask = (fx, fy, fz)
        self._fall = (
            (fx << t.bitoff[0]) | (fy << t.bitoff[1]) | fz
        ).astype(np.uint16)
        self._scan_pos = len(self._shape_order)

    def apply(
        self, entries: list[tuple[str, Coord, Coord]], target_version: int
    ) -> None:
        """Replay journal entries, then invalidate per-state caches.

        ``entries`` come from :meth:`Torus.journal_since`; after the
        call the index answers for ``target_version`` exactly as a fresh
        build would.
        """
        t = self._tables
        sums = self._sums
        busy = self._busy_integral
        X, Y, _ = t.dims_tuple
        for op, base, shape in entries:
            bx, by, bz = base
            ax, ay, az = shape
            oz = t.overlap[2][az - 1, bz]                        # (S, Z)
            fz = t.fvec[2][az - 1, bz]                           # (2Z,)
            if t.oxy is not None:
                kxy = ((ax - 1) * X + bx) * (Y * Y) + (ay - 1) * Y + by
                patch = t.oxy[kxy][:, :, :, None] * oz[:, None, None, :]
                busy_patch = t.fxy[kxy][:, :, None] * fz[None, None, :]
            else:
                ox = t.overlap[0][ax - 1, bx]                    # (S, X)
                oy = t.overlap[1][ay - 1, by]                    # (S, Y)
                patch = (ox[:, :, None] * oy[:, None, :])[:, :, :, None] \
                    * oz[:, None, None, :]
                fx = t.fvec[0][ax - 1, bx]                       # (2X,)
                fy = t.fvec[1][ay - 1, by]
                busy_patch = (fx[:, None] * fy[None, :])[:, :, None] \
                    * fz[None, None, :]
            if op == "alloc":
                np.add(sums, patch, out=sums)
                np.add(busy, busy_patch, out=busy)
            else:
                np.subtract(sums, patch, out=sums)
                np.subtract(busy, busy_patch, out=busy)
        self._refresh()
        self._grids.clear()
        self._totals.clear()
        self._grid_integrals.clear()
        self._mfp_size = None
        self._nonempty_rows = []
        self._probe_blocks.clear()
        self._candidate_cache.clear()
        self._scored_cache.clear()
        self._batch_cache.clear()
        self._batch_scored_cache.clear()
        self.torus_version = target_version

    # ------------------------------------------------------------------
    # query overrides (bitwise equal to the inherited lazy path)
    # ------------------------------------------------------------------
    def _placements(self, shape: Coord) -> np.ndarray:
        return self._free[self._tables.row_of[shape]]

    def count_placements(self, shape: Coord) -> int:
        return int(self._tot[self._tables.row_of[shape]])

    def _batch_excluding(
        self, bases: np.ndarray, cand_shapes: np.ndarray
    ) -> np.ndarray:
        """``mfp_excluding`` for ``n`` candidates via the overlap tables.

        A free placement of probe shape ``s`` at ``q`` survives
        candidate ``c`` iff the wrapped boxes are disjoint, i.e. the
        per-axis overlap is zero on *some* axis.  ``any(free & (zx |
        zy | zz))`` distributes over the OR into three per-axis tests
        against the cached bit-packed ``_fmask`` projections, so the
        whole resolve is a handful of 2-D integer dispatches on
        ``(n, S)`` arrays — no probe integrals, no blocks, no scalar
        walk.  The answer per candidate is the first surviving row in
        the decreasing-volume shape order, exactly the scalar walk's
        early exit (the differential suite asserts equality for both
        paths).
        """
        n = bases.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        t = self._tables
        X, Y, Z = t.dims_tuple
        dims_arr = np.array((X, Y, Z), dtype=np.int64)
        b = bases % dims_arr
        a = cand_shapes - 1
        if t.zall is not None:
            key = a @ t.keyw[0] + b @ t.keyw[1]                  # (n,)
            survive = (t.zall[key] & self._fall[None, :]) != 0   # (n, S)
        else:
            fx, fy, fz = self._fmask
            mx = t.zmask[0][a[:, 0], b[:, 0]]                    # (n, S)
            my = t.zmask[1][a[:, 1], b[:, 1]]
            mz = t.zmask[2][a[:, 2], b[:, 2]]
            survive = (
                (mx & fx[None, :]) | (my & fy[None, :]) | (mz & fz[None, :])
            ) != 0
        first = np.argmax(survive, axis=1)
        return np.where(survive.any(axis=1), t.vol[first], 0)

    def _stack_integrals(self, rows: np.ndarray) -> np.ndarray:
        """Wrap-pad integrals of the placement grids of ``rows``, built
        in one stacked gather + three cumsums; ``out[j]`` is bitwise
        equal to ``wrap_pad_integral(self._free[rows[j]].astype(int64))``.
        """
        px, py, pz = self._tables.pads
        X, Y, Z = self.dims.as_tuple()
        padded = self._free[
            np.asarray(rows)[:, None, None, None],
            px[None, :, None, None],
            py[None, None, :, None],
            pz[None, None, None, :],
        ].astype(np.int64)
        np.cumsum(padded, axis=1, out=padded)
        np.cumsum(padded, axis=2, out=padded)
        np.cumsum(padded, axis=3, out=padded)
        out = np.zeros((len(rows), 2 * X, 2 * Y, 2 * Z), dtype=np.int64)
        out[:, 1:, 1:, 1:] = padded
        return out

    def _placement_integral(self, shape: Coord) -> np.ndarray:
        integral = self._grid_integrals.get(shape)
        if integral is None:
            row = self._tables.row_of[shape]
            integral = self._stack_integrals(np.array([row]))[0]
            self._grid_integrals[shape] = integral
        return integral

    def _ensure_rows(self, count: int) -> list[tuple[int, Coord, int, np.ndarray]]:
        rows = self._nonempty_rows
        idx = self._ne_idx
        have = len(rows)
        hi = min(count, idx.size)
        if have < hi:
            # Grow geometrically: the scalar walk asks for rows one at a
            # time, and a stacked build's cost is dominated by its fixed
            # dispatch count, not the row count — over-materialising a
            # small chunk is much cheaper than one build per row.
            hi = min(idx.size, max(hi, 2 * have, self._PROBE_BLOCK))
            sel = idx[have:hi]
            integrals = self._stack_integrals(sel)
            t = self._tables
            tot = self._tot
            for j, r in enumerate(sel.tolist()):
                rows.append(
                    (int(t.vol[r]), t.shapes[r], int(tot[r]), integrals[j])
                )
        return rows

    def mfp_size(self) -> int:
        if self._mfp_size is None:
            idx = self._ne_idx
            self._mfp_size = int(self._tables.vol[idx[0]]) if idx.size else 0
        return self._mfp_size

    def mfp_partition(self) -> Partition | None:
        idx = self._ne_idx
        if idx.size == 0:
            return None
        row = int(idx[0])
        grid = self._free[row]
        base = np.unravel_index(int(grid.argmax()), grid.shape)
        return Partition(
            (int(base[0]), int(base[1]), int(base[2])), self._tables.shapes[row]
        )

    def has_candidate(self, size: int) -> bool:
        rows = self._tables.size_rows(size)
        return bool(self._tot[rows].any()) if rows.size else False

    def candidate_batch(self, size: int) -> CandidateBatch:
        # Same enumeration contract as the base implementation (shape
        # order of shapes_for_size, row-major bases, full-span axes
        # canonicalised to 0 with first-occurrence dedup) — but the
        # bases of every shape of the size come from one stacked
        # nonzero over the free grids instead of one scan per shape.
        batch = self._batch_cache.get(size)
        if batch is not None:
            return batch
        dims = self.dims
        t = self._tables
        rows = t.size_rows(size)
        rows = rows[self._tot[rows] > 0] if rows.size else rows
        plain = rows[~t.fullspan[rows]] if rows.size else rows
        if plain.size:
            flat = self._free[plain].reshape(plain.size, -1)
            bases_all = t.coords[np.nonzero(flat)[1]]
            bounds = np.cumsum(self._tot[plain]).tolist()
        else:
            bases_all, bounds = None, []
        shapes: list[Coord] = []
        groups: list[np.ndarray] = []
        k = lo = 0
        for row in rows.tolist():
            if t.fullspan[row]:
                # The free grid is constant along fully-spanned axes, so
                # first-occurrence dedup of canonicalised bases reduces
                # to slicing those axes at 0 (see _DimsTables.canon).
                slicer, coords = t.canon(row)
                groups.append(
                    coords[np.flatnonzero(self._free[row][slicer])]
                )
            else:
                hi = bounds[k]
                groups.append(bases_all[lo:hi])
                lo, k = hi, k + 1
            shapes.append(t.shapes[row])
        batch = CandidateBatch(dims, tuple(shapes), groups)
        self._batch_cache[size] = batch
        return batch
