"""Common interface for free-partition finders."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import GeometryError
from repro.geometry.coords import Coord
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus


def partitions_from_bases(bases: np.ndarray, shape: Coord) -> list[Partition]:
    """Materialise ``np.argwhere``-style base rows into partitions.

    Shared by the vectorised finders; rows arrive in row-major (x, y, z)
    order from ``argwhere``, which is the enumeration order the finder
    contract promises.
    """
    return [
        Partition((int(bx), int(by), int(bz)), shape) for bx, by, bz in bases
    ]


class PartitionFinder(abc.ABC):
    """Finds all free, contiguous, rectangular partitions of a given size.

    Implementations must return *every* free partition of exactly
    ``size`` nodes, as ``Partition`` objects whose bases lie inside the
    primary torus cell.  Duplicated node sets (shapes spanning a full
    axis) are permitted in the raw output; :meth:`find_free_unique`
    deduplicates canonically.

    Enumeration order is part of the contract (tie-breaking policies and
    cross-validation depend on it): shapes in
    :func:`~repro.geometry.shapes.shapes_for_size` order (divisor order —
    ascending first extent, then second), bases row-major ``(x, y, z)``
    within each shape.  Every shipped finder honours this, which is
    verified by :class:`repro.testing.CrossValidator`.
    """

    #: Short name used by the registry and CLI.
    name: str = "abstract"

    @abc.abstractmethod
    def find_free(self, torus: Torus, size: int) -> list[Partition]:
        """Return all free partitions of exactly ``size`` nodes."""

    def find_free_unique(self, torus: Torus, size: int) -> list[Partition]:
        """Like :meth:`find_free` but with one partition per node set.

        Canonicalises bases along fully-spanned axes and drops duplicates,
        preserving first-seen order.
        """
        seen: set[Partition] = set()
        out: list[Partition] = []
        for part in self.find_free(torus, size):
            canon = part.canonical(torus.dims)
            if canon not in seen:
                seen.add(canon)
                out.append(canon)
        return out

    def exists_free(self, torus: Torus, size: int) -> bool:
        """True when at least one free partition of ``size`` exists."""
        return bool(self.find_free(torus, size))

    @staticmethod
    def _check_size(torus: Torus, size: int) -> None:
        if size < 1:
            raise GeometryError(f"partition size must be positive, got {size}")
        if size > torus.dims.volume:
            raise GeometryError(
                f"partition size {size} exceeds machine {torus.dims.volume}"
            )
