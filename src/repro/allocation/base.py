"""Common interface for free-partition finders."""

from __future__ import annotations

import abc

from repro.errors import GeometryError
from repro.geometry.partition import Partition
from repro.geometry.torus import Torus


class PartitionFinder(abc.ABC):
    """Finds all free, contiguous, rectangular partitions of a given size.

    Implementations must return *every* free partition of exactly
    ``size`` nodes, as ``Partition`` objects whose bases lie inside the
    primary torus cell.  Duplicated node sets (shapes spanning a full
    axis) are permitted in the raw output; :meth:`find_free_unique`
    deduplicates canonically.
    """

    #: Short name used by the registry and CLI.
    name: str = "abstract"

    @abc.abstractmethod
    def find_free(self, torus: Torus, size: int) -> list[Partition]:
        """Return all free partitions of exactly ``size`` nodes."""

    def find_free_unique(self, torus: Torus, size: int) -> list[Partition]:
        """Like :meth:`find_free` but with one partition per node set.

        Canonicalises bases along fully-spanned axes and drops duplicates,
        preserving first-seen order.
        """
        seen: set[Partition] = set()
        out: list[Partition] = []
        for part in self.find_free(torus, size):
            canon = part.canonical(torus.dims)
            if canon not in seen:
                seen.add(canon)
                out.append(canon)
        return out

    def exists_free(self, torus: Torus, size: int) -> bool:
        """True when at least one free partition of ``size`` exists."""
        return bool(self.find_free(torus, size))

    @staticmethod
    def _check_size(torus: Torus, size: int) -> None:
        if size < 1:
            raise GeometryError(f"partition size must be positive, got {size}")
        if size > torus.dims.volume:
            raise GeometryError(
                f"partition size {size} exceeds machine {torus.dims.volume}"
            )
