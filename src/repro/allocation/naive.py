"""Exhaustive reference partition finder.

This is the strategy the paper's appendix describes as the naive
``O(M^9)``-class search: enumerate every base location and every box shape
that fits the torus, test each node of each candidate individually, and
keep those of the requested size.  It exists purely as a correctness
oracle for the faster finders and for asymptotic comparison benchmarks;
never use it inside the simulator loop.
"""

from __future__ import annotations

from repro.geometry.partition import Partition
from repro.geometry.torus import FREE, Torus
from repro.allocation.base import PartitionFinder


class NaiveFinder(PartitionFinder):
    """Pure-Python exhaustive search over all bases and shapes.

    The triple shape loop visits ``(a, b, c)`` in ascending lexicographic
    order, which coincides with :func:`shapes_for_size`'s divisor order —
    so the enumeration-order contract of :class:`PartitionFinder` holds
    here too, and :class:`repro.testing.CrossValidator` can compare
    ordered outputs across all finders.
    """

    name = "naive"

    def find_free(self, torus: Torus, size: int) -> list[Partition]:
        self._check_size(torus, size)
        dims = torus.dims
        grid = torus.grid
        out: list[Partition] = []
        for a in range(1, dims.x + 1):
            for b in range(1, dims.y + 1):
                for c in range(1, dims.z + 1):
                    if a * b * c != size:
                        continue
                    for bx in range(dims.x):
                        for by in range(dims.y):
                            for bz in range(dims.z):
                                if self._box_free(grid, dims, bx, by, bz, a, b, c):
                                    out.append(Partition((bx, by, bz), (a, b, c)))
        return out

    @staticmethod
    def _box_free(grid, dims, bx: int, by: int, bz: int, a: int, b: int, c: int) -> bool:
        for i in range(a):
            cx = (bx + i) % dims.x
            for j in range(b):
                cy = (by + j) % dims.y
                for k in range(c):
                    if grid[cx, cy, (bz + k) % dims.z] != FREE:
                        return False
        return True
