"""The paper's Appendix-9 partition finder.

The algorithm enumerates only the shapes whose volume equals the job size
(via divisor factorisation, ``f(s)^3``-bounded) and scans base locations
with early skipping past blocking nodes — ``O(M^3 · s^3 · f(s)^3)`` on an
empty torus versus POP's ``O(M^5)``.

Two interchangeable implementations are provided:

* ``FastFinder(vectorized=True)`` (default) replaces the base scan with a
  circular box-sum over the free mask; identical output, and on machines
  this small the NumPy kernel is the fastest of all finders.
* ``FastFinder(vectorized=False)`` is the paper-faithful scan: bases are
  visited in increasing ``(x, y, z)`` and, whenever a candidate box is
  blocked, the scan skips the z cursor just past the nearest blocking
  node instead of advancing by one.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.partition import Partition
from repro.geometry.shapes import shapes_for_size
from repro.geometry.torus import FREE, Torus, circular_window_sum
from repro.allocation.base import PartitionFinder, partitions_from_bases
from repro.obs import metrics as obs_metrics


class FastFinder(PartitionFinder):
    """Divisor-driven shape enumeration with skip-scan or box-sum bases."""

    name = "fast"

    def __init__(self, vectorized: bool = True) -> None:
        self.vectorized = vectorized

    def find_free(self, torus: Torus, size: int) -> list[Partition]:
        self._check_size(torus, size)
        registry = obs_metrics.ACTIVE
        if registry is None:
            if self.vectorized:
                return self._find_vectorized(torus, size)
            return self._find_scan(torus, size)
        with registry.timer("finder.fast.find_free"):
            found = (
                self._find_vectorized(torus, size)
                if self.vectorized
                else self._find_scan(torus, size)
            )
        registry.histogram("finder.fast.results").observe(len(found))
        return found

    # ------------------------------------------------------------------
    def _find_vectorized(self, torus: Torus, size: int) -> list[Partition]:
        dims = torus.dims
        busy = (torus.grid != FREE).astype(np.int64)
        out: list[Partition] = []
        for shape in shapes_for_size(size, dims):
            blocked = circular_window_sum(busy, shape)
            out.extend(partitions_from_bases(np.argwhere(blocked == 0), shape))
        return out

    # ------------------------------------------------------------------
    def _find_scan(self, torus: Torus, size: int) -> list[Partition]:
        dims = torus.dims
        grid = torus.grid
        out: list[Partition] = []
        for shape in shapes_for_size(size, dims):
            a, b, c = shape
            for bx in range(dims.x):
                for by in range(dims.y):
                    bz = 0
                    while bz < dims.z:
                        skip = self._first_block_offset(grid, dims, bx, by, bz, a, b, c)
                        if skip is None:
                            out.append(Partition((bx, by, bz), shape))
                            bz += 1
                        else:
                            # Any base in (bz, bz+skip] still covers the
                            # blocking node, so jump straight past it.
                            bz += skip + 1
        return out

    @staticmethod
    def _first_block_offset(grid, dims, bx, by, bz, a, b, c) -> int | None:
        """Smallest z-offset of a busy node in the box, or None if free."""
        best: int | None = None
        for i in range(a):
            cx = (bx + i) % dims.x
            for j in range(b):
                cy = (by + j) % dims.y
                for k in range(c):
                    if best is not None and k >= best:
                        break
                    if grid[cx, cy, (bz + k) % dims.z] != FREE:
                        best = k
                        break
        return best
