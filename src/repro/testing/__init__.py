"""Runtime invariant oracles and cross-validation for the simulator.

This subsystem exists so aggressive refactors stay safe: any test — or
any simulation run, via ``SimulationConfig(check_invariants=True)`` —
can attach independent re-derivations of the properties the paper's
headline claims rest on:

* :class:`InvariantChecker` — torus occupancy grid vs. allocation map
  (no overlap, node-count conservation, free-count consistency);
* :class:`EventOrderOracle` — batch timestamps monotone, within-batch
  ``FINISH < FAILURE < ARRIVAL`` ordering;
* :class:`CapacityOracle` — the unused-capacity integral vs. an
  independent step-function recomputation;
* :class:`CrossValidator` — the naive / POP / Appendix-9 fast finders
  must return identical canonical partition sets on any machine state;
* :class:`SimulationOracleHarness` — the bundle the simulator wires in.

:func:`random_torus` / :func:`corrupt_random_node` supply random and
deliberately broken machine states for property and negative tests.
"""

from repro.errors import (
    CrossValidationError,
    InvariantViolationError,
    OracleError,
)
from repro.testing.capacity import CapacityOracle
from repro.testing.crossval import CrossValidator, default_finders
from repro.testing.events import EventOrderOracle
from repro.testing.harness import SimulationOracleHarness
from repro.testing.invariants import InvariantChecker
from repro.testing.random_state import (
    assert_raises_oracle,
    corrupt_random_node,
    random_partition,
    random_torus,
)

__all__ = [
    "CapacityOracle",
    "CrossValidationError",
    "CrossValidator",
    "EventOrderOracle",
    "InvariantChecker",
    "InvariantViolationError",
    "OracleError",
    "SimulationOracleHarness",
    "assert_raises_oracle",
    "corrupt_random_node",
    "default_finders",
    "random_partition",
    "random_torus",
]
