"""Torus occupancy-grid invariant oracle.

:class:`InvariantChecker` re-derives the machine state from the
allocation map using a *different* mechanism than both the torus's
mutation path (``np.ix_`` fancy indexing) and :meth:`Torus.check_invariants`
(grid reconstruction): it works over linear node-index sets.  Three
independent implementations of the same bookkeeping make a silent
agreement-by-shared-bug much less likely.

Checked invariants:

* **No overlap** — the node-index sets of all allocated partitions are
  pairwise disjoint.
* **Node-count conservation** — ``free_count + Σ partition sizes`` equals
  the machine volume, and ``busy_count`` agrees.
* **Grid/map agreement** — every node of every allocated partition holds
  exactly its owner's job id in the grid, and every node outside all
  partitions is :data:`~repro.geometry.torus.FREE`.
* **Well-formedness** — partitions fit the machine and job ids are
  non-negative; the grid contains no ids missing from the map.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvariantViolationError
from repro.geometry.torus import FREE, Torus


class InvariantChecker:
    """Stateless validator for one :class:`~repro.geometry.torus.Torus`.

    Instances count how many checks they ran (``checks_run``) so test
    harnesses can assert the oracle was actually exercised.
    """

    __slots__ = ("checks_run",)

    def __init__(self) -> None:
        self.checks_run = 0

    def check(self, torus: Torus) -> None:
        """Validate ``torus``; raise :class:`InvariantViolationError` on
        the first inconsistency found."""
        self.checks_run += 1
        dims = torus.dims
        volume = dims.volume
        flat = torus.grid.ravel()
        if flat.size != volume:
            raise InvariantViolationError(
                f"grid has {flat.size} cells but dims say {volume}"
            )

        covered = np.zeros(volume, dtype=bool)
        allocated_total = 0
        for job_id, partition in torus.allocations():
            if job_id < 0:
                raise InvariantViolationError(f"negative job id {job_id} in map")
            partition.validate(dims)
            indices = partition.node_indices(dims)
            if indices.size != partition.size:
                raise InvariantViolationError(
                    f"job {job_id}: partition {partition} covers "
                    f"{indices.size} distinct nodes, expected {partition.size}"
                )
            if covered[indices].any():
                clash = int(indices[covered[indices]][0])
                raise InvariantViolationError(
                    f"job {job_id}: partition {partition} overlaps an "
                    f"earlier allocation at node {clash}"
                )
            covered[indices] = True
            allocated_total += partition.size
            owners = flat[indices]
            if (owners != job_id).any():
                bad = int(indices[owners != job_id][0])
                raise InvariantViolationError(
                    f"job {job_id}: grid node {bad} holds "
                    f"{int(flat[bad])} instead of the owning job id"
                )

        outside = flat[~covered]
        if (outside != FREE).any():
            stray = int(np.flatnonzero(~covered)[outside != FREE][0])
            raise InvariantViolationError(
                f"grid node {stray} holds job id {int(flat[stray])} "
                f"but no allocation covers it"
            )

        free = torus.free_count
        if free != volume - allocated_total:
            raise InvariantViolationError(
                f"free-count mismatch: free_count={free} but "
                f"volume - Σ sizes = {volume - allocated_total}"
            )
        if torus.busy_count != allocated_total:
            raise InvariantViolationError(
                f"busy-count mismatch: busy_count={torus.busy_count} but "
                f"Σ partition sizes = {allocated_total}"
            )
