"""Random torus states and deliberate corruption, for property tests.

:func:`random_torus` rejection-samples random rectangular allocations
onto a fresh machine — the workhorse generator behind the hypothesis
cross-validation suite.  :func:`corrupt_random_node` breaks a torus on
purpose (negative tests must prove the oracles actually *fire*).
"""

from __future__ import annotations

import numpy as np

from repro.errors import OracleError
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition
from repro.geometry.torus import FREE, Torus


def random_partition(dims: TorusDims, rng: np.random.Generator) -> Partition:
    """A uniformly random base and random fitting shape (may wrap)."""
    base = (
        int(rng.integers(0, dims.x)),
        int(rng.integers(0, dims.y)),
        int(rng.integers(0, dims.z)),
    )
    shape = (
        int(rng.integers(1, dims.x + 1)),
        int(rng.integers(1, dims.y + 1)),
        int(rng.integers(1, dims.z + 1)),
    )
    return Partition(base, shape)


def random_torus(
    dims: TorusDims,
    rng: np.random.Generator | int | None = None,
    attempts: int = 12,
) -> Torus:
    """A torus with a random set of non-overlapping allocations.

    ``attempts`` random partitions are drawn; each is allocated iff it is
    still free, so occupancy ranges from empty to heavily fragmented.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    torus = Torus(dims)
    job_id = 0
    for _ in range(attempts):
        part = random_partition(dims, rng)
        if torus.is_free(part):
            torus.allocate(job_id, part)
            job_id += 1
    return torus


def corrupt_random_node(torus: Torus, rng: np.random.Generator | int | None = None) -> int:
    """Flip one grid cell to an inconsistent value; returns the node id.

    A free node is stamped with a bogus job id; an occupied node is
    stamped FREE.  Either way the grid now disagrees with the allocation
    map, so every occupancy oracle must raise.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    flat = torus.grid.ravel()
    node = int(rng.integers(0, flat.size))
    if flat[node] == FREE:
        bogus = max((jid for jid, _ in torus.allocations()), default=0) + 999
        flat[node] = bogus
    else:
        flat[node] = FREE
    return node


def assert_raises_oracle(fn, *args, **kwargs) -> OracleError:
    """Run ``fn`` and return the :class:`OracleError` it must raise.

    Small helper for negative tests outside pytest contexts (e.g. the
    README example and example scripts).
    """
    try:
        fn(*args, **kwargs)
    except OracleError as exc:
        return exc
    raise AssertionError(f"{fn!r} did not raise an OracleError")
