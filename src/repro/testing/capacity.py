"""Capacity-accounting oracle.

:class:`~repro.metrics.capacity.CapacityTracker` integrates
``max(0, f(t) - q(t))`` incrementally, one segment per ``record`` call.
The :class:`CapacityOracle` receives the *same* sample stream but keeps
every sample and recomputes the step-function integral from scratch at
finalisation — a vectorised NumPy recomputation completely independent
of the tracker's running sum.  Agreement of the two (to floating-point
tolerance) certifies the paper's "exact unused-capacity accounting"
claim for the run.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvariantViolationError


class CapacityOracle:
    """Independent recomputation of the unused-capacity integral."""

    __slots__ = ("n_nodes", "_times", "_free", "_queued")

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise InvariantViolationError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = n_nodes
        self._times: list[float] = []
        self._free: list[int] = []
        self._queued: list[int] = []

    @property
    def n_samples(self) -> int:
        return len(self._times)

    def record(self, time: float, free: int, queued: int) -> None:
        """Mirror of ``CapacityTracker.record``: one state-change sample."""
        if not 0 <= free <= self.n_nodes:
            raise InvariantViolationError(
                f"free={free} out of range [0, {self.n_nodes}]"
            )
        if queued < 0:
            raise InvariantViolationError(f"queued={queued} must be >= 0")
        if self._times and time < self._times[-1]:
            raise InvariantViolationError(
                f"capacity sample time went backwards ({time} < {self._times[-1]})"
            )
        self._times.append(time)
        self._free.append(free)
        self._queued.append(queued)

    def surplus_integral(self, end_time: float) -> float:
        """``∫ max(0, f - q) dt`` over ``[first sample, end_time]``,
        recomputed from the full sample record."""
        if not self._times:
            return 0.0
        times = np.append(np.asarray(self._times, dtype=np.float64), end_time)
        dt = np.diff(times)
        if dt.size and float(dt.min()) < 0:
            raise InvariantViolationError(
                f"end_time {end_time} precedes the last sample {self._times[-1]}"
            )
        surplus = np.maximum(
            0,
            np.asarray(self._free, dtype=np.float64)
            - np.asarray(self._queued, dtype=np.float64),
        )
        return float(np.dot(surplus, dt))

    def verify(self, end_time: float, tracker_integral: float) -> float:
        """Compare the tracker's running sum against the recomputation.

        Returns the recomputed integral; raises on disagreement beyond
        floating-point tolerance.
        """
        recomputed = self.surplus_integral(end_time)
        if not math.isclose(
            recomputed, tracker_integral, rel_tol=1e-9, abs_tol=1e-6
        ):
            raise InvariantViolationError(
                f"capacity integral mismatch: tracker={tracker_integral!r} "
                f"vs independent recomputation={recomputed!r} "
                f"over {self.n_samples} samples"
            )
        return recomputed
