"""The bundle of runtime oracles the simulator attaches.

:class:`SimulationOracleHarness` packages the three per-run oracles —
occupancy invariants, event ordering, capacity accounting — behind the
four hooks :class:`~repro.core.simulator.Simulator` calls when
``SimulationConfig.check_invariants`` is on.  The harness is strictly
observational: it never mutates simulator state, so an instrumented run
produces a bit-for-bit identical :class:`SimulationReport` (this is
itself property-tested in ``tests/test_replay.py``).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.events import Event
from repro.geometry.torus import Torus
from repro.testing.capacity import CapacityOracle
from repro.testing.events import EventOrderOracle
from repro.testing.invariants import InvariantChecker


class SimulationOracleHarness:
    """All runtime oracles for one simulation run."""

    __slots__ = ("invariants", "events", "capacity")

    def __init__(self, n_nodes: int) -> None:
        self.invariants = InvariantChecker()
        self.events = EventOrderOracle()
        self.capacity = CapacityOracle(n_nodes)

    # ------------------------------------------------------------------
    # hooks, in simulator call order
    # ------------------------------------------------------------------
    def observe_batch(self, batch: Sequence[Event]) -> None:
        """Called with every popped event batch, before it is applied."""
        self.events.observe_batch(batch)

    def check_torus(self, torus: Torus) -> None:
        """Called after every scheduler pass (all allocs/frees applied)."""
        self.invariants.check(torus)

    def record_capacity(self, time: float, free: int, queued: int) -> None:
        """Mirror of every ``CapacityTracker.record`` call."""
        self.capacity.record(time, free, queued)

    def finalize(self, end_time: float, tracker_integral: float) -> None:
        """End-of-run cross-check of the capacity integral."""
        self.capacity.verify(end_time, tracker_integral)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """How hard each oracle worked (tests assert they actually ran)."""
        return {
            "invariant_checks": self.invariants.checks_run,
            "batches_observed": self.events.batches_seen,
            "capacity_samples": self.capacity.n_samples,
        }
