"""Cross-validation of the three partition finders.

The paper ships three independent algorithms that must agree on *every*
machine state: the naive exhaustive search, the Krevat-style POP
dynamic program and the Appendix-9 fast finder (in both its vectorised
and paper-faithful skip-scan forms).  :class:`CrossValidator` runs any
set of finders against one torus state and asserts they produce

* identical canonical partition sets (node-set equality after
  :meth:`~repro.geometry.partition.Partition.canonical`),
* only genuinely free partitions of exactly the requested size, and
* duplicate-free ``find_free_unique`` output in identical enumeration
  order (all shipped finders enumerate shape-major, base row-major).
"""

from __future__ import annotations

from typing import Sequence

from repro.allocation.base import PartitionFinder
from repro.allocation.fast import FastFinder
from repro.allocation.naive import NaiveFinder
from repro.allocation.pop import POPFinder
from repro.errors import CrossValidationError
from repro.geometry.partition import Partition
from repro.geometry.shapes import schedulable_sizes
from repro.geometry.torus import Torus


def default_finders() -> list[PartitionFinder]:
    """The shipped finder set: naive, POP, fast (both variants)."""
    return [NaiveFinder(), POPFinder(), FastFinder(vectorized=True), FastFinder(vectorized=False)]


def _label(finder: PartitionFinder) -> str:
    if isinstance(finder, FastFinder):
        return "fast-vectorized" if finder.vectorized else "fast-scan"
    return finder.name


class CrossValidator:
    """Runs several finders on one torus state and demands agreement."""

    __slots__ = ("finders", "labels", "comparisons_run")

    def __init__(self, finders: Sequence[PartitionFinder] | None = None) -> None:
        self.finders = list(finders) if finders is not None else default_finders()
        if len(self.finders) < 2:
            raise CrossValidationError("cross-validation needs at least two finders")
        self.labels = [_label(f) for f in self.finders]
        self.comparisons_run = 0

    # ------------------------------------------------------------------
    def canonical_sets(
        self, torus: Torus, size: int
    ) -> dict[str, frozenset[Partition]]:
        """Canonical free-partition set of each finder, keyed by label."""
        return {
            label: frozenset(
                p.canonical(torus.dims) for p in finder.find_free(torus, size)
            )
            for label, finder in zip(self.labels, self.finders)
        }

    def compare(self, torus: Torus, size: int) -> frozenset[Partition]:
        """Assert all finders agree on ``size``; return the agreed set.

        Raises :class:`CrossValidationError` naming the first finder that
        deviates from the reference (the first finder in the list).
        """
        self.comparisons_run += 1
        dims = torus.dims
        reference_label = self.labels[0]
        reference_list: list[Partition] | None = None
        reference: frozenset[Partition] | None = None
        for label, finder in zip(self.labels, self.finders):
            unique = finder.find_free_unique(torus, size)
            canon = frozenset(unique)
            if len(canon) != len(unique):
                raise CrossValidationError(
                    f"{label}: find_free_unique returned duplicates for size {size}"
                )
            for part in unique:
                if part != part.canonical(dims):
                    raise CrossValidationError(
                        f"{label}: non-canonical partition {part} in unique output"
                    )
                if part.size != size:
                    raise CrossValidationError(
                        f"{label}: partition {part} has size {part.size}, "
                        f"requested {size}"
                    )
                if not torus.is_free(part):
                    raise CrossValidationError(
                        f"{label}: partition {part} is not actually free"
                    )
            if reference is None:
                reference_list, reference = unique, canon
            elif canon != reference:
                missing = sorted(map(str, reference - canon))
                extra = sorted(map(str, canon - reference))
                raise CrossValidationError(
                    f"finder disagreement at size {size}: {label} vs "
                    f"{reference_label}; missing={missing} extra={extra}"
                )
            elif unique != reference_list:
                raise CrossValidationError(
                    f"enumeration-order disagreement at size {size}: {label} "
                    f"vs {reference_label} return the same set in a "
                    f"different order"
                )
        assert reference is not None
        return reference

    def compare_all_sizes(self, torus: Torus) -> dict[int, frozenset[Partition]]:
        """Cross-validate every schedulable size on this machine."""
        return {
            size: self.compare(torus, size)
            for size in schedulable_sizes(torus.dims)
        }
