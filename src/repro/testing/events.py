"""Event-stream ordering oracle.

The simulator's correctness argument leans on two properties of its
event loop (see :mod:`repro.core.events`): batches are popped in
non-decreasing time order, and *within* a batch events are applied in
the fixed kind order ``FINISH < FAILURE < ARRIVAL``.  The
:class:`EventOrderOracle` observes every popped batch and raises the
moment either property is broken — e.g. by a future refactor of the
heap ordering or of :meth:`EventQueue.pop_batch`.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.events import Event
from repro.errors import InvariantViolationError


class EventOrderOracle:
    """Validates the batch stream produced by ``EventQueue.pop_batch``."""

    __slots__ = ("batches_seen", "_last_time")

    def __init__(self) -> None:
        self.batches_seen = 0
        self._last_time: float | None = None

    def observe_batch(self, batch: Sequence[Event]) -> None:
        """Check one popped batch; raise on any ordering violation."""
        self.batches_seen += 1
        if not batch:
            raise InvariantViolationError("simulator processed an empty batch")
        t = batch[0].time
        if not math.isfinite(t) or t < 0:
            raise InvariantViolationError(f"batch timestamp {t} is not a valid time")
        if self._last_time is not None and t < self._last_time:
            raise InvariantViolationError(
                f"batch time went backwards: {t} after {self._last_time}"
            )
        self._last_time = t
        prev_kind = None
        for event in batch:
            if event.time != t:
                raise InvariantViolationError(
                    f"batch mixes timestamps: {event.time} != {t}"
                )
            if prev_kind is not None and event.kind < prev_kind:
                raise InvariantViolationError(
                    f"within-batch kind order violated: {event.kind.name} "
                    f"after {prev_kind.name} (must be FINISH<FAILURE<ARRIVAL)"
                )
            prev_kind = event.kind
