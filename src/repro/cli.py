"""Command-line interface.

::

    bgl-sim run     --site sdsc --policy balancing --parameter 0.1 ...
    bgl-sim sweep   --parameters 0.0 0.1 0.3 [--checkpoint-dir DIR] ...
    bgl-sim sweep   --backend queue --queue-dir DIR ...   # multi-host driver
    bgl-sim sweep-worker --queue-dir DIR                  # one queue worker
    bgl-sim figure  fig3 [--jobs 500] [--seeds 2]
    bgl-sim figures            # list regenerable figures
    bgl-sim sites              # list workload site models
    bgl-sim swf PATH ...       # simulate a real SWF trace file
    bgl-sim trace   summarize|diff|validate PATH...
    bgl-sim serve   --port 9753 ...           # scheduler-as-a-service
    bgl-sim load    --address HOST:PORT ...   # replay/load-test a service

(`python -m repro` is equivalent.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__


def _positive_int(value: str) -> int:
    """argparse type for counts that must be >= 1 (e.g. ``--workers``)."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}"
        ) from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (>= 1), got {parsed}"
        )
    return parsed


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Checkpoint/retry options shared by ``sweep`` and ``figure``."""
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist every completed sweep cell here (atomic, "
            "content-addressed); a killed run re-invoked with the same "
            "arguments resumes where it stopped"
        ),
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "trust verified cells already in --checkpoint-dir "
            "(--no-resume recomputes everything but still writes "
            "checkpoints)"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "attempts per cell before it is quarantined instead of "
            "aborting the sweep (enables the retrying executor)"
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per cell; a timeout counts as a failed attempt",
    )


def _retry_policy(args: argparse.Namespace):
    """Build a RetryPolicy from CLI flags, or None when none were given."""
    if args.max_retries is None and args.cell_timeout is None:
        return None
    from repro.resilience import RetryPolicy

    kwargs = {}
    if args.max_retries is not None:
        kwargs["max_attempts"] = args.max_retries
    if args.cell_timeout is not None:
        if args.cell_timeout <= 0:
            raise SystemExit("--cell-timeout must be positive")
        kwargs["cell_timeout_s"] = args.cell_timeout
    return RetryPolicy(**kwargs)


def _add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    """Simulation-scenario options shared by ``serve`` and ``load``.

    Both sides must build the identical scenario — same workload, same
    failure log, same policy seeding — for a replay through the service
    to reproduce the batch run, so they share one flag set.
    """
    parser.add_argument("--site", default="sdsc", help="workload model (nasa/sdsc/llnl)")
    parser.add_argument("--jobs", type=int, default=500, help="number of jobs")
    parser.add_argument("--failures", type=int, default=50, help="failure events")
    parser.add_argument(
        "--policy", default="balancing", help="krevat / balancing / tiebreak"
    )
    parser.add_argument(
        "--parameter", type=float, default=0.1,
        help="prediction confidence (balancing) or accuracy (tiebreak)",
    )
    parser.add_argument("--load", type=float, default=1.0, help="load scale c")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--swf", default=None, metavar="PATH",
        help="replay this SWF trace instead of a synthetic site workload",
    )
    parser.add_argument(
        "--head", type=int, default=0,
        help="with --swf: only the first N jobs",
    )


def _scenario_pipeline(args: argparse.Namespace):
    """(workload, failures, config, policy) for serve/load flags."""
    from repro.api import SimulationSetup
    from repro.core.config import SimulationConfig
    from repro.core.policies.registry import make_policy
    from repro.failures.synthetic import generate_failures
    from repro.workloads.scaling import fit_to_machine
    from repro.workloads.swf import read_swf

    config = SimulationConfig()
    if args.swf:
        workload = read_swf(args.swf)
        if args.head:
            workload = workload.head(args.head)
        workload = fit_to_machine(workload, config.dims)
        horizon = max(workload.span * 1.5, 3600.0)
        failures = generate_failures(
            config.dims, args.failures, horizon, seed=args.seed + 1
        )
    else:
        setup = SimulationSetup(
            site=args.site,
            n_jobs=args.jobs,
            load_scale=args.load,
            n_failures=args.failures,
            policy=args.policy,
            parameter=args.parameter,
            seed=args.seed,
            config=config,
        )
        workload = setup.build_workload()
        failures = setup.build_failures(workload)
    policy = make_policy(
        args.policy,
        failure_log=failures,
        parameter=args.parameter,
        seed=args.seed + 2,
    )
    return workload, failures, config, policy


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bgl-sim",
        description=(
            "Fault-aware BlueGene/L job-scheduling simulator "
            "(reproduction of Oliner et al., IPPS 2004)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log progress to stderr (-v info, -vv debug)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation point")
    run.add_argument("--site", default="sdsc", help="workload model (nasa/sdsc/llnl)")
    run.add_argument("--jobs", type=int, default=500, help="number of jobs")
    run.add_argument("--failures", type=int, default=50, help="failure events")
    run.add_argument(
        "--policy", default="balancing", help="krevat / balancing / tiebreak"
    )
    run.add_argument(
        "--parameter",
        type=float,
        default=0.1,
        help="prediction confidence (balancing) or accuracy (tiebreak)",
    )
    run.add_argument("--load", type=float, default=1.0, help="load scale c")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--detail",
        action="store_true",
        help="print slowdown/wait distributions and per-size breakdown",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record every scheduler decision to an NDJSON trace file",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="collect and print internal counters/timings for the run",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a sweep grid with optional checkpoint/resume and retry",
    )
    sweep.add_argument("--site", default="sdsc", help="workload model (nasa/sdsc/llnl)")
    sweep.add_argument(
        "--policy", default="balancing", help="krevat / balancing / tiebreak"
    )
    sweep.add_argument(
        "--parameters",
        type=float,
        nargs="+",
        default=[0.0, 0.1, 0.3],
        metavar="A",
        help="prediction parameter values to sweep",
    )
    sweep.add_argument(
        "--failures",
        type=int,
        nargs="+",
        default=[50],
        metavar="N",
        help="failure counts to sweep (crossed with --parameters)",
    )
    sweep.add_argument("--jobs", type=int, default=200, help="jobs per cell")
    sweep.add_argument("--load", type=float, default=1.0, help="load scale c")
    sweep.add_argument(
        "--seeds", type=_positive_int, default=2, help="number of seeds per point"
    )
    sweep.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="parallel sweep workers (default 1; results identical either way)",
    )
    sweep.add_argument(
        "--backend",
        choices=("local", "queue"),
        default="local",
        help=(
            "local (default): in-process / warm-pool execution; queue: "
            "drive the sweep through a shared-directory work queue "
            "(--queue-dir) so sweep-worker processes on any host sharing "
            "the directory can pull cells — results are bitwise-identical "
            "either way"
        ),
    )
    sweep.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help="shared work-queue directory (required with --backend queue)",
    )
    sweep.add_argument(
        "--lease-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "queue-backend claim lease: a claimed cell not completed "
            "within this window is reclaimed and re-enqueued"
        ),
    )
    sweep.add_argument(
        "--no-spawn-workers",
        action="store_true",
        help=(
            "queue backend: do not start local sweep-worker processes; "
            "only supervise and merge (workers run elsewhere against "
            "the shared directory)"
        ),
    )
    _add_resilience_flags(sweep)

    worker = sub.add_parser(
        "sweep-worker",
        help=(
            "pull-and-run sweep cells from a shared work-queue directory "
            "(start any number of these, on any hosts sharing the "
            "directory; drive with `bgl-sim sweep --backend queue`)"
        ),
    )
    worker.add_argument(
        "--queue-dir", required=True, metavar="DIR",
        help="shared work-queue directory",
    )
    worker.add_argument(
        "--lease-s", type=float, default=None, metavar="SECONDS",
        help="claim lease before other workers may reclaim a cell",
    )
    worker.add_argument(
        "--max-attempts", type=_positive_int, default=None, metavar="N",
        help="attempts per cell before it is dead-lettered",
    )
    worker.add_argument(
        "--max-cells", type=_positive_int, default=None, metavar="N",
        help="exit after completing N cells",
    )
    worker.add_argument(
        "--idle-exit-s", type=float, default=None, metavar="SECONDS",
        help="exit after this long without claimable work (default: wait)",
    )
    worker.add_argument(
        "--poll-s", type=float, default=0.05, metavar="SECONDS",
        help="sleep between polls of an empty queue",
    )
    worker.add_argument(
        "--kill-after-claims", type=int, default=None, metavar="N",
        help=argparse.SUPPRESS,  # chaos-testing hook: die mid-cell N+1
    )
    worker.add_argument(
        "--worker-id", default=None, help=argparse.SUPPRESS
    )

    fig = sub.add_parser("figure", help="regenerate one paper figure")
    fig.add_argument("name", help="fig3 .. fig10")
    fig.add_argument("--jobs", type=int, default=None)
    fig.add_argument("--seeds", type=int, default=None, help="number of seeds")
    fig.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help=(
            "parallel sweep workers (default: REPRO_FIG_WORKERS, else "
            "all cores but one); results are identical to --workers 1"
        ),
    )
    fig.add_argument("--chart", action="store_true", help="render an ASCII chart")
    _add_resilience_flags(fig)

    sub.add_parser("figures", help="list regenerable figures")
    sub.add_parser("sites", help="list bundled workload site models")

    cmp = sub.add_parser(
        "compare", help="paired comparison of two policies on one scenario"
    )
    cmp.add_argument("--site", default="sdsc")
    cmp.add_argument("--jobs", type=int, default=300)
    cmp.add_argument("--failures", type=int, default=30)
    cmp.add_argument("--baseline", default="krevat")
    cmp.add_argument("--candidate", default="balancing")
    cmp.add_argument("--parameter", type=float, default=0.1,
                     help="prediction parameter for the candidate policy")
    cmp.add_argument("--seeds", type=int, default=3)
    cmp.add_argument("--load", type=float, default=1.0)

    char = sub.add_parser(
        "characterize", help="profile a workload model or SWF trace"
    )
    char.add_argument("--site", default=None, help="bundled site model to profile")
    char.add_argument("--swf", default=None, help="SWF file to profile")
    char.add_argument("--jobs", type=int, default=1000)
    char.add_argument("--failures", type=int, default=200)
    char.add_argument("--seed", type=int, default=0)

    swf = sub.add_parser("swf", help="simulate a real SWF trace file")
    swf.add_argument("path", help="SWF file (Parallel Workloads Archive format)")
    swf.add_argument("--head", type=int, default=0, help="only the first N jobs")
    swf.add_argument("--failures", type=int, default=50)
    swf.add_argument("--policy", default="balancing")
    swf.add_argument("--parameter", type=float, default=0.1)
    swf.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="serve the scheduler over newline-delimited JSON"
    )
    _add_scenario_flags(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--unix", default=None, metavar="PATH",
        help="serve on a unix socket instead of TCP",
    )
    serve.add_argument(
        "--clock",
        choices=("trace", "logical"),
        default="trace",
        help=(
            "trace: clients state simulated arrival times (replays are "
            "byte-identical to batch runs); logical: the service assigns "
            "monotonic arrival ticks (fair-share weights shape the schedule)"
        ),
    )
    serve.add_argument(
        "--tenant-weight", action="append", default=None, metavar="NAME=W",
        help="fair-share weight for a tenant (repeatable; default 1)",
    )
    serve.add_argument(
        "--tenant-cap", type=_positive_int, default=256,
        help="per-tenant admission-queue depth before rejects",
    )
    serve.add_argument(
        "--engine-cap", type=_positive_int, default=512,
        help="released-but-uncompleted jobs the engine holds",
    )
    serve.add_argument(
        "--pump-interval", type=_positive_int, default=32,
        help="submissions between event-loop pump passes",
    )
    serve.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write the bound address here once listening",
    )
    serve.add_argument(
        "--metrics-file", default=None, metavar="PATH",
        help="write the final metrics snapshot here on shutdown",
    )
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="stream every scheduler decision to an NDJSON file",
    )

    load = sub.add_parser(
        "load", help="replay a workload against a service and measure it"
    )
    _add_scenario_flags(load)
    load.add_argument(
        "--address", required=True, metavar="HOST:PORT|PATH",
        help="service address (TCP host:port or unix-socket path)",
    )
    load.add_argument(
        "--acceleration", type=float, default=None, metavar="X",
        help="replay at trace time divided by X (default: full speed)",
    )
    load.add_argument(
        "--rate", type=float, default=None, metavar="PER_S",
        help="open-loop submissions per second (overrides trace spacing)",
    )
    load.add_argument(
        "--pipeline", type=_positive_int, default=32,
        help="requests in flight per transport round trip",
    )
    load.add_argument(
        "--tenant", action="append", default=None, metavar="NAME",
        help="tenant names to round-robin submissions over (repeatable)",
    )
    load.add_argument(
        "--no-drain", action="store_true",
        help="skip the final drain (leave the service running hot)",
    )
    load.add_argument(
        "--check", action="store_true",
        help=(
            "run the same scenario through the batch simulator locally "
            "and require the drained report to match byte-for-byte"
        ),
    )
    load.add_argument(
        "--shutdown", action="store_true",
        help="send a shutdown request after the run",
    )
    load.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the load report as JSON",
    )

    trace = sub.add_parser(
        "trace", help="inspect NDJSON decision traces (from `run --trace`)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summ = trace_sub.add_parser("summarize", help="per-kind record counts and span")
    summ.add_argument("path", help="trace file")
    diff = trace_sub.add_parser(
        "diff", help="locate the first divergent decision between two traces"
    )
    diff.add_argument("path_a", help="first trace file")
    diff.add_argument("path_b", help="second trace file")
    val = trace_sub.add_parser(
        "validate", help="check schema, seq density and time monotonicity"
    )
    val.add_argument("path", help="trace file")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.trace or args.metrics:
        from repro.api import SimulationSetup
        from repro.core.config import SimulationConfig

        setup = SimulationSetup(
            site=args.site,
            n_jobs=args.jobs,
            n_failures=args.failures,
            policy=args.policy,
            parameter=args.parameter,
            load_scale=args.load,
            seed=args.seed,
            config=SimulationConfig(
                trace=bool(args.trace), profile=args.metrics
            ),
        )
        simulator = setup.build_simulator()
        report = simulator.run()
        if args.trace:
            simulator.recorder.write(args.trace)
            print(f"trace: {len(simulator.recorder)} records -> {args.trace}")
        if args.metrics and simulator.metrics is not None:
            for line in simulator.metrics.summary_lines():
                print(f"  {line}")
    else:
        from repro.api import quick_simulate

        report = quick_simulate(
            site=args.site,
            n_jobs=args.jobs,
            n_failures=args.failures,
            policy=args.policy,
            confidence=args.parameter,
            load_scale=args.load,
            seed=args.seed,
        )
    print(report.summary_line())
    t, c = report.timing, report.capacity
    print(
        f"  wait={t.avg_wait:.0f}s response={t.avg_response:.0f}s "
        f"slowdown={t.avg_bounded_slowdown:.2f} restarts={t.total_restarts}"
    )
    print(f"  capacity: {c}")
    print(f"  counters: {report.counters}")
    if args.detail:
        from repro.analysis import (
            per_size_class_summary,
            render_histogram,
            slowdown_distribution,
            wait_distribution,
        )

        print("\nDistributions:")
        print(" ", slowdown_distribution(report.records))
        print(" ", wait_distribution(report.records))
        print("\nSlowdown by job-size class:")
        for label, summary in per_size_class_summary(report.records).items():
            print(f"  {label:>7}: n={summary.n:<5} mean={summary.mean:8.2f} "
                  f"p95={summary.percentiles[95]:8.2f}")
        print("\n" + render_histogram(
            [r.slowdown() for r in report.records],
            bins=8, log_bins=True, title="bounded slowdown histogram",
        ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import SweepPoint, run_sweep_outcome

    points = [
        SweepPoint(
            site=args.site,
            n_jobs=args.jobs,
            load_scale=args.load,
            n_failures=n_failures,
            policy=args.policy,
            parameter=parameter,
        )
        for n_failures in args.failures
        for parameter in args.parameters
    ]
    if args.backend == "queue":
        if args.queue_dir is None:
            raise SystemExit("--backend queue requires --queue-dir")
        if args.checkpoint_dir is not None:
            raise SystemExit(
                "--backend queue stores checkpoints inside --queue-dir; "
                "drop --checkpoint-dir"
            )
        from repro.experiments.queue import DEFAULT_LEASE_S, run_queue_sweep

        queue_kwargs = {}
        retry = _retry_policy(args)
        if retry is not None:
            queue_kwargs["max_attempts"] = retry.max_attempts
        outcome = run_queue_sweep(
            points,
            seeds=tuple(range(args.seeds)),
            queue_dir=args.queue_dir,
            workers=args.workers or 2,
            lease_s=args.lease_s if args.lease_s is not None else DEFAULT_LEASE_S,
            spawn_workers=not args.no_spawn_workers,
            **queue_kwargs,
        )
    else:
        if args.queue_dir is not None or args.no_spawn_workers:
            raise SystemExit(
                "--queue-dir/--no-spawn-workers need --backend queue"
            )
        outcome = run_sweep_outcome(
            points,
            seeds=tuple(range(args.seeds)),
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            retry=_retry_policy(args),
            resume=args.resume,
        )
    header = (
        f"{'failures':>8} {'param':>6} {'slowdown':>9} {'response':>9} "
        f"{'wait':>8} {'util':>6} {'kills':>6} {'seeds':>5}"
    )
    print(header)
    for point, result in zip(points, outcome.results):
        if result is None:
            print(
                f"{point.n_failures:>8} {point.parameter:>6.2f} "
                f"{'(all seeds quarantined)':>40}"
            )
            continue
        print(
            f"{point.n_failures:>8} {point.parameter:>6.2f} "
            f"{result.avg_bounded_slowdown:>9.3f} {result.avg_response:>9.0f} "
            f"{result.avg_wait:>8.0f} {result.utilized:>6.3f} "
            f"{result.job_kills:>6.1f} {result.n_seeds:>5}"
        )
    print(f"\n{outcome.stats.summary_line()}")
    if outcome.quarantined:
        cells = ", ".join(
            f"(point {e.point_index}, seed#{e.seed_index})"
            for e in outcome.quarantined
        )
        print(f"quarantined cells: {cells}")
        if args.checkpoint_dir:
            from repro.resilience import CellStore

            print(
                f"details: {CellStore(args.checkpoint_dir).quarantine_path}"
            )
    return 0 if outcome.complete else 1


def _cmd_sweep_worker(args: argparse.Namespace) -> int:
    from repro.experiments.queue import (
        DEFAULT_LEASE_S,
        DEFAULT_MAX_ATTEMPTS,
        run_worker,
    )

    if args.lease_s is not None and args.lease_s <= 0:
        raise SystemExit("--lease-s must be positive")
    run_worker(
        args.queue_dir,
        lease_s=args.lease_s if args.lease_s is not None else DEFAULT_LEASE_S,
        max_attempts=(
            args.max_attempts
            if args.max_attempts is not None
            else DEFAULT_MAX_ATTEMPTS
        ),
        max_cells=args.max_cells,
        idle_exit_s=args.idle_exit_s,
        poll_s=args.poll_s,
        kill_after_claims=args.kill_after_claims,
        worker_id=args.worker_id,
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import format_figure, run_figure

    from repro.experiments.validate import validate_figure

    seeds = tuple(range(args.seeds)) if args.seeds else None
    result = run_figure(
        args.name,
        n_jobs=args.jobs,
        seeds=seeds,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        retry=_retry_policy(args),
        resume=args.resume,
    )
    print(format_figure(result))
    print()
    print(validate_figure(result).summary())
    if args.chart:
        from repro.analysis import render_series

        series = {
            label: result.metric_values(label) for label in result.series
        }
        print()
        print(render_series(series, title=f"{result.figure}: {result.metric}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_reports, mean_paired_comparison
    from repro.api import SimulationSetup

    comparisons = []
    for seed in range(args.seeds):
        common = dict(
            site=args.site, n_jobs=args.jobs, n_failures=args.failures,
            load_scale=args.load, seed=seed,
        )
        base = SimulationSetup(policy=args.baseline, parameter=0.0, **common).run()
        cand = SimulationSetup(
            policy=args.candidate, parameter=args.parameter, **common
        ).run()
        pair = compare_reports(base, cand)
        comparisons.append(pair)
        print(f"seed {seed}: {pair.summary()}")
    print("\nmean over seeds:")
    print(" ", mean_paired_comparison(comparisons).summary())
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.analysis import characterize_failures, characterize_workload
    from repro.core.config import SimulationConfig
    from repro.failures.synthetic import generate_failures
    from repro.workloads.scaling import fit_to_machine
    from repro.workloads.swf import read_swf
    from repro.workloads.synthetic import generate_workload
    from repro.workloads.models import site_model

    config = SimulationConfig()
    if args.swf:
        workload = read_swf(args.swf)
    else:
        workload = generate_workload(
            site_model(args.site or "sdsc"), args.jobs, seed=args.seed
        )
    workload = fit_to_machine(workload, config.dims)
    profile = characterize_workload(workload)
    print("Workload profile:")
    for field_name in profile.__dataclass_fields__:
        print(f"  {field_name:<24} {getattr(profile, field_name)}")
    horizon = max(workload.span * 1.5, 3600.0)
    failures = generate_failures(config.dims, args.failures, horizon, seed=args.seed + 1)
    fprofile = characterize_failures(failures)
    print("\nMatched synthetic failure-trace profile:")
    for field_name in fprofile.__dataclass_fields__:
        print(f"  {field_name:<24} {getattr(fprofile, field_name)}")
    return 0


def _cmd_figures() -> int:
    from repro.experiments import figure_registry

    for name in figure_registry():
        print(name)
    return 0


def _cmd_sites() -> int:
    from repro.workloads import available_sites, site_model

    for name in available_sites():
        model = site_model(name)
        print(
            f"{name:<6} machine={model.machine_nodes:<4} "
            f"interarrival={model.mean_interarrival_s:.0f}s "
            f"p2={model.p_power_of_two:.2f}"
        )
    return 0


def _cmd_swf(args: argparse.Namespace) -> int:
    from repro.core.config import SimulationConfig
    from repro.core.policies.registry import make_policy
    from repro.core.simulator import simulate
    from repro.failures.synthetic import generate_failures
    from repro.workloads.scaling import fit_to_machine
    from repro.workloads.swf import read_swf

    config = SimulationConfig()
    workload = read_swf(args.path)
    if args.head:
        workload = workload.head(args.head)
    workload = fit_to_machine(workload, config.dims)
    horizon = max(workload.span * 1.5, 3600.0)
    failures = generate_failures(config.dims, args.failures, horizon, seed=args.seed)
    policy = make_policy(
        args.policy, failure_log=failures, parameter=args.parameter, seed=args.seed
    )
    report = simulate(workload, failures, policy, config)
    print(report.summary_line())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.engine import ServeEngine
    from repro.serve.service import run_service

    workload, failures, config, policy = _scenario_pipeline(args)
    weights = {}
    for entry in args.tenant_weight or ():
        name, sep, weight_text = entry.partition("=")
        if not sep:
            raise SystemExit(f"--tenant-weight expects NAME=WEIGHT, got {entry!r}")
        try:
            weights[name] = float(weight_text)
        except ValueError:
            raise SystemExit(
                f"--tenant-weight {entry!r}: weight must be a number"
            ) from None
    sink = open(args.trace, "w", encoding="utf-8") if args.trace else None
    try:
        from repro.obs.trace import TraceRecorder

        engine = ServeEngine(
            workload.name,
            workload.machine_nodes,
            failures,
            policy,
            config,
            clock=args.clock,
            weights=weights or None,
            tenant_cap=args.tenant_cap,
            engine_cap=args.engine_cap,
            pump_interval=args.pump_interval,
            recorder=TraceRecorder(sink=sink) if sink is not None else None,
        )
        run_service(
            engine,
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            ready_file=args.ready_file,
            metrics_file=args.metrics_file,
        )
    finally:
        if sink is not None:
            sink.close()
    stats = engine.handle({"op": "stats"})
    print(
        f"served {stats['submitted']} submissions: "
        f"{stats['admitted']} admitted, {stats['rejected']} rejected, "
        f"{stats['completed']} completed"
    )
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import SocketClient
    from repro.serve.load import run_load

    if args.check and args.no_drain:
        raise SystemExit("--check needs the drained report; drop --no-drain")
    workload, failures, config, policy = _scenario_pipeline(args)
    client = SocketClient.connect(args.address)
    try:
        result = run_load(
            client,
            workload,
            acceleration=args.acceleration,
            rate=args.rate,
            tenants=tuple(args.tenant) if args.tenant else ("default",),
            pipeline_depth=args.pipeline,
            drain=not args.no_drain,
        )
        exit_code = 0
        for line in result.summary_lines():
            print(f"  {line}")
        if result.dropped or result.errors:
            print("FAIL: dropped responses or submit errors", file=sys.stderr)
            exit_code = 1
        if args.check:
            from repro.metrics.serialize import report_to_dict
            from repro.core.simulator import simulate

            expected = report_to_dict(simulate(workload, failures, policy, config))
            if result.final_report == expected:
                print("check: service report matches batch simulator")
            else:
                print(
                    "FAIL: service report differs from batch simulator",
                    file=sys.stderr,
                )
                exit_code = 1
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        if args.shutdown:
            client.shutdown()
    finally:
        client.close()
    return exit_code


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.tools import (
        diff_traces,
        format_summary,
        headers_differ,
        summarize_trace,
        validate_trace,
    )
    from repro.obs.trace import read_trace

    if args.trace_command == "summarize":
        print(format_summary(summarize_trace(read_trace(args.path))))
        return 0
    if args.trace_command == "validate":
        errors = validate_trace(read_trace(args.path))
        if errors:
            for error in errors:
                print(f"{args.path}: {error}")
            return 1
        print(f"{args.path}: OK")
        return 0
    if args.trace_command == "diff":
        trace_a = read_trace(args.path_a)
        trace_b = read_trace(args.path_b)
        header_delta = headers_differ(trace_a, trace_b)
        if header_delta:
            print(f"headers differ in: {', '.join(header_delta)}")
        divergence = diff_traces(trace_a, trace_b)
        if divergence is None:
            print(
                f"identical decision streams "
                f"({sum(1 for r in trace_a if r.get('kind') != 'header')} records)"
            )
            return 1 if header_delta else 0
        print(divergence.describe())
        return 1
    raise AssertionError(
        f"unhandled trace command {args.trace_command!r}"
    )  # pragma: no cover


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "sweep-worker":
        return _cmd_sweep_worker(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "figures":
        return _cmd_figures()
    if args.command == "sites":
        return _cmd_sites()
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "characterize":
        return _cmd_characterize(args)
    if args.command == "swf":
        return _cmd_swf(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "load":
        return _cmd_load(args)
    if args.command == "trace":
        return _cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.verbose:
        from repro.obs.log import configure_logging

        configure_logging(args.verbose)
    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        # Ctrl-C is an answer, not a crash: shut the warm pool down (it
        # holds worker processes and shared-memory arenas), say so once
        # on stderr, and exit with the conventional 128+SIGINT code.
        try:
            from repro.experiments.pool import shutdown_warm_pool

            shutdown_warm_pool()
        except Exception:  # noqa: BLE001 - best-effort cleanup on the way out
            pass
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
