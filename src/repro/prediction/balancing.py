"""The balancing (confidence) predictor — §4.1 of the paper.

For a node ``n`` and window ``[t0, t1)`` the predicted failure
probability is ``a`` when the failure log contains an event for ``n`` in
the window and 0 otherwise; partition probabilities combine per the
configured :class:`~repro.prediction.base.PartitionFailureRule`.

The hot path caches the per-window flagged-node mask: one scheduling
pass asks about many candidate partitions over the *same* window.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredictionError
from repro.failures.events import FailureLog
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition
from repro.prediction.base import (
    PartitionFailureRule,
    Predictor,
    combine_probabilities,
)


class BalancingPredictor(Predictor):
    """Log-peeking probabilistic predictor with confidence ``a``.

    Parameters
    ----------
    log:
        The shared failure log (same instance the simulator injects
        failures from).
    confidence:
        The paper's ``a`` parameter in ``[0, 1]``.  0 disables
        prediction entirely (the fault-oblivious baseline); 1 is a
        perfectly confident oracle.
    rule:
        Per-partition combination rule; default is the §4.1 ``max`` form
        (the §5.2.1 complement-product is available for ablation — see
        DESIGN.md §5.2).
    """

    def __init__(
        self,
        log: FailureLog,
        confidence: float,
        rule: PartitionFailureRule = PartitionFailureRule.MAX,
    ) -> None:
        if not 0.0 <= confidence <= 1.0:
            raise PredictionError(f"confidence must be in [0, 1], got {confidence}")
        self.log = log
        self.confidence = confidence
        self.rule = rule
        self._mask_cache: dict[tuple[float, float], np.ndarray] = {}
        self._integral_cache: dict[tuple[float, float], np.ndarray] = {}
        self._flagged_cache: dict[tuple[float, float], np.ndarray] = {}

    def begin_pass(self, now: float) -> None:
        # Windows are keyed on (t0, t1); bound the cache so week-long
        # simulations do not accumulate one mask per job.
        if len(self._mask_cache) > 64:
            self._mask_cache.clear()
            self._integral_cache.clear()
            self._flagged_cache.clear()

    def _mask(self, t0: float, t1: float) -> np.ndarray:
        key = (t0, t1)
        mask = self._mask_cache.get(key)
        if mask is None:
            mask = self.log.failure_mask(t0, t1)
            self._mask_cache[key] = mask
        return mask

    def _integral(self, dims: TorusDims, t0: float, t1: float) -> np.ndarray:
        from repro.geometry.torus import wrap_pad_integral

        key = (t0, t1)
        integral = self._integral_cache.get(key)
        if integral is None:
            grid = self._mask(t0, t1).reshape(dims.as_tuple()).astype(np.int64)
            integral = wrap_pad_integral(grid)
            self._integral_cache[key] = integral
        return integral

    def _flagged(self, t0: float, t1: float) -> np.ndarray:
        """Linear ids of the nodes flagged in the window (cached)."""
        key = (t0, t1)
        nodes = self._flagged_cache.get(key)
        if nodes is None:
            nodes = np.flatnonzero(self._mask(t0, t1))
            self._flagged_cache[key] = nodes
        return nodes

    def node_failure_probability(self, node: int, t0: float, t1: float) -> float:
        """``p_n^f`` for one linear node id."""
        return self.confidence if self._mask(t0, t1)[node] else 0.0

    def partition_failure_probability(
        self, partition: Partition, dims: TorusDims, t0: float, t1: float
    ) -> float:
        if self.confidence == 0.0:
            return 0.0
        flagged = self.count_in_partition(
            self._integral(dims, t0, t1), partition, dims
        )
        return combine_probabilities(self.confidence, flagged, self.rule)

    def partition_failure_probabilities(
        self, bases: np.ndarray, shape, dims: TorusDims, t0: float, t1: float
    ) -> np.ndarray:
        """Batch ``P_f``: one gather for the flagged counts, then one
        scalar :func:`combine_probabilities` per *distinct* count.

        Going through the scalar combiner (counts are tiny integers, so
        distinct values are few) keeps the batch path bitwise equal to
        the scalar one even for the complement-product rule, where a
        vectorised power could round differently than Python's ``**``.
        """
        if self.confidence == 0.0:
            return np.zeros(bases.shape[0], dtype=np.float64)
        flagged = self._flagged(t0, t1)
        if flagged.size == 0:
            # The common case for sparse failure logs: nothing flagged
            # in the window, so every candidate's P_f is exactly 0 —
            # skip the count gather entirely.
            return np.zeros(bases.shape[0], dtype=np.float64)
        if flagged.size <= self._MEMBERSHIP_CUTOVER:
            counts = self._membership_counts(flagged, bases, shape, dims)
        else:
            counts = self.counts_in_partitions(
                self._integral(dims, t0, t1), bases, shape, dims
            )
        probs = np.zeros(bases.shape[0], dtype=np.float64)
        for count in np.unique(counts):
            if count > 0:
                probs[counts == count] = combine_probabilities(
                    self.confidence, int(count), self.rule
                )
        return probs

    #: Flagged-node count up to which per-candidate counts come from
    #: direct membership tests instead of a wrap-pad integral.  The
    #: integral costs a fresh build per distinct window (window ends
    #: vary per job, so it almost never amortises), while membership is
    #: one broadcast over (candidates x flagged nodes); both produce
    #: identical integer counts (``tests/prediction`` cross-validates).
    _MEMBERSHIP_CUTOVER = 48

    @staticmethod
    def _membership_counts(
        flagged: np.ndarray,
        bases: np.ndarray,
        shape,
        dims: TorusDims,
    ) -> np.ndarray:
        """Flagged nodes inside each candidate box, by membership test.

        A node ``p`` lies in the wrapped box ``(b, shape)`` iff
        ``(p - b) mod P < extent`` on every axis — the same predicate
        the integral's box sums count, evaluated directly.
        """
        fx, fy, fz = np.unravel_index(flagged, dims.as_tuple())
        inside = (
            (((fx[None, :] - bases[:, 0:1]) % dims.x) < shape[0])
            & (((fy[None, :] - bases[:, 1:2]) % dims.y) < shape[1])
            & (((fz[None, :] - bases[:, 2:3]) % dims.z) < shape[2])
        )
        return inside.sum(axis=1)
