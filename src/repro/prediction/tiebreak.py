"""The tie-breaking (accuracy) predictor — §4.2 of the paper.

A boolean oracle: for a node with a logged failure inside the window it
answers *yes* with probability ``a`` (so the false-negative rate is
``1-a``); for a node with no logged failure it always answers *no*
(zero false positives, justified in the paper by the measured
``p_f+ << p_f-`` of real predictors).

Responses must be consistent within one scheduling pass — the same node
asked twice (via two overlapping candidate partitions) must answer the
same — so per-node draws are cached per ``(node, window)`` and cleared
at :meth:`begin_pass`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredictionError
from repro.failures.events import FailureLog
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition
from repro.prediction.base import Predictor


class TieBreakPredictor(Predictor):
    """Boolean log-peeking predictor with accuracy ``a``.

    Parameters
    ----------
    log:
        Shared failure log.
    accuracy:
        ``a = 1 - p_f-`` in ``[0, 1]``; probability a genuine upcoming
        failure is reported.
    seed:
        Seed for the response noise.
    """

    def __init__(self, log: FailureLog, accuracy: float, seed: int | None = 0) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise PredictionError(f"accuracy must be in [0, 1], got {accuracy}")
        self.log = log
        self.accuracy = accuracy
        self._rng = np.random.default_rng(seed)
        self._draws: dict[tuple[float, float], np.ndarray] = {}
        self._masks: dict[tuple[float, float], np.ndarray] = {}
        self._integrals: dict[tuple[float, float], np.ndarray] = {}

    def begin_pass(self, now: float) -> None:
        """Drop cached draws: a new pass re-rolls the response noise."""
        self._draws.clear()
        self._masks.clear()
        self._integrals.clear()

    def _window(self, t0: float, t1: float) -> tuple[np.ndarray, np.ndarray]:
        key = (t0, t1)
        mask = self._masks.get(key)
        if mask is None:
            mask = self.log.failure_mask(t0, t1)
            self._masks[key] = mask
            # One Bernoulli(a) response per node, drawn up-front so every
            # partition sharing this window sees consistent answers.
            self._draws[key] = self._rng.random(self.log.n_nodes) < self.accuracy
        return mask, self._draws[key]

    def node_predicts_failure(self, node: int, t0: float, t1: float) -> bool:
        """Boolean response for one node."""
        mask, draws = self._window(t0, t1)
        return bool(mask[node] and draws[node])

    def _reported_integral(
        self, dims: TorusDims, t0: float, t1: float
    ) -> np.ndarray:
        from repro.geometry.torus import wrap_pad_integral

        key = (t0, t1)
        integral = self._integrals.get(key)
        if integral is None:
            mask, draws = self._window(t0, t1)
            grid = (mask & draws).reshape(dims.as_tuple()).astype(np.int64)
            integral = wrap_pad_integral(grid)
            self._integrals[key] = integral
        return integral

    def predicts_failure(
        self, partition: Partition, dims: TorusDims, t0: float, t1: float
    ) -> bool:
        count = self.count_in_partition(
            self._reported_integral(dims, t0, t1), partition, dims
        )
        return count > 0

    def partition_failure_probability(
        self, partition: Partition, dims: TorusDims, t0: float, t1: float
    ) -> float:
        """Degenerate probability view: 1.0 when predicted to fail."""
        return 1.0 if self.predicts_failure(partition, dims, t0, t1) else 0.0

    def predict_failures(
        self, bases: np.ndarray, shape, dims: TorusDims, t0: float, t1: float
    ) -> np.ndarray:
        """Batch boolean responses: one gather on the reported integral.

        Consistency with the scalar path is free — the per-node Bernoulli
        draws are made once per window (in :meth:`_window`), so batch and
        scalar queries read the same reported-failure grid.
        """
        counts = self.counts_in_partitions(
            self._reported_integral(dims, t0, t1), bases, shape, dims
        )
        return counts > 0

    def partition_failure_probabilities(
        self, bases: np.ndarray, shape, dims: TorusDims, t0: float, t1: float
    ) -> np.ndarray:
        return np.where(
            self.predict_failures(bases, shape, dims, t0, t1), 1.0, 0.0
        )
