"""Degenerate predictors: perfect oracle and no-op.

These are the two endpoints of the paper's confidence/accuracy sweeps,
packaged explicitly because examples and ablations use them directly.
"""

from __future__ import annotations

import numpy as np

from repro.failures.events import FailureLog
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition
from repro.prediction.balancing import BalancingPredictor
from repro.prediction.base import PartitionFailureRule, Predictor


class PerfectPredictor(BalancingPredictor):
    """Oracle: reports every upcoming failure with probability 1."""

    def __init__(
        self,
        log: FailureLog,
        rule: PartitionFailureRule = PartitionFailureRule.MAX,
    ) -> None:
        super().__init__(log, confidence=1.0, rule=rule)


class NullPredictor(Predictor):
    """Predicts nothing, ever — the fault-oblivious baseline (``a = 0``)."""

    def partition_failure_probability(
        self, partition: Partition, dims: TorusDims, t0: float, t1: float
    ) -> float:
        return 0.0

    def predicts_failure(
        self, partition: Partition, dims: TorusDims, t0: float, t1: float
    ) -> bool:
        return False

    def partition_failure_probabilities(
        self, bases: np.ndarray, shape, dims: TorusDims, t0: float, t1: float
    ) -> np.ndarray:
        return np.zeros(bases.shape[0], dtype=np.float64)

    def predict_failures(
        self, bases: np.ndarray, shape, dims: TorusDims, t0: float, t1: float
    ) -> np.ndarray:
        return np.zeros(bases.shape[0], dtype=bool)
