"""Predictor interfaces and the partition failure-probability rules."""

from __future__ import annotations

import abc
import enum

import numpy as np

from repro.errors import PredictionError
from repro.geometry.coords import TorusDims
from repro.geometry.partition import Partition


class PartitionFailureRule(enum.Enum):
    """How per-node failure probabilities combine into a partition's
    ``P_f``.

    The paper states both forms: §4.1 uses ``max_n p_n^f`` while §5.2.1
    uses ``1 - prod_n (1 - p_n^f)``.  For the balancing predictor's 0/``a``
    output the two differ only when several flagged nodes land in one
    partition; both are implemented and ablated
    (``benchmarks/test_ablation_pf_rule.py``).
    """

    MAX = "max"
    COMPLEMENT_PRODUCT = "complement-product"


def combine_probabilities(
    confidence: float, flagged_in_partition: int, rule: PartitionFailureRule
) -> float:
    """``P_f`` for a partition containing ``flagged_in_partition`` nodes
    whose individual failure probability is ``confidence``."""
    if flagged_in_partition < 0:
        raise PredictionError("flagged node count must be >= 0")
    if flagged_in_partition == 0 or confidence == 0.0:
        return 0.0
    if rule is PartitionFailureRule.MAX:
        return confidence
    return 1.0 - (1.0 - confidence) ** flagged_in_partition


class Predictor(abc.ABC):
    """Common surface of both paper predictors.

    A predictor is queried about one *window* ``[t0, t1)`` at a time —
    the estimated execution interval of the job being placed.  Queries
    inside one scheduling pass must be mutually consistent (the
    tie-breaking predictor's random responses are cached per node and
    window), so the simulator calls :meth:`begin_pass` before each pass.
    """

    def begin_pass(self, now: float) -> None:
        """Reset per-pass caches.  Default: nothing to reset."""

    @abc.abstractmethod
    def partition_failure_probability(
        self, partition: Partition, dims: TorusDims, t0: float, t1: float
    ) -> float:
        """Estimated probability that ``partition`` fails in ``[t0, t1)``."""

    def predicts_failure(
        self, partition: Partition, dims: TorusDims, t0: float, t1: float
    ) -> bool:
        """Boolean form: does the predictor expect the partition to fail?"""
        return self.partition_failure_probability(partition, dims, t0, t1) > 0.0

    # ------------------------------------------------------------------
    # batch surface (candidate scoring hot path)
    # ------------------------------------------------------------------
    def partition_failure_probabilities(
        self,
        bases: np.ndarray,
        shape: tuple[int, int, int],
        dims: TorusDims,
        t0: float,
        t1: float,
    ) -> np.ndarray:
        """``P_f`` for many same-shape candidate partitions at once.

        ``bases`` is an ``(n, 3)`` integer array of partition bases; the
        result is the ``(n,)`` float array of per-candidate failure
        probabilities, bitwise equal to ``n`` scalar
        :meth:`partition_failure_probability` calls.  This default loops
        the scalar form (correct for any predictor); the log-peeking
        predictors override it with one vectorised box-sum gather on
        their flagged-node integral.
        """
        return np.array(
            [
                self.partition_failure_probability(
                    Partition((int(b[0]), int(b[1]), int(b[2])), shape),
                    dims,
                    t0,
                    t1,
                )
                for b in bases
            ],
            dtype=np.float64,
        )

    def predict_failures(
        self,
        bases: np.ndarray,
        shape: tuple[int, int, int],
        dims: TorusDims,
        t0: float,
        t1: float,
    ) -> np.ndarray:
        """Boolean batch form of :meth:`predicts_failure`.

        Default derives from :meth:`partition_failure_probabilities`
        (``> 0``), mirroring the scalar default; the tie-breaking
        predictor overrides both with its reported-failure integral.
        """
        return self.partition_failure_probabilities(bases, shape, dims, t0, t1) > 0.0

    @staticmethod
    def _flagged_in_partition(
        mask: np.ndarray, partition: Partition, dims: TorusDims
    ) -> int:
        """Count flagged nodes (by linear id mask) inside a partition."""
        grid = mask.reshape(dims.as_tuple())
        sel = grid[np.ix_(*partition.axis_ranges(dims))]
        return int(np.count_nonzero(sel))

    @staticmethod
    def count_in_partition(
        integral: np.ndarray, partition: Partition, dims: TorusDims
    ) -> int:
        """Flagged-node count via a wrap-pad integral (hot path: one
        scalar lookup instead of fancy indexing)."""
        from repro.geometry.torus import box_sum_at

        return box_sum_at(
            integral, dims.wrap(partition.base), partition.shape
        )

    @staticmethod
    def counts_in_partitions(
        integral: np.ndarray,
        bases: np.ndarray,
        shape: tuple[int, int, int],
        dims: TorusDims,
    ) -> np.ndarray:
        """Flagged-node counts for many same-shape partitions: one
        vectorised gather on the wrap-pad integral."""
        from repro.geometry.torus import batch_box_sums

        dims_arr = np.array(dims.as_tuple(), dtype=np.int64)
        return batch_box_sums(integral, bases % dims_arr, shape)
