"""Fault predictors.

The paper does not run a real prediction algorithm online; instead both
predictors peek at the failure log with a controlled degradation
parameter ``a`` (§4):

* :class:`BalancingPredictor` — returns failure *probability* ``a`` for a
  node with a logged failure inside the query window, else 0 (the
  *confidence* parameter of the balancing scheduler).
* :class:`TieBreakPredictor` — boolean oracle with false-negative rate
  ``1-a`` and no false positives (the *accuracy* parameter of the
  tie-breaking scheduler).
"""

from __future__ import annotations

from repro.prediction.base import PartitionFailureRule, Predictor
from repro.prediction.balancing import BalancingPredictor
from repro.prediction.tiebreak import TieBreakPredictor
from repro.prediction.perfect import PerfectPredictor, NullPredictor

__all__ = [
    "PartitionFailureRule",
    "Predictor",
    "BalancingPredictor",
    "TieBreakPredictor",
    "PerfectPredictor",
    "NullPredictor",
]
