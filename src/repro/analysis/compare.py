"""Paired policy comparison.

The statistically sound way to compare schedulers on noisy workloads is
*paired*: run both policies on the identical workload and failure trace
(same seed), difference the per-job metrics, and aggregate the deltas.
Between-seed variance — which dwarfs the policy effect at small scale —
cancels out of the pairing.  This module wraps that procedure and is
what `examples/policy_comparison.py` and ad-hoc studies should use
instead of eyeballing two independent averages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError
from repro.metrics.report import SimulationReport
from repro.metrics.timing import BoundedSlowdownRule, GAMMA_SECONDS


@dataclass(frozen=True)
class PairedComparison:
    """Per-job paired deltas between two runs of the same scenario.

    Deltas are ``candidate - baseline``: negative response/slowdown
    deltas mean the candidate policy served jobs faster.
    """

    baseline_policy: str
    candidate_policy: str
    n_jobs: int
    mean_response_delta: float
    mean_slowdown_delta: float
    jobs_improved: int       # candidate strictly faster (response)
    jobs_regressed: int      # candidate strictly slower
    kills_delta: int         # candidate kills - baseline kills
    lost_work_delta: float   # node-seconds
    utilized_delta: float

    @property
    def jobs_unchanged(self) -> int:
        return self.n_jobs - self.jobs_improved - self.jobs_regressed

    def summary(self) -> str:
        if abs(self.mean_response_delta) < 0.5:
            sign = "matches"
        elif self.mean_response_delta < 0:
            sign = "improves"
        else:
            sign = "regresses"
        return (
            f"{self.candidate_policy} vs {self.baseline_policy}: "
            f"{sign} mean response by {abs(self.mean_response_delta):.0f}s "
            f"({self.jobs_improved} jobs faster / {self.jobs_regressed} slower "
            f"of {self.n_jobs}); kills {self.kills_delta:+d}, "
            f"slowdown delta {self.mean_slowdown_delta:+.2f}, "
            f"utilization {self.utilized_delta:+.3f}"
        )


def compare_reports(
    baseline: SimulationReport,
    candidate: SimulationReport,
    gamma: float = GAMMA_SECONDS,
    rule: BoundedSlowdownRule = BoundedSlowdownRule.STANDARD,
    response_tolerance_s: float = 1.0,
) -> PairedComparison:
    """Pair two reports job-by-job and aggregate the deltas.

    Both reports must cover the same job set (same workload); run them
    with identical seeds so the pairing actually cancels the shared
    randomness.
    """
    base = {r.job_id: r for r in baseline.records}
    cand = {r.job_id: r for r in candidate.records}
    if set(base) != set(cand):
        raise ExperimentError(
            "paired comparison needs identical job sets "
            f"({len(base)} vs {len(cand)} jobs, "
            f"{len(set(base) ^ set(cand))} mismatched ids)"
        )
    if not base:
        raise ExperimentError("cannot compare empty reports")
    response_deltas = []
    slowdown_deltas = []
    improved = regressed = 0
    for job_id, b in base.items():
        c = cand[job_id]
        d_resp = c.response - b.response
        response_deltas.append(d_resp)
        slowdown_deltas.append(c.slowdown(gamma, rule) - b.slowdown(gamma, rule))
        if d_resp < -response_tolerance_s:
            improved += 1
        elif d_resp > response_tolerance_s:
            regressed += 1
    n = len(base)
    return PairedComparison(
        baseline_policy=baseline.policy,
        candidate_policy=candidate.policy,
        n_jobs=n,
        mean_response_delta=math.fsum(response_deltas) / n,
        mean_slowdown_delta=math.fsum(slowdown_deltas) / n,
        jobs_improved=improved,
        jobs_regressed=regressed,
        kills_delta=candidate.counters.job_kills - baseline.counters.job_kills,
        lost_work_delta=(
            candidate.timing.total_lost_work - baseline.timing.total_lost_work
        ),
        utilized_delta=candidate.capacity.utilized - baseline.capacity.utilized,
    )


def mean_paired_comparison(
    comparisons: Sequence[PairedComparison],
) -> PairedComparison:
    """Average paired comparisons across seeds (same policy pair)."""
    if not comparisons:
        raise ExperimentError("need at least one comparison")
    first = comparisons[0]
    for c in comparisons[1:]:
        if (c.baseline_policy, c.candidate_policy) != (
            first.baseline_policy,
            first.candidate_policy,
        ):
            raise ExperimentError("comparisons mix different policy pairs")
    n = len(comparisons)
    return PairedComparison(
        baseline_policy=first.baseline_policy,
        candidate_policy=first.candidate_policy,
        n_jobs=round(sum(c.n_jobs for c in comparisons) / n),
        mean_response_delta=math.fsum(c.mean_response_delta for c in comparisons) / n,
        mean_slowdown_delta=math.fsum(c.mean_slowdown_delta for c in comparisons) / n,
        jobs_improved=round(sum(c.jobs_improved for c in comparisons) / n),
        jobs_regressed=round(sum(c.jobs_regressed for c in comparisons) / n),
        kills_delta=round(sum(c.kills_delta for c in comparisons) / n),
        lost_work_delta=math.fsum(c.lost_work_delta for c in comparisons) / n,
        utilized_delta=math.fsum(c.utilized_delta for c in comparisons) / n,
    )
