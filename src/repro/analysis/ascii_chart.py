"""Terminal-friendly charts for figure series and histograms.

The benchmark harness prints its series as tables; these renderers add
a quick visual: a multi-series line chart and a histogram, pure ASCII,
no plotting stack.  Used by ``bgl-sim figure --chart`` and the figure
result files.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ExperimentError

_MARKERS = "ox+*#@%&"


def render_series(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render ``label -> [(x, y), ...]`` as an ASCII line chart.

    Every series shares the axes; each gets the next marker character.
    Returns the chart as a string (no trailing newline).
    """
    if not series:
        raise ExperimentError("render_series needs at least one series")
    if width < 8 or height < 4:
        raise ExperimentError("chart too small to render")
    points = [(x, y) for rows in series.values() for x, y in rows]
    if not points:
        raise ExperimentError("render_series needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, rows), marker in zip(series.items(), _MARKERS):
        for x, y in rows:
            if math.isnan(x) or math.isnan(y):
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_label_hi = f"{y_hi:.3g}"
    y_label_lo = f"{y_lo:.3g}"
    pad = max(len(y_label_hi), len(y_label_lo))
    for i, row in enumerate(grid):
        label = y_label_hi if i == 0 else (y_label_lo if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    left, right = f"{x_lo:.4g}", f"{x_hi:.4g}"
    gap = max(1, width - len(left) - len(right))
    lines.append(" " * pad + "  " + left + " " * gap + right)
    legend = "   ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)


def render_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 48,
    title: str = "",
    log_bins: bool = False,
) -> str:
    """Render a horizontal-bar histogram of ``values``.

    ``log_bins`` uses geometric bin edges — the right view for
    slowdown/wait distributions, which span orders of magnitude.
    """
    if bins < 1:
        raise ExperimentError("need at least one bin")
    values = [v for v in values if not math.isnan(v)]
    if not values:
        raise ExperimentError("render_histogram needs at least one value")
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    if log_bins:
        if lo <= 0:
            lo = min(v for v in values if v > 0) if any(v > 0 for v in values) else 1.0
        edges = [lo * (hi / lo) ** (i / bins) for i in range(bins + 1)]
    else:
        edges = [lo + (hi - lo) * i / bins for i in range(bins + 1)]
    counts = [0] * bins
    for v in values:
        for i in range(bins):
            if v <= edges[i + 1] or i == bins - 1:
                counts[i] += 1
                break
    peak = max(counts)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * (round(count / peak * width) if peak else 0)
        lines.append(f"{edges[i]:>10.3g} - {edges[i+1]:<10.3g} |{bar} {count}")
    return "\n".join(lines)
