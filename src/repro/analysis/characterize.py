"""Workload and failure-trace characterisation.

EXPERIMENTS.md compares the synthetic traces against the published
properties of the archive logs they stand in for; these profiles
compute exactly the quantities quoted there (size mix, runtime
percentiles, diurnal arrival concentration, burst structure).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.failures.events import FailureLog
from repro.workloads.job import Workload
from repro.workloads.models import DAY
from repro.workloads.scaling import offered_load


@dataclass(frozen=True)
class WorkloadProfile:
    """Summary statistics of a workload trace."""

    name: str
    n_jobs: int
    machine_nodes: int
    span_days: float
    offered_load: float
    mean_size: float
    power_of_two_share: float
    unit_job_share: float
    runtime_p50: float
    runtime_p95: float
    mean_overestimate: float
    daytime_arrival_share: float

    def __str__(self) -> str:  # pragma: no cover - display sugar
        return (
            f"{self.name}: {self.n_jobs} jobs / {self.span_days:.1f} d, "
            f"load={self.offered_load:.2f}, mean size={self.mean_size:.1f}, "
            f"p2-share={self.power_of_two_share:.2f}"
        )


def characterize_workload(workload: Workload) -> WorkloadProfile:
    """Compute a :class:`WorkloadProfile` for a trace."""
    if len(workload) == 0:
        return WorkloadProfile(workload.name, 0, workload.machine_nodes,
                               0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0)
    sizes = np.array([j.size for j in workload], dtype=np.float64)
    runtimes = np.array([j.runtime for j in workload])
    estimates = np.array([j.estimate for j in workload])
    arrivals = np.array([j.arrival for j in workload])
    p2 = np.array([int(s) & (int(s) - 1) == 0 for s in sizes])
    # "Daytime": arrival phase within 08:00-20:00 of the diurnal cycle.
    phase = (arrivals % DAY) / DAY
    daytime = ((phase >= 8 / 24) & (phase < 20 / 24)).mean()
    return WorkloadProfile(
        name=workload.name,
        n_jobs=len(workload),
        machine_nodes=workload.machine_nodes,
        span_days=workload.span / DAY,
        offered_load=offered_load(workload),
        mean_size=float(sizes.mean()),
        power_of_two_share=float(p2.mean()),
        unit_job_share=float((sizes == 1).mean()),
        runtime_p50=float(np.percentile(runtimes, 50)),
        runtime_p95=float(np.percentile(runtimes, 95)),
        mean_overestimate=float((estimates / runtimes).mean()),
        daytime_arrival_share=float(daytime),
    )


@dataclass(frozen=True)
class FailureProfile:
    """Summary statistics of a failure trace."""

    n_events: int
    n_nodes: int
    span_days: float
    failures_per_machine_day: float
    n_bursts: int
    mean_burst_size: float
    max_burst_size: int
    distinct_nodes: int
    top_node_share: float  # share of events on the single flakiest node

    def __str__(self) -> str:  # pragma: no cover - display sugar
        return (
            f"{self.n_events} events / {self.span_days:.1f} d "
            f"({self.failures_per_machine_day:.2f}/day), "
            f"{self.n_bursts} bursts (mean {self.mean_burst_size:.1f})"
        )


def characterize_failures(
    log: FailureLog, burst_gap_s: float = 600.0
) -> FailureProfile:
    """Compute a :class:`FailureProfile`.

    Events closer than ``burst_gap_s`` to their predecessor belong to
    the same burst — the clustering statistic behind the paper's
    slowdown-saturation explanation (§7.1).
    """
    n = len(log)
    if n == 0:
        return FailureProfile(0, log.n_nodes, 0.0, 0.0, 0, 0.0, 0, 0, 0.0)
    gaps = np.diff(log.times)
    burst_breaks = int((gaps > burst_gap_s).sum())
    n_bursts = burst_breaks + 1
    # burst sizes from break positions
    sizes = np.diff(np.concatenate(([0], np.nonzero(gaps > burst_gap_s)[0] + 1, [n])))
    counts = log.per_node_counts()
    span_days = log.span / DAY if log.span > 0 else 0.0
    per_day = n / span_days if span_days > 0 else math.inf
    return FailureProfile(
        n_events=n,
        n_nodes=log.n_nodes,
        span_days=span_days,
        failures_per_machine_day=per_day if span_days > 0 else 0.0,
        n_bursts=n_bursts,
        mean_burst_size=float(sizes.mean()),
        max_burst_size=int(sizes.max()),
        distinct_nodes=int((counts > 0).sum()),
        top_node_share=float(counts.max()) / n,
    )
