"""Machine-state timelines reconstructed from job records.

A :class:`~repro.metrics.report.SimulationReport` carries per-job
start/finish times; from those (plus arrivals) we can rebuild
piecewise-constant traces of queue length and busy nodes without
re-running the simulation.  The traces are approximate where restarts
occurred (only the final execution of each job is recorded) — exact
enough for the visual sanity checks and utilization cross-checks they
exist for, and the deviation is bounded by the recorded lost work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.metrics.timing import JobRecord


class TimelineKind(enum.Enum):
    """What happened at a timeline event."""

    ARRIVAL = "arrival"
    START = "start"
    FINISH = "finish"


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One reconstructed state change."""

    time: float
    kind: TimelineKind
    job_id: int
    size: int


def build_timeline(records: Sequence[JobRecord]) -> list[TimelineEvent]:
    """Chronological arrival/start/finish events for completed jobs."""
    events: list[TimelineEvent] = []
    for r in records:
        events.append(TimelineEvent(r.arrival, TimelineKind.ARRIVAL, r.job_id, r.size))
        events.append(TimelineEvent(r.start, TimelineKind.START, r.job_id, r.size))
        events.append(TimelineEvent(r.finish, TimelineKind.FINISH, r.job_id, r.size))
    events.sort(key=lambda e: (e.time, e.kind.value, e.job_id))
    return events


def queue_length_trace(records: Sequence[JobRecord]) -> list[tuple[float, int]]:
    """Piecewise-constant number of waiting jobs over time.

    A job waits from its arrival until its (final) start; restart waits
    in between are folded into that interval, which matches how the
    response-time metrics account them.
    """
    trace: list[tuple[float, int]] = []
    waiting = 0
    for event in build_timeline(records):
        if event.kind is TimelineKind.ARRIVAL:
            waiting += 1
        elif event.kind is TimelineKind.START:
            waiting -= 1
        else:
            continue
        if trace and trace[-1][0] == event.time:
            trace[-1] = (event.time, waiting)
        else:
            trace.append((event.time, waiting))
    return trace


def busy_nodes_trace(records: Sequence[JobRecord]) -> list[tuple[float, int]]:
    """Piecewise-constant busy-node count over time (final executions)."""
    trace: list[tuple[float, int]] = []
    busy = 0
    for event in build_timeline(records):
        if event.kind is TimelineKind.START:
            busy += event.size
        elif event.kind is TimelineKind.FINISH:
            busy -= event.size
        else:
            continue
        if trace and trace[-1][0] == event.time:
            trace[-1] = (event.time, busy)
        else:
            trace.append((event.time, busy))
    return trace


def peak_queue_length(records: Sequence[JobRecord]) -> int:
    """Maximum simultaneous waiting jobs."""
    trace = queue_length_trace(records)
    return max((q for _, q in trace), default=0)


def mean_busy_nodes(records: Sequence[JobRecord]) -> float:
    """Time-averaged busy nodes over [first arrival, last finish].

    Cross-checks ω_util: for failure-free runs
    ``mean_busy / N == utilized`` exactly.
    """
    if not records:
        return 0.0
    trace = busy_nodes_trace(records)
    start = min(r.arrival for r in records)
    end = max(r.finish for r in records)
    if end <= start:
        return 0.0
    total = 0.0
    last_t, last_v = start, 0
    for t, v in trace:
        total += (t - last_t) * last_v
        last_t, last_v = t, v
    total += (end - last_t) * last_v
    return total / (end - start)
