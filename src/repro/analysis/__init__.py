"""Post-simulation analysis: distributions, timelines and trace stats.

The paper reports averages; real scheduler studies need distributions
(slowdown is famously heavy-tailed), per-class breakdowns and
machine-state timelines to explain *why* a policy wins.  This package
provides those tools over :class:`~repro.metrics.report.SimulationReport`
objects plus characterisation reports for workloads and failure logs —
the summaries EXPERIMENTS.md quotes when comparing synthetic traces to
the archive logs' published properties.
"""

from __future__ import annotations

from repro.analysis.distributions import (
    DistributionSummary,
    slowdown_distribution,
    wait_distribution,
    response_distribution,
    per_size_class_summary,
)
from repro.analysis.timeline import (
    TimelineEvent,
    build_timeline,
    queue_length_trace,
    busy_nodes_trace,
)
from repro.analysis.characterize import (
    WorkloadProfile,
    FailureProfile,
    characterize_workload,
    characterize_failures,
)
from repro.analysis.ascii_chart import render_series, render_histogram
from repro.analysis.compare import (
    PairedComparison,
    compare_reports,
    mean_paired_comparison,
)

__all__ = [
    "PairedComparison",
    "compare_reports",
    "mean_paired_comparison",
    "DistributionSummary",
    "slowdown_distribution",
    "wait_distribution",
    "response_distribution",
    "per_size_class_summary",
    "TimelineEvent",
    "build_timeline",
    "queue_length_trace",
    "busy_nodes_trace",
    "WorkloadProfile",
    "FailureProfile",
    "characterize_workload",
    "characterize_failures",
    "render_series",
    "render_histogram",
]
