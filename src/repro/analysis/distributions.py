"""Distributional views of per-job metrics.

Average bounded slowdown — the paper's headline metric — hides a very
heavy tail: a handful of short jobs stuck behind restarted giants can
dominate it.  These helpers expose the full distribution (percentiles,
tail mass) and per-size-class breakdowns so a policy comparison can say
*which* jobs a scheduler helped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.metrics.timing import (
    BoundedSlowdownRule,
    GAMMA_SECONDS,
    JobRecord,
)

#: Default percentiles reported by :class:`DistributionSummary`.
PERCENTILES = (10, 25, 50, 75, 90, 95, 99)


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of one per-job metric."""

    metric: str
    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    percentiles: dict[int, float]

    @classmethod
    def from_values(cls, metric: str, values: Sequence[float]) -> "DistributionSummary":
        if len(values) == 0:
            return cls(metric, 0, 0.0, 0.0, 0.0, 0.0, {p: 0.0 for p in PERCENTILES})
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            metric=metric,
            n=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            percentiles={p: float(np.percentile(arr, p)) for p in PERCENTILES},
        )

    def tail_share(self) -> float:
        """Fraction of the metric's total mass above the 90th percentile
        — a heavy-tail indicator (10% of jobs holding >> 10% of mass)."""
        if self.n == 0 or self.mean == 0:
            return 0.0
        p90 = self.percentiles[90]
        # mean * n is the total; approximate the tail by the summary we
        # have: callers needing exact mass should use raw values.
        return max(0.0, 1.0 - p90 / max(self.maximum, 1e-12)) if self.maximum else 0.0

    def __str__(self) -> str:  # pragma: no cover - display sugar
        ps = " ".join(f"p{p}={v:.1f}" for p, v in self.percentiles.items())
        return f"{self.metric}: n={self.n} mean={self.mean:.2f} {ps}"


def _distribution(
    records: Sequence[JobRecord], metric: str, get: Callable[[JobRecord], float]
) -> DistributionSummary:
    return DistributionSummary.from_values(metric, [get(r) for r in records])


def slowdown_distribution(
    records: Sequence[JobRecord],
    gamma: float = GAMMA_SECONDS,
    rule: BoundedSlowdownRule = BoundedSlowdownRule.STANDARD,
) -> DistributionSummary:
    """Distribution of bounded slowdown over completed jobs."""
    return _distribution(
        records, "bounded_slowdown", lambda r: r.slowdown(gamma, rule)
    )


def wait_distribution(records: Sequence[JobRecord]) -> DistributionSummary:
    """Distribution of wait time (arrival → final start)."""
    return _distribution(records, "wait_s", lambda r: r.wait)


def response_distribution(records: Sequence[JobRecord]) -> DistributionSummary:
    """Distribution of response time (arrival → finish)."""
    return _distribution(records, "response_s", lambda r: r.response)


#: Size classes used by :func:`per_size_class_summary` (inclusive upper
#: bounds in supernodes, mirroring common workload-study buckets).
SIZE_CLASSES = ((1, "1"), (4, "2-4"), (16, "5-16"), (64, "17-64"), (128, "65-128"))


def per_size_class_summary(
    records: Sequence[JobRecord],
    gamma: float = GAMMA_SECONDS,
    rule: BoundedSlowdownRule = BoundedSlowdownRule.STANDARD,
) -> dict[str, DistributionSummary]:
    """Slowdown distributions bucketed by job size class.

    Small jobs feel queueing (and thus failures of *other* jobs) most;
    large jobs feel their own restarts.  This split shows both.
    """
    buckets: dict[str, list[float]] = {label: [] for _, label in SIZE_CLASSES}
    for r in records:
        for bound, label in SIZE_CLASSES:
            if r.size <= bound:
                buckets[label].append(r.slowdown(gamma, rule))
                break
        else:
            raise SimulationError(f"job size {r.size} exceeds the largest class")
    return {
        label: DistributionSummary.from_values(f"slowdown[{label}]", values)
        for label, values in buckets.items()
        if values
    }
