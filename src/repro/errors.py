"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause while unit
tests can assert on the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GeometryError(ReproError):
    """Invalid torus geometry: bad dimensions, coordinates or shapes."""


class AllocationError(ReproError):
    """Illegal allocation request (overlap, unknown job, bad partition)."""


class PartitionOverlapError(AllocationError):
    """Attempted to allocate a partition overlapping an occupied node."""


class UnknownJobError(AllocationError):
    """Referenced a job id that holds no allocation on the torus."""


class WorkloadError(ReproError):
    """Malformed workload trace or invalid workload-model parameters."""


class FailureModelError(ReproError):
    """Invalid failure log or failure-generator parameters."""


class PredictionError(ReproError):
    """Invalid predictor configuration or query."""


class SimulationError(ReproError):
    """Inconsistent simulator state or invalid simulation configuration."""


class ExperimentError(ReproError):
    """Invalid experiment specification in the benchmark harness."""


class SWFParseError(WorkloadError, ExperimentError):
    """A Standard Workload Format file could not be parsed.

    Doubles as an :class:`ExperimentError` because a bad trace is an
    experiment-input problem: CLI surfaces that catch experiment errors
    report the offending line number instead of a raw traceback.
    """


class ServeError(ReproError):
    """Scheduler-service failure: bad session state or transport fault."""


class ProtocolError(ServeError):
    """Malformed or unsupported message on the service wire protocol."""


class ResilienceError(ReproError):
    """Invalid resilience configuration (checkpoint store, retry policy)."""


class CellTimeoutError(ResilienceError):
    """A sweep cell exceeded its :class:`~repro.resilience.RetryPolicy`
    per-cell timeout and was aborted; the cell is retried or
    quarantined, never silently dropped."""


class ChaosError(ReproError):
    """A failure injected by the :mod:`repro.resilience.chaos` layer.

    Raised only when a :class:`~repro.resilience.ChaosConfig` explicitly
    schedules an in-cell fault; never seen in production runs (chaos is
    off by default)."""


class OracleError(ReproError):
    """A runtime correctness oracle (:mod:`repro.testing`) detected a
    violation of a simulator invariant."""


class InvariantViolationError(OracleError):
    """Machine state disagrees with itself: occupancy grid, allocation
    map, free counts or event ordering are inconsistent."""


class CrossValidationError(OracleError):
    """Two independent implementations that must agree produced
    different answers (e.g. the three partition finders)."""
