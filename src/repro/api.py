"""High-level one-call entry points.

These wrap the full pipeline — synthesize (or load) a workload, generate
a matched failure log, build a policy, run the simulator — behind two
functions.  The experiment harness in :mod:`repro.experiments` is built
on the same :class:`SimulationSetup`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.core.config import SimulationConfig
from repro.core.policies.registry import make_policy
from repro.core.simulator import Simulator, simulate
from repro.failures.events import FailureLog
from repro.failures.synthetic import BurstFailureModel, generate_failures
from repro.geometry.coords import BGL_SUPERNODE_DIMS
from repro.metrics.report import SimulationReport
from repro.prediction.base import PartitionFailureRule
from repro.workloads.job import Workload
from repro.workloads.models import site_model
from repro.workloads.scaling import fit_to_machine, scale_load
from repro.workloads.synthetic import generate_workload


@dataclass(frozen=True)
class SimulationSetup:
    """A fully-specified experiment point.

    Parameters mirror the paper's sweep axes: workload site, job count,
    load scale ``c``, failure count, policy and its prediction parameter
    ``a`` (confidence for balancing, accuracy for tie-break).
    """

    site: str = "sdsc"
    n_jobs: int = 1000
    load_scale: float = 1.0
    n_failures: int = 1000
    policy: str = "balancing"
    parameter: float = 0.0
    pf_rule: PartitionFailureRule = PartitionFailureRule.MAX
    seed: int = 0
    failure_model: BurstFailureModel = field(default_factory=BurstFailureModel)
    config: SimulationConfig = field(default_factory=SimulationConfig)

    def build_workload(self) -> Workload:
        """Synthesize, load-scale and machine-fit the workload."""
        model = site_model(self.site)
        workload = generate_workload(model, self.n_jobs, seed=self.seed)
        workload = scale_load(workload, self.load_scale)
        return fit_to_machine(workload, self.config.dims)

    def build_failures(self, workload: Workload) -> FailureLog:
        """Failure log spanning the workload (plus tail slack for jobs
        still running after the last arrival)."""
        horizon = max(workload.span * 1.5, 3600.0)
        return generate_failures(
            self.config.dims,
            self.n_failures,
            horizon,
            model=self.failure_model,
            seed=self.seed + 1,  # decorrelated from the workload draw
        )

    def build_simulator(self, recorder=None) -> Simulator:
        """Assemble the full pipeline into a ready-to-run simulator.

        Exposed so callers that need the engine's observability surfaces
        (``Simulator.recorder``, ``Simulator.metrics``) — the traced CLI
        run, the obs test suites — share the exact seeding conventions
        of :meth:`run`.
        """
        workload = self.build_workload()
        failures = self.build_failures(workload)
        policy = make_policy(
            self.policy,
            failure_log=failures,
            parameter=self.parameter,
            pf_rule=self.pf_rule,
            seed=self.seed + 2,
        )
        return Simulator(
            workload, failures, policy, self.config, recorder=recorder
        )

    def run(self) -> SimulationReport:
        """Execute this experiment point."""
        report = self.build_simulator().run()
        report.parameters.update(
            site=self.site,
            n_jobs=self.n_jobs,
            load_scale=self.load_scale,
            parameter=self.parameter,
            seed=self.seed,
        )
        return report


def run_simulation(setup: SimulationSetup) -> SimulationReport:
    """Run one fully-specified experiment point."""
    return setup.run()


def resilient_sweep(
    points,
    seeds=(0, 1, 2),
    *,
    checkpoint_dir,
    workers: int | None = None,
    retry=None,
    chaos=None,
    resume: bool = True,
    failure_model: BurstFailureModel | None = None,
):
    """Checkpointed, retrying sweep in one call.

    Persists every completed ``(point, seed)`` cell under
    ``checkpoint_dir`` (atomic, content-addressed, schema-versioned), so
    a killed run re-invoked with the same arguments resumes where it
    stopped and produces results bitwise-identical to an uninterrupted
    run.  Worker crashes are retried under ``retry`` (a
    :class:`~repro.resilience.RetryPolicy`, defaulted when ``None``) and
    persistently failing cells are quarantined into
    ``<checkpoint_dir>/quarantine.json`` instead of aborting the sweep.

    Returns a :class:`~repro.resilience.ResilientSweepOutcome`:
    ``.results`` (one per point, ``None`` only if every seed was
    quarantined), ``.quarantined`` and ``.stats``.
    """
    from repro.experiments.sweep import run_sweep_outcome

    return run_sweep_outcome(
        points,
        seeds,
        failure_model,
        workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        chaos=chaos,
        resume=resume,
    )


def queue_sweep(
    points,
    seeds=(0, 1, 2),
    *,
    queue_dir,
    workers: int = 2,
    lease_s: float | None = None,
    spawn_workers: bool = True,
    failure_model: BurstFailureModel | None = None,
):
    """Multi-host sweep through a shared-directory work queue, one call.

    Enqueues every not-yet-checkpointed ``(point, seed)`` cell into
    ``queue_dir`` under its content-addressed key, optionally spawns
    ``workers`` local ``sweep-worker`` processes (set
    ``spawn_workers=False`` when workers were started elsewhere — any
    host sharing the directory, via ``bgl-sim sweep-worker``), reclaims
    expired claims, and merges completed checkpoints through the
    verified resume path — results are bitwise-identical to a serial
    run of the same grid, including across driver restarts and worker
    crashes.  See :mod:`repro.experiments.queue` for the protocol.
    """
    from repro.experiments.queue import DEFAULT_LEASE_S, run_queue_sweep

    return run_queue_sweep(
        points,
        seeds,
        failure_model,
        queue_dir=queue_dir,
        workers=workers,
        lease_s=lease_s if lease_s is not None else DEFAULT_LEASE_S,
        spawn_workers=spawn_workers,
    )


def quick_simulate(
    site: str = "sdsc",
    n_jobs: int = 500,
    n_failures: int = 500,
    policy: str = "balancing",
    confidence: float = 0.1,
    load_scale: float = 1.0,
    seed: int = 0,
    config: SimulationConfig | None = None,
) -> SimulationReport:
    """One-liner used by the README quickstart.

    ``confidence`` is the paper's ``a`` (accuracy when
    ``policy='tiebreak'``, ignored by ``'krevat'``).
    """
    if n_jobs < 0 or n_failures < 0:
        raise SimulationError("n_jobs and n_failures must be >= 0")
    setup = SimulationSetup(
        site=site,
        n_jobs=n_jobs,
        n_failures=n_failures,
        policy=policy,
        parameter=confidence,
        load_scale=load_scale,
        seed=seed,
        config=config or SimulationConfig(),
    )
    return setup.run()


def serve(setup: SimulationSetup | None = None, **engine_kwargs):
    """Build a ready-to-serve scheduler engine for ``setup``.

    The engine runs the same pipeline as :meth:`SimulationSetup.run`
    against an open-ended arrival stream: pair it with
    :func:`connect` for in-process use, or hand it to
    :class:`repro.serve.SchedulerService` /
    :func:`repro.serve.service.run_service` to expose it over TCP or a
    unix socket.  Keyword arguments (``clock``, ``weights``,
    ``tenant_cap``, ``engine_cap``, ``pump_interval``, ``recorder``)
    pass through to :class:`repro.serve.ServeEngine`.
    """
    from repro.serve.engine import ServeEngine

    return ServeEngine.from_setup(setup or SimulationSetup(), **engine_kwargs)


def connect(target, timeout: float = 30.0):
    """Open a scheduler-service client.

    ``target`` may be a ``host:port`` string, a unix-socket path, or an
    engine built by :func:`serve` (zero-transport in-process client).
    """
    from repro.serve.client import connect as _connect

    return _connect(target, timeout=timeout)
