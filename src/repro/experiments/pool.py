"""Persistent warm worker pool with shared-memory payload shipping.

The cold :class:`~concurrent.futures.ProcessPoolExecutor` path that
PR 2 introduced pays three taxes on every ``run_sweep`` call: pool
spawn, per-worker regeneration of the expensive per-seed inputs
(workload draw, master failure log), and re-pickling of those inputs'
derivatives with every chunk.  On small-to-medium grids those taxes
exceeded the parallel win — the committed ``BENCH_core.json`` had
``sweep_parallel`` *losing* to ``sweep_serial``.  This module removes
all three:

* **Warm pool** — one forked :class:`WarmPool` per process lifetime,
  reused across ``run_sweep`` calls (``pool.warm.spawn`` vs
  ``pool.warm.reuse`` counters tell the story).  A broken pool is
  respawned on next use; an ``atexit`` hook reaps it.
* **Shared-memory arenas** — the parent builds each seed's workload and
  master failure log exactly once, pickles them once into a
  :class:`SharedArena` (``multiprocessing.shared_memory``, falling back
  to a memory-mapped temp file where POSIX shared memory is
  unavailable), and ships only the tiny :class:`ArenaHandle` with each
  chunk.  Workers attach, install the entries straight into the
  module-level caches in :mod:`repro.experiments.sweep`, and from then
  on every cell of that seed is a cache hit — a serialized-once,
  attach-many protocol.  Arenas are built *per seed group* and chunks
  are submitted as soon as their seed's arena exists, so input
  generation for seed *k+1* overlaps cell execution for seed *k*.
* **Adaptive chunking** — the measured per-cell cost of previous warm
  sweeps (an EMA fed back through ``SweepRunStats``) sizes chunks to a
  wall-clock target: cheap cells get big chunks to amortise IPC,
  expensive cells get small ones to load-balance.

Determinism contract: workers run the exact objects the parent built
(the arena *is* the parent's cache image), through the same
:func:`~repro.experiments.sweep.simulate_cell` the serial path uses, and
the parent reassembles results keyed by cell index — so warm-pool
results remain bitwise identical to serial ones.
"""

from __future__ import annotations

import atexit
import math
import mmap
import multiprocessing
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError
from repro.experiments import sweep as sweep_mod
from repro.failures.synthetic import BurstFailureModel
from repro.obs.log import get_logger
from repro.obs.metrics import count_active

logger = get_logger(__name__)

#: Wall-clock target per warm chunk once a per-cell cost estimate
#: exists: big enough to amortise submit/result IPC, small enough that a
#: straggler chunk cannot idle the other workers for long.
TARGET_CHUNK_S = 0.25

#: Upper bound on chunks per worker when no cost estimate exists yet
#: (mirrors the cold path's constant).
_CHUNKS_PER_WORKER = 4

#: EMA weight of the newest per-cell cost measurement.
_EMA_ALPHA = 0.5

#: Worker-side cache entries kept before the sweep caches are cleared on
#: the next arena install — bounds memory in long-lived warm workers.
_MAX_WORKER_CACHE_ENTRIES = 64


# ----------------------------------------------------------------------
# shared-memory arena: serialized once, attached many times
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ArenaHandle:
    """Picklable reference to one arena; tiny, shipped with every chunk.

    ``generation`` is unique per arena within the parent process, so a
    worker can recognise an arena it has already installed and skip the
    attach entirely.
    """

    backend: str  # "shm" | "file"
    name: str     # shared-memory segment name or file path
    size: int
    generation: int


class SharedArena:
    """One write-once blob shared with every pool worker.

    Backend ``"shm"`` uses ``multiprocessing.shared_memory`` (pure
    memory, no disk); backend ``"file"`` memory-maps a temp file —
    functionally identical (the page cache is shared across attaches)
    and available on platforms without POSIX shared memory.  Creation
    falls back from shm to file automatically.
    """

    def __init__(self, payload: bytes, generation: int, backend: str | None = None):
        backend = backend or os.environ.get("REPRO_ARENA_BACKEND") or "shm"
        self._shm = None
        self._path = None
        if backend == "shm":
            try:
                from multiprocessing import shared_memory

                self._shm = shared_memory.SharedMemory(
                    create=True, size=max(1, len(payload))
                )
                self._shm.buf[: len(payload)] = payload
                name = self._shm.name
            except (ImportError, OSError) as exc:
                logger.info(
                    "shared_memory unavailable (%s); falling back to "
                    "memory-mapped file arena",
                    exc,
                )
                backend = "file"
        if backend == "file":
            fd, path = tempfile.mkstemp(prefix="repro-arena-", suffix=".bin")
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            self._path = path
            name = path
        elif backend != "shm":
            raise ExperimentError(f"unknown arena backend {backend!r}")
        self.handle = ArenaHandle(
            backend=backend, name=name, size=len(payload), generation=generation
        )
        count_active("pool.warm.arena.created")
        count_active("pool.warm.arena.bytes", len(payload))
        _live_arenas.add(self)

    def unlink(self) -> None:
        """Release the arena; safe to call more than once.

        Must only run after every future that references the handle has
        completed — a worker cannot attach an unlinked arena.
        """
        _live_arenas.discard(self)
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
            self._shm = None
        if self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:  # pragma: no cover
                pass
            self._path = None


#: Arenas not yet unlinked, reaped by the atexit hook if a sweep dies
#: between creation and its ``finally`` cleanup.
_live_arenas: set[SharedArena] = set()


def _read_arena(handle: ArenaHandle) -> bytes:
    """Worker-side attach-and-copy of an arena's payload."""
    if handle.backend == "shm":
        from multiprocessing import shared_memory

        # Attaching re-registers the segment with the resource tracker,
        # but forked workers share the parent's tracker process and
        # registration is idempotent there, so the parent's unlink()
        # remains the single deregistration.  (Python 3.13's
        # ``track=False`` makes this explicit; under fork the shared
        # tracker already gives the same behaviour.)
        shm = shared_memory.SharedMemory(name=handle.name, create=False)
        try:
            return bytes(shm.buf[: handle.size])
        finally:
            shm.close()
    if handle.backend == "file":
        with open(handle.name, "rb") as fh:
            if handle.size == 0:
                return b""
            with mmap.mmap(fh.fileno(), handle.size, access=mmap.ACCESS_READ) as mapped:
                return bytes(mapped[: handle.size])
    raise ExperimentError(f"unknown arena backend {handle.backend!r}")


# ----------------------------------------------------------------------
# worker-side entry points
# ----------------------------------------------------------------------

#: Generations this worker process has already installed.
_installed_generations: set[int] = set()


def _install_arena(handle: ArenaHandle) -> None:
    """Attach one arena and prime the sweep caches from it (idempotent).

    The arena is literally a pre-warmed image of the parent's
    workload/master-log caches, so after installation every cell of the
    shipped seed group hits the same objects the serial path would have
    built — the root of the bitwise-identity guarantee.
    """
    if handle.generation in _installed_generations:
        return
    tables = pickle.loads(_read_arena(handle))
    # The master-log guard in _failures_for compares against this
    # module constant; keep the worker consistent with the parent that
    # generated the shipped logs.
    sweep_mod.MASTER_FAILURE_COUNT = tables["master_failure_count"]
    if (
        len(sweep_mod._workload_cache) > _MAX_WORKER_CACHE_ENTRIES
        or len(sweep_mod._master_log_cache) > _MAX_WORKER_CACHE_ENTRIES
    ):
        sweep_mod._workload_cache.clear()
        sweep_mod._master_log_cache.clear()
    sweep_mod._workload_cache.update(tables["workloads"])
    sweep_mod._master_log_cache.update(tables["masters"])
    _installed_generations.add(handle.generation)
    count_active("pool.warm.arena.installs")


def _warm_run_chunk(
    handle: ArenaHandle,
    chunk: Sequence[tuple[tuple[int, int], "sweep_mod.SweepPoint", int]],
    model: BurstFailureModel,
    with_obs: bool,
):
    """Warm-path worker entry point: install the arena, run the cells."""
    _install_arena(handle)
    out = []
    for cell_id, point, seed in chunk:
        if with_obs:
            report, obs = sweep_mod.simulate_cell_obs(point, seed, model)
        else:
            report, obs = sweep_mod.simulate_cell(point, seed, model), None
        out.append((cell_id, report, obs))
    return out


# ----------------------------------------------------------------------
# parent-side arena construction
# ----------------------------------------------------------------------

def build_seed_arena(
    points: Sequence["sweep_mod.SweepPoint"],
    pending: Sequence[int],
    seed: int,
    model: BurstFailureModel,
    generation: int,
    shipped: set,
) -> SharedArena:
    """Build (or reuse from cache) one seed group's inputs and arena.

    Generates every distinct workload and master failure log the group's
    cells need — through the exact cache-filling functions the serial
    path uses, so the parent's own caches warm as a side effect — then
    snapshots only the entries not already shipped to the pool in a
    previous arena of this sweep (``shipped`` accumulates across calls).
    """
    workloads = {}
    masters = {}
    for i in pending:
        point = points[i]
        wkey = sweep_mod.workload_cache_key(point, seed)
        workload = sweep_mod._workload_for(point, seed)
        mkey = sweep_mod.master_log_cache_key(point, workload, seed, model)
        sweep_mod._failures_for(point, workload, seed, model)
        if wkey not in shipped:
            workloads[wkey] = workload
            shipped.add(wkey)
        if mkey not in shipped:
            masters[mkey] = sweep_mod._master_log_cache[mkey]
            shipped.add(mkey)
    payload = pickle.dumps(
        {
            "master_failure_count": sweep_mod.MASTER_FAILURE_COUNT,
            "workloads": workloads,
            "masters": masters,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return SharedArena(payload, generation)


# ----------------------------------------------------------------------
# the persistent pool
# ----------------------------------------------------------------------

class WarmPool:
    """A forked process pool that outlives individual ``run_sweep`` calls.

    ``ensure(n)`` returns a live executor with ``n`` workers, spawning
    only when there is none, the size changed, or the previous pool
    broke.  ``spawns``/``reuses`` counters (also exported through
    ``pool.warm.*`` metrics) let tests assert the pool genuinely
    persisted.
    """

    def __init__(self) -> None:
        self._executor: ProcessPoolExecutor | None = None
        self._workers = 0
        self._generation = 0
        self._broken = False
        self.spawns = 0
        self.reuses = 0

    def ensure(self, n_workers: int) -> ProcessPoolExecutor:
        if (
            self._executor is not None
            and not self._broken
            and self._workers == n_workers
        ):
            self.reuses += 1
            count_active("pool.warm.reuse")
            return self._executor
        self._shutdown_executor()
        ctx = multiprocessing.get_context("fork")
        self._executor = ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx)
        self._workers = n_workers
        self._broken = False
        self.spawns += 1
        count_active("pool.warm.spawn")
        logger.info("warm pool spawned with %d workers", n_workers)
        return self._executor

    def next_generation(self) -> int:
        self._generation += 1
        return self._generation

    def mark_broken(self) -> None:
        """A worker died: the executor is unusable; respawn on next use."""
        self._broken = True
        count_active("pool.warm.broken")
        self._shutdown_executor()

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            # Cheap even for a broken pool; keeps atexit off stale fds.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def shutdown(self) -> None:
        self._shutdown_executor()
        self._workers = 0
        self._broken = False

    @property
    def alive(self) -> bool:
        return self._executor is not None and not self._broken

    @property
    def workers(self) -> int:
        return self._workers if self._executor is not None else 0


_pool: WarmPool | None = None

#: Parent-process EMA of measured per-cell wall seconds, fed back from
#: each warm sweep; sizes the next sweep's chunks.
_cell_cost_ema_s: float | None = None


def get_warm_pool() -> WarmPool:
    """The process-wide warm pool (created on first use)."""
    global _pool
    if _pool is None:
        _pool = WarmPool()
        atexit.register(_atexit_cleanup)
    return _pool


def shutdown_warm_pool() -> None:
    """Tear down the warm pool and any leaked arenas (tests, embedders).

    The next parallel sweep simply respawns; safe to call at any time.
    """
    global _pool
    if _pool is not None:
        _pool.shutdown()
    for arena in list(_live_arenas):
        arena.unlink()


def _atexit_cleanup() -> None:  # pragma: no cover - process teardown
    try:
        shutdown_warm_pool()
    except Exception:
        pass


def observe_cell_cost(per_cell_s: float) -> None:
    """Feed one sweep's measured per-cell wall cost into the EMA."""
    global _cell_cost_ema_s
    if not math.isfinite(per_cell_s) or per_cell_s <= 0:
        return
    if _cell_cost_ema_s is None:
        _cell_cost_ema_s = per_cell_s
    else:
        _cell_cost_ema_s = (
            _EMA_ALPHA * per_cell_s + (1.0 - _EMA_ALPHA) * _cell_cost_ema_s
        )


def cell_cost_estimate_s() -> float | None:
    """Current per-cell cost EMA (``None`` until a warm sweep ran)."""
    return _cell_cost_ema_s


def reset_cell_cost_estimate() -> None:
    """Forget the per-cell cost EMA (tests)."""
    global _cell_cost_ema_s
    _cell_cost_ema_s = None


def adaptive_chunk_size(
    n_cells: int, n_workers: int, per_cell_s: float | None
) -> int:
    """Cells per warm chunk.

    The load-balance bound (``workers x _CHUNKS_PER_WORKER`` chunks,
    the cold path's sizing) is the ceiling; when a per-cell cost
    estimate exists, chunks shrink toward :data:`TARGET_CHUNK_S` of wall
    time each so expensive cells cannot straggle a whole worker's queue
    behind one chunk.
    """
    balance_bound = max(1, math.ceil(n_cells / (n_workers * _CHUNKS_PER_WORKER)))
    if per_cell_s is None or per_cell_s <= 0:
        return balance_bound
    target = max(1, round(TARGET_CHUNK_S / per_cell_s))
    return max(1, min(balance_bound, target))
