"""Experiment harness: parameter sweeps and per-figure regenerators.

Every quantitative figure in the paper's evaluation (Figures 3-10) has a
generator here; the benchmark suite under ``benchmarks/`` calls these and
prints the same series the paper plots.  See DESIGN.md §3 for the
experiment index and EXPERIMENTS.md for paper-vs-measured shapes.
"""

from __future__ import annotations

from repro.experiments.sweep import SweepPoint, SweepResult, run_point, run_sweep
from repro.experiments.parallel import SweepExecutor, default_workers
from repro.experiments.pool import (
    WarmPool,
    get_warm_pool,
    shutdown_warm_pool,
)
from repro.experiments.queue import WorkQueue, run_queue_sweep, run_worker
from repro.experiments.figures import (
    FigureResult,
    figure_registry,
    run_figure,
    paper_failures_to_sim,
)
from repro.experiments.format import format_table, format_series, format_figure
from repro.experiments.validate import ValidationReport, validate_figure

__all__ = [
    "format_figure",
    "ValidationReport",
    "validate_figure",
    "SweepPoint",
    "SweepResult",
    "SweepExecutor",
    "WarmPool",
    "WorkQueue",
    "default_workers",
    "get_warm_pool",
    "run_point",
    "run_queue_sweep",
    "run_sweep",
    "run_worker",
    "shutdown_warm_pool",
    "FigureResult",
    "figure_registry",
    "run_figure",
    "paper_failures_to_sim",
    "format_table",
    "format_series",
]
